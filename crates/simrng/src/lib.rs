//! Self-contained deterministic PRNG.
//!
//! The simulator, benchmarks, and property-style tests all need seeded
//! randomness, but the build environment may have no access to a crate
//! registry — so instead of `rand` the workspace uses this ~100-line
//! xoshiro256** implementation (public-domain algorithm by Blackman &
//! Vigna), seeded through splitmix64. Streams are stable across platforms
//! and releases: changing them invalidates every pinned-seed expectation
//! in the test suite and `BENCH_*.json`, so treat the output sequence as
//! a compatibility contract.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed via splitmix64, mirroring `rand`'s `SeedableRng::seed_from_u64`
    /// construction pattern (not its exact stream).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty. Uses Lemire-style
    /// rejection so the distribution is exactly uniform.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        if span.is_power_of_two() {
            return lo + (self.next_u64() & (span - 1));
        }
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    pub fn range_i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        (lo as i128 + self.range_u64(0, span + 1) as i128) as i64
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(0, i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(SimRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 17);
            assert!((10..17).contains(&v));
            let s = r.range_i64_inclusive(-5, 5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.range_usize(0, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((65_000..75_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn stream_is_pinned() {
        // The compatibility contract: these exact values back every pinned
        // seed in the workspace. Do not update without regenerating them.
        let mut r = SimRng::seed_from_u64(2021);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(first.len(), 4);
        let mut r2 = SimRng::seed_from_u64(2021);
        assert_eq!(first, (0..4).map(|_| r2.next_u64()).collect::<Vec<_>>());
    }
}
