//! Adversarial suite: the HTTP front-end against hostile peers.
//!
//! Every scenario must end in a 4xx/5xx response or a clean connection
//! close — never a panic, never a hang. The server under test runs a stub
//! backend (no simulation), so anything that goes wrong is the HTTP
//! layer's fault. The fuzz cases are property-style over `simrng`, the
//! workspace's deterministic PRNG: same seeds, same byte garbage, every
//! run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use serve::{
    serve, AnalysisQuery, AnalysisViews, ApiError, Backend, HttpLimits, ServeConfig, ServerHandle,
};
use simrng::SimRng;

/// Instant backend: canonical echo, no analysis work.
struct StubBackend;

impl Backend for StubBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": [\"stub\"]}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        Ok(AnalysisViews {
            verdict: format!("{{\"app\": \"{}\"}}\n", q.app),
            conflicts: "{}\n".to_string(),
            patterns: "{}\n".to_string(),
        })
    }
}

/// A server with a short header deadline so slow-loris tests finish fast.
fn spawn_server() -> ServerHandle {
    let cfg = ServeConfig {
        limits: HttpLimits {
            header_deadline: Duration::from_millis(300),
            ..HttpLimits::default()
        },
        ..ServeConfig::default()
    };
    serve(cfg, Arc::new(StubBackend)).expect("bind test server")
}

/// Write `payload`, then read whatever comes back until the server closes
/// or 2s pass. Returns the raw response bytes (possibly empty — a bare
/// close is a legal outcome for unwritable failure modes).
fn exchange(handle: &ServerHandle, payload: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let _ = s.write_all(payload);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    text.strip_prefix("HTTP/1.1 ")?
        .split(' ')
        .next()?
        .parse()
        .ok()
}

/// After any adversarial exchange the server must still answer a clean
/// request — the real "it survived" check.
fn assert_still_alive(handle: &ServerHandle) {
    let ok = exchange(
        handle,
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&ok), Some(200), "server no longer serving");
}

#[test]
fn truncated_request_lines_close_cleanly() {
    let handle = spawn_server();
    for payload in [
        &b""[..],
        b"G",
        b"GET",
        b"GET /v1/ver",
        b"GET /healthz HTTP/1.1",
        b"GET /healthz HTTP/1.1\r\nHost: half",
    ] {
        let resp = exchange(&handle, payload);
        // Truncation is a clean close (no response owed to half a request).
        assert!(
            resp.is_empty() || matches!(status_of(&resp), Some(400..=599)),
            "unexpected bytes for {payload:?}: {resp:?}"
        );
    }
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn oversized_headers_get_431_and_oversized_line_414() {
    let handle = spawn_server();
    let fat = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(20_000));
    assert_eq!(status_of(&exchange(&handle, fat.as_bytes())), Some(431));
    let many: String = (0..200).map(|i| format!("X-{i}: v\r\n")).collect();
    let req = format!("GET / HTTP/1.1\r\n{many}\r\n");
    assert_eq!(status_of(&exchange(&handle, req.as_bytes())), Some(431));
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "b".repeat(10_000));
    assert_eq!(
        status_of(&exchange(&handle, long_line.as_bytes())),
        Some(414)
    );
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn bodies_on_get_are_rejected() {
    let handle = spawn_server();
    let with_len = b"GET /healthz HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
    assert_eq!(status_of(&exchange(&handle, with_len)), Some(400));
    let chunked = b"GET /healthz HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
    assert_eq!(status_of(&exchange(&handle, chunked)), Some(400));
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn pipelined_garbage_after_valid_request_is_contained() {
    let handle = spawn_server();
    // A valid request followed by binary garbage on the same connection:
    // the first must be answered 200, the tail must not wedge anything.
    let mut payload = b"GET /healthz HTTP/1.1\r\n\r\n".to_vec();
    payload.extend_from_slice(&[
        0xff, 0x00, 0xde, 0xad, 0xbe, 0xef, b'\r', b'\n', b'\r', b'\n',
    ]);
    let resp = exchange(&handle, &payload);
    assert_eq!(status_of(&resp), Some(200), "first pipelined request lost");
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn slow_loris_is_cut_off_by_the_header_deadline() {
    let handle = spawn_server();
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Dribble a byte at a time, slower than the 300ms deadline allows.
    let started = std::time::Instant::now();
    for b in b"GET /healthz HT" {
        if s.write_all(&[*b]).is_err() {
            break; // server already hung up — that's the point
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    // Either a 408 or a bare close, well before a full write could finish.
    assert!(
        out.is_empty() || status_of(&out) == Some(408),
        "unexpected slow-loris response: {out:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "slow loris held the connection too long"
    );
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn random_garbage_never_panics_the_server() {
    let handle = spawn_server();
    let mut rng = SimRng::seed_from_u64(0x5EED_F00D);
    for case in 0..200 {
        let len = rng.range_usize(0, 512);
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            payload.push(rng.next_u32() as u8);
        }
        let resp = exchange(&handle, &payload);
        if !resp.is_empty() {
            let status = status_of(&resp);
            assert!(
                matches!(status, Some(400..=599)),
                "case {case}: garbage earned a non-error response: {status:?}"
            );
        }
    }
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn mutated_valid_requests_never_panic_the_server() {
    let handle = spawn_server();
    let mut rng = SimRng::seed_from_u64(0xBAD_CAFE);
    let base =
        b"GET /v1/verdict/app/cfg?ranks=4&model=both HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
    for case in 0..200 {
        let mut payload = base.to_vec();
        // Flip 1–8 bytes anywhere in the request.
        for _ in 0..rng.range_usize(1, 9) {
            let at = rng.range_usize(0, payload.len());
            payload[at] = rng.next_u32() as u8;
        }
        let resp = exchange(&handle, &payload);
        if let Some(status) = status_of(&resp) {
            assert!(
                status == 200 || (400..=599).contains(&status),
                "case {case}: unexpected status {status}"
            );
        }
    }
    assert_still_alive(&handle);
    handle.shutdown();
}

#[test]
fn overload_returns_503_with_retry_after() {
    // One worker wedged by a slow-loris connection + a zero-ish queue ⇒
    // the next connection must be shed with 503 + Retry-After.
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 1,
        limits: HttpLimits {
            header_deadline: Duration::from_secs(3),
            ..HttpLimits::default()
        },
        ..ServeConfig::default()
    };
    let handle = serve(cfg, Arc::new(StubBackend)).expect("bind");

    // Occupy the single worker: connect and send nothing (the handler
    // blocks in parse_request until the header deadline).
    let blocker = TcpStream::connect(handle.addr()).expect("connect blocker");
    std::thread::sleep(Duration::from_millis(100));
    // Fill the queue with a second idle connection.
    let filler = TcpStream::connect(handle.addr()).expect("connect filler");
    std::thread::sleep(Duration::from_millis(100));

    // Third connection: queue full ⇒ immediate 503 at the door.
    let mut s = TcpStream::connect(handle.addr()).expect("connect shed");
    s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    let text = String::from_utf8_lossy(&out);
    assert!(
        text.starts_with("HTTP/1.1 503 "),
        "expected 503 shed, got: {text:?}"
    );
    assert!(text.contains("Retry-After:"), "503 must carry Retry-After");

    drop(blocker);
    drop(filler);
    // After the wedged connections drain, service resumes.
    std::thread::sleep(Duration::from_millis(200));
    let ok = exchange(
        &handle,
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&ok), Some(200), "server did not recover");
    handle.shutdown();
}
