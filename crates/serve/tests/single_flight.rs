//! Single-flight coalescing under real concurrency.
//!
//! N threads miss the same canonical key at once: exactly one backend
//! analysis runs, everyone gets byte-identical bodies, and the
//! `serve.coalesced_waiters` counter proves the followers actually
//! parked (the assertions are deterministic — the backend is gated, so
//! the test controls exactly when the leader finishes). A leader that
//! panics must *degrade*, not hang: followers wake, retry, and succeed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serve::{
    parse_request, AnalysisQuery, AnalysisViews, ApiError, Backend, ConnReader, HttpLimits,
    Request, Router,
};

fn request(line: &str) -> Request {
    let raw = format!("GET {line} HTTP/1.1\r\n\r\n");
    let mut reader = ConnReader::new(raw.as_bytes());
    parse_request(&mut reader, &HttpLimits::default()).unwrap()
}

/// Blocks every `analyze` call until the gate opens; counts calls.
struct GatedBackend {
    gate: Mutex<bool>,
    open: Condvar,
    calls: AtomicUsize,
    /// Panic on the n-th call (1-based); 0 = never.
    panic_on_call: usize,
}

impl GatedBackend {
    fn new(panic_on_call: usize) -> GatedBackend {
        GatedBackend {
            gate: Mutex::new(false),
            open: Condvar::new(),
            calls: AtomicUsize::new(0),
            panic_on_call,
        }
    }

    fn open_gate(&self) {
        *self.gate.lock().unwrap() = true;
        self.open.notify_all();
    }
}

impl Backend for GatedBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": []}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.open.wait(open).unwrap();
        }
        drop(open);
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        if call == self.panic_on_call {
            panic!("injected leader panic");
        }
        Ok(AnalysisViews {
            verdict: format!("verdict:{}:{}\n", q.app, q.config),
            conflicts: "c\n".to_string(),
            patterns: "p\n".to_string(),
        })
    }
}

fn counter(name: &str) -> u64 {
    obs::metrics().counter(name).get()
}

/// Poll until `cond` or a deadline — the coalescing assertions need the
/// followers demonstrably parked before the gate opens.
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn n_concurrent_misses_run_one_analysis() {
    obs::set_metrics(true);
    let backend = Arc::new(GatedBackend::new(0));
    let router = Arc::new(Router::new(Arc::clone(&backend) as Arc<dyn Backend>, 16));
    let waiters_before = counter("serve.coalesced_waiters");

    const N: usize = 8;
    let mut threads = Vec::new();
    for _ in 0..N {
        let router = Arc::clone(&router);
        threads.push(std::thread::spawn(move || {
            let resp = router.handle(&request("/v1/verdict/app/cfg?ranks=4"));
            (resp.status, resp.body)
        }));
    }

    // All but the leader must park on the flight before anyone computes.
    wait_for("followers to park", || {
        counter("serve.coalesced_waiters") >= waiters_before + (N as u64 - 1)
    });
    assert_eq!(
        backend.calls.load(Ordering::SeqCst),
        0,
        "analysis ran before the gate opened"
    );
    backend.open_gate();

    let mut bodies = Vec::new();
    for t in threads {
        let (status, body) = t.join().unwrap();
        assert_eq!(status, 200);
        bodies.push(body);
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "coalesced responses diverged"
    );
    assert_eq!(
        backend.calls.load(Ordering::SeqCst),
        1,
        "misses were not coalesced into one analysis"
    );
}

#[test]
fn leader_panic_wakes_followers_into_their_own_attempts() {
    obs::set_metrics(true);
    // First analyze call panics; retries succeed.
    let backend = Arc::new(GatedBackend::new(1));
    let router = Arc::new(Router::new(Arc::clone(&backend) as Arc<dyn Backend>, 16));
    let waiters_before = counter("serve.coalesced_waiters");
    let aborts_before = counter("serve.singleflight_aborts");

    const N: usize = 6;
    let mut threads = Vec::new();
    for _ in 0..N {
        let router = Arc::clone(&router);
        threads.push(std::thread::spawn(move || {
            // The worker pool wraps handlers in catch_unwind; mirror that
            // here so the leader's panic is contained the same way.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let resp = router.handle(&request("/v1/verdict/app/retry?ranks=4"));
                (resp.status, resp.body)
            }))
            .ok()
        }));
    }

    wait_for("followers to park", || {
        counter("serve.coalesced_waiters") >= waiters_before + (N as u64 - 1)
    });
    backend.open_gate();

    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let panicked = results.iter().filter(|r| r.is_none()).count();
    let ok: Vec<_> = results.into_iter().flatten().collect();
    assert_eq!(panicked, 1, "exactly the leader should have unwound");
    assert_eq!(ok.len(), N - 1);
    for (status, body) in &ok {
        assert_eq!(*status, 200, "a follower failed after the leader died");
        assert_eq!(body, &ok[0].1, "retried responses diverged");
    }
    assert!(
        counter("serve.singleflight_aborts") > aborts_before,
        "the abort was never published"
    );
    // The panicked call plus at least one successful retry; coalescing
    // may collapse the retries back to a single flight.
    let calls = backend.calls.load(Ordering::SeqCst);
    assert!(
        (2..=N).contains(&calls),
        "expected 1 panic + >=1 retry, saw {calls} calls"
    );
}
