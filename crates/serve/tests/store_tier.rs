//! The persistent store tier under the router: a "restarted process"
//! (new router + reopened store on the same directory) must answer warm
//! with bytes identical to what the first process served cold — and
//! must never serve bytes it cannot re-validate.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serve::{
    decode_views, encode_views, parse_request, AnalysisQuery, AnalysisViews, ApiError, Backend,
    ConnReader, HttpLimits, Request, Router,
};
use store::{Store, StoreOptions};

fn request(line: &str) -> Request {
    let raw = format!("GET {line} HTTP/1.1\r\n\r\n");
    let mut reader = ConnReader::new(raw.as_bytes());
    parse_request(&mut reader, &HttpLimits::default()).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store-tier-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path) -> Arc<Store> {
    Arc::new(Store::open(dir, StoreOptions::default()).unwrap())
}

/// Counts cold analyses; `sick` degrades.
struct CountingBackend(AtomicUsize);

impl CountingBackend {
    fn new() -> Arc<CountingBackend> {
        Arc::new(CountingBackend(AtomicUsize::new(0)))
    }
}

impl Backend for CountingBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": []}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        self.0.fetch_add(1, Ordering::SeqCst);
        if q.app == "sick" {
            return Err(ApiError::Degraded {
                config: q.config.clone(),
                error: "synthetic failure".into(),
            });
        }
        Ok(AnalysisViews {
            verdict: format!("verdict:{}:{}:{}\n", q.app, q.config, q.ranks),
            conflicts: format!("conflicts:{}\n", q.app),
            patterns: format!("patterns:{}\n", q.app),
        })
    }
}

/// The canonical string the router derives for a default-parameter
/// verdict query on `app/config` — for poking the store directly.
fn canonical_for(app: &str, config: &str) -> String {
    AnalysisQuery {
        app: app.to_string(),
        config: config.to_string(),
        ranks: serve::router::DEFAULT_RANKS,
        seed: serve::router::DEFAULT_SEED,
        model: "both".to_string(),
        faults: "none".to_string(),
    }
    .cache_key()
    .canonical()
    .to_string()
}

#[test]
fn views_codec_roundtrip_and_rejects_damage() {
    let views = AnalysisViews {
        verdict: "{\"v\": 1}\n".to_string(),
        conflicts: "{}\n".to_string(),
        patterns: "{\"p\": [1, 2]}\n".to_string(),
    };
    let bytes = encode_views(&views);
    let back = decode_views(&bytes).expect("roundtrip");
    assert_eq!(back.verdict, views.verdict);
    assert_eq!(back.conflicts, views.conflicts);
    assert_eq!(back.patterns, views.patterns);
    // Any truncation is rejected, never partially decoded.
    for cut in 0..bytes.len() {
        assert!(decode_views(&bytes[..cut]).is_none(), "cut {cut} decoded");
    }
    // Trailing garbage is rejected too.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_views(&padded).is_none());
}

#[test]
fn restart_serves_byte_identical_without_recomputing() {
    let dir = tmpdir("restart");
    let (cold_verdict, cold_conflicts) = {
        let backend = CountingBackend::new();
        let router = Router::with_store(
            Arc::clone(&backend) as Arc<dyn Backend>,
            16,
            Some(open_store(&dir)),
        );
        let v = router.handle(&request("/v1/verdict/a/b"));
        let c = router.handle(&request("/v1/conflicts/a/b"));
        assert_eq!((v.status, c.status), (200, 200));
        assert_eq!(backend.0.load(Ordering::SeqCst), 1);
        (v.body, c.body)
    };

    // "Restart": fresh router, fresh backend, reopened store.
    let backend = CountingBackend::new();
    let router = Router::with_store(
        Arc::clone(&backend) as Arc<dyn Backend>,
        16,
        Some(open_store(&dir)),
    );
    let v = router.handle(&request("/v1/verdict/a/b"));
    let c = router.handle(&request("/v1/conflicts/a/b"));
    assert_eq!(v.status, 200);
    assert_eq!(v.body, cold_verdict, "restart changed the verdict bytes");
    assert_eq!(
        c.body, cold_conflicts,
        "restart changed the conflicts bytes"
    );
    assert_eq!(
        backend.0.load(Ordering::SeqCst),
        0,
        "restart recomputed instead of serving from the store"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn degraded_results_are_not_persisted() {
    let dir = tmpdir("degraded");
    {
        let backend = CountingBackend::new();
        let store = open_store(&dir);
        let router = Router::with_store(Arc::clone(&backend) as Arc<dyn Backend>, 16, Some(store));
        assert_eq!(router.handle(&request("/v1/verdict/sick/x")).status, 422);
        assert_eq!(
            router.store().unwrap().len(),
            0,
            "degraded run was persisted"
        );
    }
    // The restarted process retries the failure fresh.
    let backend = CountingBackend::new();
    let router = Router::with_store(
        Arc::clone(&backend) as Arc<dyn Backend>,
        16,
        Some(open_store(&dir)),
    );
    assert_eq!(router.handle(&request("/v1/verdict/sick/x")).status, 422);
    assert_eq!(
        backend.0.load(Ordering::SeqCst),
        1,
        "degraded outcome came from disk"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn undecodable_store_value_is_recomputed_never_served() {
    let dir = tmpdir("corrupt-value");
    {
        // Plant a syntactically-journaled but semantically-garbage value
        // under the exact canonical key the router will derive.
        let store = open_store(&dir);
        store
            .put(&canonical_for("a", "b"), b"these are not encoded views")
            .unwrap();
    }
    let backend = CountingBackend::new();
    let router = Router::with_store(
        Arc::clone(&backend) as Arc<dyn Backend>,
        16,
        Some(open_store(&dir)),
    );
    let resp = router.handle(&request("/v1/verdict/a/b"));
    assert_eq!(resp.status, 200);
    assert!(
        String::from_utf8_lossy(&resp.body).starts_with("verdict:a:b"),
        "garbage bytes leaked into a response"
    );
    assert_eq!(backend.0.load(Ordering::SeqCst), 1, "no recompute happened");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn drain_flush_compacts_for_snapshot_only_recovery() {
    let dir = tmpdir("drain");
    {
        let backend = CountingBackend::new();
        let router = Router::with_store(
            Arc::clone(&backend) as Arc<dyn Backend>,
            16,
            Some(open_store(&dir)),
        );
        for cfg in ["x", "y", "z"] {
            assert_eq!(
                router
                    .handle(&request(&format!("/v1/verdict/a/{cfg}")))
                    .status,
                200
            );
        }
        router.flush_store();
    }
    let store = open_store(&dir);
    let rec = store.recovery();
    assert_eq!(rec.snapshot_records, 3, "drain flush did not snapshot");
    assert_eq!(rec.journal_records, 0, "journal tail survived the flush");
    std::fs::remove_dir_all(&dir).unwrap();
}
