//! The cluster tier end to end, adversarially: real sockets, real
//! multi-node fleets in one process.
//!
//! * byte identity — every query answers identical bytes no matter which
//!   entry node takes the request, in both forwarding modes;
//! * a deliberately looped ring (two nodes each claiming the other is
//!   the owner) is rejected with `508 Loop Detected`, never a hang;
//! * a dead peer degrades to local recompute with a flight-recorder
//!   `cluster-peer-down` event, not an error;
//! * a wrong-node request mid-rebalance (epoch skew) is served locally
//!   with correct bytes instead of ping-ponging;
//! * decommission + rejoin under live traffic moves snapshot segments
//!   with zero wrong-byte responses.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use serve::{
    get_once, get_redirecting, serve, AnalysisQuery, AnalysisViews, ApiError, Backend,
    ClusterConfig, Forwarding, HttpClient, ServeConfig, ServerHandle,
};
use store::{Store, StoreOptions};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path) -> Arc<Store> {
    Arc::new(Store::open(dir, StoreOptions::default()).unwrap())
}

/// Deterministic stub: the verdict is a pure function of the query, so
/// byte identity across nodes is exactly the cluster-tier contract.
struct PureBackend;

impl Backend for PureBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": []}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        Ok(AnalysisViews {
            verdict: format!("verdict:{}:{}:{}\n", q.app, q.config, q.ranks),
            conflicts: format!("conflicts:{}:{}\n", q.app, q.config),
            patterns: format!("patterns:{}:{}\n", q.app, q.config),
        })
    }
}

/// Reserve an OS-assigned port. The listener is dropped before the node
/// binds it — a benign race that deterministic tests on loopback win.
fn pick_port() -> u16 {
    std::net::TcpListener::bind(("127.0.0.1", 0))
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

/// Boot an in-process fleet of `n` nodes with the given forwarding mode;
/// returns (handles, entry addresses). `stores` attaches a per-node
/// store (required for rebalance endpoints).
fn boot_fleet(
    n: u32,
    forwarding: Forwarding,
    stores: Option<&[Arc<Store>]>,
) -> (Vec<ServerHandle>, Vec<String>) {
    let ports: Vec<u16> = (0..n).map(|_| pick_port()).collect();
    let spec = ports
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{}=127.0.0.1:{p}", i + 1))
        .collect::<Vec<_>>()
        .join(",");
    let peers = cluster::parse_peers(&spec).unwrap();
    let mut handles = Vec::new();
    for (i, port) in ports.iter().enumerate() {
        let cfg = ServeConfig {
            port: *port,
            cluster: Some(ClusterConfig {
                node_id: (i + 1) as u32,
                peers: peers.clone(),
                forwarding,
            }),
            store: stores.map(|s| Arc::clone(&s[i])),
            ..ServeConfig::default()
        };
        handles.push(serve(cfg, Arc::new(PureBackend)).unwrap());
    }
    let addrs: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    wait_all_alive(&addrs);
    (handles, addrs)
}

/// Block until every node sees every peer alive and a member — the
/// prober may have raced a peer's bind at boot and marked it dead for
/// one cycle.
fn wait_all_alive(addrs: &[String]) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let all = addrs.iter().all(|a| {
            HttpClient::connect_str(a)
                .and_then(|mut c| c.get("/v1/cluster/status"))
                .map(|r| r.status == 200 && !r.body_text().contains("false"))
                .unwrap_or(false)
        });
        if all {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "fleet never became fully alive"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

fn paths(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("/v1/verdict/app-{i}/cfg?ranks=4"))
        .collect()
}

#[test]
fn byte_identity_across_entry_nodes_redirect() {
    let (handles, addrs) = boot_fleet(2, Forwarding::Redirect, None);
    let mut redirected = 0;
    for path in &paths(8) {
        let (via_a, served_a) = get_redirecting(&addrs[0], path, 4).unwrap();
        let (via_b, served_b) = get_redirecting(&addrs[1], path, 4).unwrap();
        assert_eq!(via_a.status, 200, "{path} via {}", addrs[0]);
        assert_eq!(via_b.status, 200, "{path} via {}", addrs[1]);
        assert_eq!(
            via_a.body, via_b.body,
            "{path}: entry node changed the bytes"
        );
        // Both entries must agree on who owns the key.
        assert_eq!(served_a, served_b, "{path}: entries disagree on the owner");
        if served_a != addrs[0] {
            redirected += 1;
        }
    }
    assert!(
        redirected > 0,
        "8 keys all landed on node 1 — the ring is not splitting"
    );
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn byte_identity_across_entry_nodes_proxy() {
    let (handles, addrs) = boot_fleet(2, Forwarding::Proxy, None);
    let mut proxied = 0;
    for path in &paths(8) {
        let a: std::net::SocketAddr = addrs[0].parse().unwrap();
        let b: std::net::SocketAddr = addrs[1].parse().unwrap();
        let via_a = get_once(a, path).unwrap();
        let via_b = get_once(b, path).unwrap();
        assert_eq!(via_a.status, 200);
        assert_eq!(via_b.status, 200);
        assert_eq!(
            via_a.body, via_b.body,
            "{path}: entry node changed the bytes"
        );
        if via_a.header("X-Cluster-Served-By").is_some()
            || via_b.header("X-Cluster-Served-By").is_some()
        {
            proxied += 1;
        }
    }
    assert!(
        proxied > 0,
        "no request was proxied — the ring is not splitting"
    );
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn looped_ring_is_rejected_with_508_not_a_hang() {
    // Deliberate misconfiguration: both nodes claim id 1 and each names
    // the *other* as node 2 — every key node 2 owns ping-pongs between
    // them. The hop counter must cut the loop with a 508.
    let (pa, pb) = (pick_port(), pick_port());
    let node = |port: u16, other: u16| ServeConfig {
        port,
        cluster: Some(ClusterConfig {
            node_id: 1,
            peers: cluster::parse_peers(&format!("1=127.0.0.1:{port},2=127.0.0.1:{other}"))
                .unwrap(),
            forwarding: Forwarding::Proxy,
        }),
        ..ServeConfig::default()
    };
    let ha = serve(node(pa, pb), Arc::new(PureBackend)).unwrap();
    let hb = serve(node(pb, pa), Arc::new(PureBackend)).unwrap();
    wait_all_alive(&[format!("127.0.0.1:{pa}"), format!("127.0.0.1:{pb}")]);

    let a: std::net::SocketAddr = format!("127.0.0.1:{pa}").parse().unwrap();
    let mut saw_508 = false;
    for path in &paths(16) {
        let resp = get_once(a, path).unwrap(); // returns — the loop may not hang
        match resp.status {
            200 => {} // key owned by id 1: served locally, no loop
            508 => {
                assert!(
                    resp.body_text().contains("loop"),
                    "508 body should name the loop: {}",
                    resp.body_text()
                );
                saw_508 = true;
            }
            other => panic!("{path}: unexpected status {other}"),
        }
    }
    assert!(saw_508, "no key landed on the looped slice across 16 tries");
    ha.shutdown();
    hb.shutdown();
}

#[test]
fn dead_peer_degrades_to_local_recompute() {
    let (mut handles, addrs) = boot_fleet(2, Forwarding::Proxy, None);
    let a: std::net::SocketAddr = addrs[0].parse().unwrap();

    // Find a key node 1 proxies to node 2.
    let all = paths(16);
    let foreign = all
        .iter()
        .find(|p| {
            get_once(a, p)
                .unwrap()
                .header("X-Cluster-Served-By")
                .is_some()
        })
        .expect("some key must be owned by node 2")
        .clone();
    let healthy_bytes = get_once(a, &foreign).unwrap().body;

    // Kill node 2. Node 1 must keep answering the foreign key — same
    // bytes, computed locally — instead of failing the request.
    handles.remove(1).shutdown();
    let resp = get_once(a, &foreign).unwrap();
    assert_eq!(resp.status, 200, "dead peer must degrade, not error");
    assert_eq!(
        resp.body, healthy_bytes,
        "local recompute produced different bytes than the dead owner"
    );
    assert!(
        resp.header("X-Cluster-Served-By").is_none(),
        "nothing was alive to proxy to"
    );

    // The degradation is observable: a cluster-peer-down flight event
    // (the ring is process-global, so any node's debug endpoint shows it).
    let flight = get_once(a, "/v1/debug/flightrec").unwrap().body_text();
    assert!(
        flight.contains("cluster-peer-down"),
        "no cluster-peer-down flight event after proxy failure"
    );
    handles.remove(0).shutdown();
}

#[test]
fn epoch_skew_mid_rebalance_serves_locally_not_loops() {
    let (handles, addrs) = boot_fleet(2, Forwarding::Proxy, None);
    let a: std::net::SocketAddr = addrs[0].parse().unwrap();
    let b: std::net::SocketAddr = addrs[1].parse().unwrap();

    let all = paths(16);
    let foreign = all
        .iter()
        .find(|p| {
            get_once(a, p)
                .unwrap()
                .header("X-Cluster-Served-By")
                .is_some()
        })
        .expect("some key must be owned by node 2")
        .clone();
    let before = get_once(a, &foreign).unwrap().body;

    // Bump node 2's epoch out from under node 1 — the transient state of
    // a rebalance commit that reached only part of the fleet.
    let commit = get_once(b, "/v1/cluster/commit?epoch=2&members=1,2").unwrap();
    assert_eq!(commit.status, 200, "{}", commit.body_text());

    // Node 1 still proxies with epoch 1 stamped; node 2 must serve the
    // forwarded request locally (verdicts are pure functions) rather than
    // bouncing it back and burning hops.
    let resp = get_once(a, &foreign).unwrap();
    assert_eq!(resp.status, 200, "epoch skew must not fail the request");
    assert_eq!(resp.body, before, "epoch skew changed the bytes");
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn healthz_reports_cluster_fields_only_when_clustered() {
    let (handles, addrs) = boot_fleet(2, Forwarding::Proxy, None);
    let a: std::net::SocketAddr = addrs[0].parse().unwrap();
    let health = get_once(a, "/healthz").unwrap().body_text();
    for field in [
        "cluster_id",
        "cluster_epoch",
        "cluster_members",
        "cluster_slice",
    ] {
        assert!(health.contains(field), "healthz missing {field}: {health}");
    }
    let status = get_once(a, "/v1/cluster/status").unwrap();
    assert_eq!(status.status, 200);
    let table = get_once(a, "/v1/cluster/status?format=table").unwrap();
    assert!(table.body_text().contains("epoch"), "{}", table.body_text());
    for h in handles {
        h.shutdown();
    }

    let plain = serve(ServeConfig::default(), Arc::new(PureBackend)).unwrap();
    let health = get_once(plain.addr(), "/healthz").unwrap().body_text();
    assert!(
        !health.contains("cluster_id"),
        "un-clustered healthz grew cluster fields: {health}"
    );
    let status = get_once(plain.addr(), "/v1/cluster/status").unwrap();
    assert_eq!(status.status, 400, "cluster endpoints exist only clustered");
    plain.shutdown();
}

#[test]
fn decommission_and_rejoin_move_segments_with_zero_wrong_bytes_under_traffic() {
    let dirs: Vec<PathBuf> = (1..=3).map(|i| tmpdir(&format!("rebal-{i}"))).collect();
    let stores: Vec<Arc<Store>> = dirs.iter().map(|d| open_store(d)).collect();
    let (handles, addrs) = boot_fleet(3, Forwarding::Proxy, Some(&stores));

    // Prime: every key computed at its owner and journaled there.
    let all = paths(12);
    let mut expected = Vec::new();
    for p in &all {
        let resp = get_once(addrs[0].parse().unwrap(), p).unwrap();
        assert_eq!(resp.status, 200);
        expected.push(resp.body);
    }

    // Live traffic against every entry node for the whole rebalance.
    let stop = Arc::new(AtomicBool::new(false));
    let wrong = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    let traffic: Vec<_> = addrs
        .iter()
        .cloned()
        .map(|addr| {
            let stop = Arc::clone(&stop);
            let wrong = Arc::clone(&wrong);
            let failed = Arc::clone(&failed);
            let all = all.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut k = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let i = k % all.len();
                    match get_redirecting(&addr, &all[i], 8) {
                        Ok((r, _)) if r.status == 200 => {
                            if r.body != expected[i] {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    k += 1;
                }
            })
        })
        .collect();

    // Node 3 leaves: its slice streams to the gaining members as
    // verified snapshot segments, then the epoch bumps fleet-wide.
    let resp = HttpClient::connect_str(&addrs[2])
        .unwrap()
        .get("/v1/cluster/decommission")
        .unwrap();
    assert_eq!(resp.status, 200, "decommission: {}", resp.body_text());
    let body = resp.body_text();
    let moved = serve::fleet::json_u64_field(&body, "moved").unwrap();
    assert!(moved > 0, "node 3 owned none of 12 keys? {body}");
    assert_eq!(
        serve::fleet::json_u64_field(&body, "epoch"),
        Some(2),
        "{body}"
    );

    // And rejoins: pulls its slice back, epoch bumps again.
    let resp = HttpClient::connect_str(&addrs[2])
        .unwrap()
        .get("/v1/cluster/join")
        .unwrap();
    assert_eq!(resp.status, 200, "join: {}", resp.body_text());
    let body = resp.body_text();
    assert_eq!(
        serve::fleet::json_u64_field(&body, "epoch"),
        Some(3),
        "{body}"
    );
    assert!(
        serve::fleet::json_u64_field(&body, "imported").unwrap() > 0,
        "rejoin pulled nothing back: {body}"
    );

    stop.store(true, Ordering::Relaxed);
    for t in traffic {
        t.join().unwrap();
    }
    assert_eq!(
        wrong.load(Ordering::Relaxed),
        0,
        "wrong bytes served during rebalance"
    );
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "requests failed during rebalance"
    );

    // Steady state after two epoch bumps: still byte-identical from
    // every entry node.
    for (i, p) in all.iter().enumerate() {
        for addr in &addrs {
            let (r, _) = get_redirecting(addr, p, 8).unwrap();
            assert_eq!(r.status, 200);
            assert_eq!(r.body, expected[i], "{p} via {addr} after rebalance");
        }
    }

    // A stale rebalance epoch is refused — replaying the decommission
    // negotiation at an old epoch cannot regress the ring.
    let resp = HttpClient::connect_str(&addrs[0])
        .unwrap()
        .get("/v1/cluster/segment?node=2&epoch=2&members=1,2")
        .unwrap();
    assert_eq!(resp.status, 409, "stale epoch must be refused");

    for h in handles {
        h.shutdown();
    }
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}
