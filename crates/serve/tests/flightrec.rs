//! The live observability layer end to end: request-id echo and
//! propagation through single-flight followers, flight-recorder events
//! for the request lifecycle, the `/metricsz` exposition, and the
//! postmortem dump a handler panic leaves behind.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serve::{
    parse_request, serve, AnalysisQuery, AnalysisViews, ApiError, Backend, ConnReader, HttpLimits,
    Request, Response, Router, ServeConfig,
};

fn request(line: &str) -> Request {
    let raw = format!("GET {line} HTTP/1.1\r\n\r\n");
    let mut reader = ConnReader::new(raw.as_bytes());
    parse_request(&mut reader, &HttpLimits::default()).unwrap()
}

fn request_with_rid(line: &str, rid: &str) -> Request {
    let raw = format!("GET {line} HTTP/1.1\r\nX-Request-Id: {rid}\r\n\r\n");
    let mut reader = ConnReader::new(raw.as_bytes());
    parse_request(&mut reader, &HttpLimits::default()).unwrap()
}

fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
    resp.extra_headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

struct EchoBackend;

impl Backend for EchoBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": []}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        if q.app == "sick" {
            return Err(ApiError::Degraded {
                config: q.config.clone(),
                error: "injected degradation".into(),
            });
        }
        Ok(AnalysisViews {
            verdict: format!("verdict:{}:{}\n", q.app, q.config),
            conflicts: "c\n".to_string(),
            patterns: "p\n".to_string(),
        })
    }
}

#[test]
fn request_ids_are_minted_echoed_and_kept_out_of_bodies() {
    obs::set_flight(true);
    let r = Router::new(Arc::new(EchoBackend), 16);

    // No inbound id: a fresh deterministic-format one is minted.
    let resp = r.handle(&request("/healthz"));
    let minted = header(&resp, "X-Request-Id").expect("response carries a request id");
    assert!(minted.starts_with("req-"), "minted id format: {minted}");
    assert_eq!(minted.len(), 20);

    // Inbound id honored and echoed verbatim.
    let resp = r.handle(&request_with_rid(
        "/v1/verdict/a/b?ranks=4",
        "trace-abc-123",
    ));
    assert_eq!(header(&resp, "X-Request-Id"), Some("trace-abc-123"));

    // A garbage inbound id is replaced, not echoed.
    let resp = r.handle(&request_with_rid("/healthz", "bad id with spaces"));
    let replaced = header(&resp, "X-Request-Id").unwrap();
    assert!(replaced.starts_with("req-"));

    // Ids never leak into bodies: same query, different rid, same bytes.
    let a = r.handle(&request_with_rid("/v1/verdict/a/b?ranks=4", "rid-one"));
    let b = r.handle(&request_with_rid("/v1/verdict/a/b?ranks=4", "rid-two"));
    assert_eq!(a.body, b.body, "request ids must not affect body bytes");
}

#[test]
fn flight_ring_records_the_request_lifecycle() {
    obs::set_flight(true);
    let r = Router::new(Arc::new(EchoBackend), 16);
    let rid = "rid-lifecycle-77";
    r.handle(&request_with_rid("/v1/verdict/life/x?ranks=2", rid));
    // A degraded run names its config in the ring.
    r.handle(&request_with_rid(
        "/v1/verdict/sick/badcfg?ranks=2",
        "rid-degraded-77",
    ));

    let events = obs::flight().snapshot();
    let mine: Vec<_> = events.iter().filter(|e| e.rid == rid).collect();
    assert!(
        mine.iter().any(|e| e.kind == obs::FlightKind::ReqStart),
        "missing request-start for {rid}"
    );
    let end = mine
        .iter()
        .find(|e| e.kind == obs::FlightKind::ReqEnd)
        .expect("missing request-end");
    assert_eq!(end.code, 200);
    assert!(end.detail.contains("/v1/verdict/life/x"));
    assert!(
        mine.iter().any(|e| e.kind == obs::FlightKind::CacheMiss),
        "cold request should record its cache miss"
    );
    let degraded = events
        .iter()
        .find(|e| e.kind == obs::FlightKind::Degraded && e.rid == "rid-degraded-77")
        .expect("degraded event recorded");
    assert_eq!(degraded.detail, "badcfg", "422 names the degrading config");

    // The on-demand dump serves the same ring.
    let resp = r.handle(&request("/v1/debug/flightrec"));
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    assert!(body.contains("rid-lifecycle-77"));
    assert!(body.contains("\"request-end\""));
}

#[test]
fn metricsz_is_a_valid_exposition_with_slo_rows() {
    obs::set_flight(true);
    let r = Router::new(Arc::new(EchoBackend), 16);
    for _ in 0..5 {
        assert_eq!(r.handle(&request("/v1/verdict/m/x?ranks=2")).status, 200);
    }
    assert_eq!(r.handle(&request("/v1/verdict/sick/y?ranks=2")).status, 422);
    assert_eq!(r.handle(&request("/nope")).status, 404);

    let resp = r.handle(&request("/metricsz"));
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type, "text/plain; version=0.0.4");
    let text = String::from_utf8(resp.body).unwrap();
    let samples = obs::parse_exposition(&text).expect("exposition must parse");

    let find = |name: &str, endpoint: &str, class: &str| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.label("endpoint") == Some(endpoint)
                    && s.label("class") == Some(class)
            })
            .map(|s| s.value)
    };
    assert_eq!(find("serve_requests_total", "verdict", "2xx"), Some(5.0));
    assert_eq!(find("serve_requests_total", "verdict", "4xx"), Some(1.0));
    assert_eq!(find("serve_requests_total", "other", "4xx"), Some(1.0));
    assert_eq!(find("serve_window_requests", "verdict", "2xx"), Some(5.0));
    // Latency quantiles exist for the endpoint that served traffic.
    assert!(samples.iter().any(|s| {
        s.name == "serve_window_latency_ns"
            && s.label("endpoint") == Some("verdict")
            && s.label("quantile") == Some("0.99")
            && s.value > 0.0
    }));
    assert!(samples
        .iter()
        .any(|s| s.name == "serve_flightrec_depth" && s.value > 0.0));
    assert!(samples.iter().any(|s| s.name == "serve_uptime_ms"));
}

/// Blocks every `analyze` call until the gate opens (same technique as
/// the single-flight suite) so followers demonstrably park.
struct GatedBackend {
    gate: Mutex<bool>,
    open: Condvar,
    calls: AtomicUsize,
}

impl Backend for GatedBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": []}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.open.wait(open).unwrap();
        }
        drop(open);
        self.calls.fetch_add(1, Ordering::SeqCst);
        Ok(AnalysisViews {
            verdict: format!("verdict:{}\n", q.app),
            conflicts: "c\n".to_string(),
            patterns: "p\n".to_string(),
        })
    }
}

#[test]
fn coalesced_followers_name_their_leader() {
    obs::set_flight(true);
    obs::set_metrics(true);
    let backend = Arc::new(GatedBackend {
        gate: Mutex::new(false),
        open: Condvar::new(),
        calls: AtomicUsize::new(0),
    });
    let router = Arc::new(Router::new(Arc::clone(&backend) as Arc<dyn Backend>, 16));
    let waiters_before = obs::metrics().counter("serve.coalesced_waiters").get();

    const N: usize = 6;
    let mut threads = Vec::new();
    for i in 0..N {
        let router = Arc::clone(&router);
        threads.push(std::thread::spawn(move || {
            let rid = format!("rid-sf-{i}");
            let resp = router.handle(&request_with_rid("/v1/verdict/coal/x?ranks=4", &rid));
            (rid, resp)
        }));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while obs::metrics().counter("serve.coalesced_waiters").get() < waiters_before + (N as u64 - 1)
    {
        assert!(Instant::now() < deadline, "followers never parked");
        std::thread::sleep(Duration::from_millis(5));
    }
    *backend.gate.lock().unwrap() = true;
    backend.open.notify_all();

    let results: Vec<(String, Response)> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let leaders: Vec<&(String, Response)> = results
        .iter()
        .filter(|(_, r)| header(r, "X-Coalesced-Leader").is_none())
        .collect();
    assert_eq!(leaders.len(), 1, "exactly one request led the flight");
    let leader_rid = leaders[0].0.as_str();
    for (rid, resp) in &results {
        assert_eq!(resp.status, 200);
        assert_eq!(header(resp, "X-Request-Id"), Some(rid.as_str()));
        if rid != leader_rid {
            assert_eq!(
                header(resp, "X-Coalesced-Leader"),
                Some(leader_rid),
                "follower {rid} must name the leader"
            );
        }
    }
    assert_eq!(backend.calls.load(Ordering::SeqCst), 1);
    // The ring saw the same story: followers' singleflight-follow events
    // carry the leader's rid in their detail field.
    let follows: Vec<_> = obs::flight()
        .snapshot()
        .into_iter()
        .filter(|e| e.kind == obs::FlightKind::SfFollow && e.rid.starts_with("rid-sf-"))
        .collect();
    assert_eq!(follows.len(), N - 1);
    for f in &follows {
        assert_eq!(f.detail, leader_rid);
    }
}

struct PanickyBackend;

impl Backend for PanickyBackend {
    fn apps_json(&self) -> String {
        "{\"apps\": []}\n".to_string()
    }

    fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
        Ok(q)
    }

    fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
        if q.app == "boom" {
            panic!("injected handler panic");
        }
        Ok(AnalysisViews {
            verdict: "v\n".to_string(),
            conflicts: "c\n".to_string(),
            patterns: "p\n".to_string(),
        })
    }
}

#[test]
fn handler_panic_dumps_postmortem_naming_the_request() {
    obs::set_flight(true);
    let dir = std::env::temp_dir().join(format!("flightrec-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let postmortem = dir.join("postmortem.jsonl");
    let _ = std::fs::remove_file(&postmortem);

    let cfg = ServeConfig {
        postmortem: Some(postmortem.clone()),
        ..ServeConfig::default()
    };
    let handle = serve(cfg, Arc::new(PanickyBackend)).unwrap();

    // Raw request so we control the X-Request-Id header; the handler
    // panics mid-dispatch, so the peer sees a reset, not a response.
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
    s.write_all(b"GET /v1/verdict/boom/x HTTP/1.1\r\nX-Request-Id: rid-kaboom-9\r\n\r\n")
        .unwrap();
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink); // connection dies with the handler

    // The pool dumps the ring as soon as it catches the unwind.
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        if let Ok(text) = std::fs::read_to_string(&postmortem) {
            if text.contains("handler-panic") {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "postmortem never appeared");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        text.contains("rid-kaboom-9"),
        "postmortem must name the panicking request"
    );
    assert!(text.contains("\"handler-panic\""));

    // The worker survived: the server still answers.
    let resp = serve::get_once(handle.addr(), "/healthz").unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("X-Request-Id").map(|r| &r[..4]),
        Some("req-"),
        "live server responses carry ids end to end"
    );

    handle.shutdown();
    // Drain appended its own dump line after the panic line.
    let text = std::fs::read_to_string(&postmortem).unwrap();
    assert!(text.contains("sigterm-drain"));
    let _ = std::fs::remove_dir_all(&dir);
}
