//! The TCP front-end: accept loop, connection lifecycle, backpressure,
//! and graceful shutdown.
//!
//! ```text
//! accept loop (own thread; `serve` returns once the socket is bound)
//!   ├─ nonblocking accept, polling the handle's stop flag + signal flag
//!   ├─ WorkerPool::try_submit(connection job)
//!   │    └─ QueueFull ⇒ write 503 + Retry-After inline, close
//!   └─ on shutdown: stop accepting, drain pool (in-flight requests
//!      finish, queued connections are served), then return
//! ```
//!
//! Each connection job runs the keep-alive loop: parse request → route →
//! write response, until the peer closes, an error forces a close, or the
//! pool starts draining. A draining handler finishes the *current*
//! request and then closes instead of waiting for another — that is what
//! makes SIGTERM drain quickly even with idle keep-alive clients parked
//! on workers.
//!
//! The connection's `TcpStream` rides inside an `Arc<Mutex<Option<..>>>`
//! slot shared between the queued job and the accept loop: on a full
//! queue, the accept loop takes the stream back out of the slot and
//! answers 503 itself — backpressure costs one cheap write at the door,
//! never a queue slot.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::fleet::{ClusterConfig, ClusterRuntime};
use crate::http::{parse_request, ConnReader, HttpLimits, Response};
use crate::pool::WorkerPool;
use crate::router::{Backend, Router};
use crate::signal;

/// Serving parameters; `Default` gives the `report serve` defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Port to bind on 127.0.0.1; 0 lets the OS pick (the bound port is
    /// reported via [`ServerHandle::port`] and printed by `report serve`).
    pub port: u16,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Verdict-cache capacity (entries; one entry = all three views of
    /// one canonical query).
    pub cache_entries: usize,
    /// Pending-connection queue bound; beyond it, new connections get 503.
    pub queue_cap: usize,
    /// Per-read socket timeout. Small, so handlers notice shutdown
    /// promptly; the parser retries reads until `HttpLimits`' header
    /// deadline, so slow legitimate clients are unaffected.
    pub read_timeout: Duration,
    /// Parser limits.
    pub limits: HttpLimits,
    /// `Retry-After` seconds advertised on 503.
    pub retry_after_secs: u32,
    /// Persistent verdict store. When set, cold results are journaled to
    /// disk, misses consult the store before the backend, and the accept
    /// loop compacts the journal into a snapshot at drain time.
    pub store: Option<Arc<store::Store>>,
    /// Where flight-recorder postmortems land (appended, one JSON doc
    /// per line) on handler panic and on drain. `None` disables file
    /// dumps; `GET /v1/debug/flightrec` works regardless.
    pub postmortem: Option<std::path::PathBuf>,
    /// Cluster membership (`--cluster-id`/`--peers`). When set, this node
    /// serves only its consistent-hash ring slice authoritatively and
    /// forwards or redirects foreign keys; a liveness prober thread runs
    /// alongside the accept loop.
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: 4,
            cache_entries: 256,
            queue_cap: 64,
            read_timeout: Duration::from_millis(50),
            limits: HttpLimits::default(),
            retry_after_secs: 1,
            store: None,
            postmortem: None,
            cluster: None,
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] also shuts down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stop accepting, drain in-flight and queued work, join everything.
    pub fn shutdown(mut self) {
        self.begin_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind 127.0.0.1:`port` and serve `backend` until shutdown is requested
/// (via the returned handle, SIGINT, or SIGTERM). The accept loop runs on
/// its own thread; the call returns as soon as the socket is bound.
pub fn serve(cfg: ServeConfig, backend: Arc<dyn Backend>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    listener.set_nonblocking(true)?;
    obs::set_postmortem_path(cfg.postmortem.as_deref());
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let cluster = match cfg.cluster.clone() {
        Some(cl_cfg) => {
            Some(Arc::new(ClusterRuntime::new(cl_cfg).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e)
            })?))
        }
        None => None,
    };
    let router = Arc::new(Router::with_cluster(
        backend,
        cfg.cache_entries,
        cfg.store.clone(),
        cluster,
    ));

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("serve-accept".into())
        .spawn(move || accept_loop(&listener, &cfg, &accept_stop, &router))?;

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: &TcpListener, cfg: &ServeConfig, stop: &AtomicBool, router: &Arc<Router>) {
    let pool = WorkerPool::new(cfg.workers, cfg.queue_cap);
    let draining = pool.draining_flag();

    // Clustered nodes probe peer /healthz continuously so proxying can
    // degrade to local recompute the moment a peer dies, rather than on
    // the first failed forward.
    let prober_stop = Arc::new(AtomicBool::new(false));
    let prober = router.cluster().map(|cl| {
        let cl = Arc::clone(cl);
        let stop_flag = Arc::clone(&prober_stop);
        std::thread::Builder::new()
            .name("serve-cluster-probe".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::SeqCst) && !signal::shutdown_requested() {
                    cl.probe_all(Duration::from_millis(250));
                    // Sleep in small steps so drain isn't held up.
                    for _ in 0..6 {
                        if stop_flag.load(Ordering::SeqCst) || signal::shutdown_requested() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            })
            .expect("spawn cluster prober")
    });

    while !stop.load(Ordering::SeqCst) && !signal::shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if obs::metrics_enabled() {
                    let m = obs::metrics();
                    m.add("serve.connections", 1);
                    m.observe("serve.queue_depth", pool.queued() as u64);
                }
                // The stream lives in a shared slot so a rejected submit
                // can reclaim it for the inline 503.
                let slot = Arc::new(Mutex::new(Some(stream)));
                let job_slot = Arc::clone(&slot);
                let router = Arc::clone(router);
                let draining = Arc::clone(&draining);
                let conn_cfg = cfg.clone();
                let submitted = pool.try_submit(Box::new(move || {
                    if let Some(stream) = job_slot.lock().unwrap().take() {
                        handle_connection(stream, &conn_cfg, &router, &draining);
                    }
                }));
                if submitted.is_err() {
                    if obs::metrics_enabled() {
                        obs::metrics().add("serve.rejected_503", 1);
                    }
                    obs::flight::record(obs::FlightKind::Overload, 503, 0, 0, "", "accept-queue");
                    if let Some(mut stream) = slot.lock().unwrap().take() {
                        let _ = Response::overloaded(cfg.retry_after_secs).write_to(&mut stream);
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                obs::error!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    // Graceful drain: everything accepted gets served before we return,
    // then the store's journal tail is folded into a snapshot so the
    // next process recovers from one segment. The flight ring is
    // persisted last, so the postmortem shows the drain completing.
    obs::flight::record(obs::FlightKind::Drain, 0, 0, 0, "", "drain-begin");
    prober_stop.store(true, Ordering::SeqCst);
    if let Some(t) = prober {
        let _ = t.join();
    }
    pool.shutdown();
    router.flush_store();
    obs::flight::dump_postmortem("sigterm-drain");
}

fn handle_connection(stream: TcpStream, cfg: &ServeConfig, router: &Router, draining: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = ConnReader::new(stream);
    loop {
        if draining.load(Ordering::SeqCst) || signal::shutdown_requested() {
            return;
        }
        match parse_request(&mut reader, &cfg.limits) {
            Ok(req) => {
                let mut resp = router.handle(&req);
                // Honor the peer's connection preference, and stop serving
                // this session once shutdown begins.
                if !req.keep_alive || draining.load(Ordering::SeqCst) {
                    resp.close = true;
                }
                let close = resp.close;
                if resp.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Err(err) => {
                if let Some(resp) = err.response() {
                    let _ = resp.write_to(&mut writer);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::router::{AnalysisQuery, AnalysisViews, ApiError};

    struct TinyBackend;

    impl Backend for TinyBackend {
        fn apps_json(&self) -> String {
            "{\"apps\": [\"tiny\"]}\n".to_string()
        }

        fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
            Ok(q)
        }

        fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
            Ok(AnalysisViews {
                verdict: format!("{{\"app\": \"{}\"}}\n", q.app),
                conflicts: "{}\n".to_string(),
                patterns: "{}\n".to_string(),
            })
        }
    }

    #[test]
    fn serves_and_shuts_down_gracefully() {
        let handle = serve(ServeConfig::default(), Arc::new(TinyBackend)).unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let health = client.get("/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(String::from_utf8_lossy(&health.body).contains("\"ok\""));
        // Keep-alive: second request on the same connection.
        let apps = client.get("/v1/apps").unwrap();
        assert_eq!(apps.status, 200);
        let verdict = client.get("/v1/verdict/tiny/x").unwrap();
        assert_eq!(verdict.status, 200);
        assert!(String::from_utf8_lossy(&verdict.body).contains("tiny"));
        handle.shutdown();
    }

    #[test]
    fn http10_connection_closes_after_response() {
        let handle = serve(ServeConfig::default(), Arc::new(TinyBackend)).unwrap();
        use std::io::{Read, Write};
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        let mut out = Vec::new();
        s.read_to_end(&mut out).unwrap(); // server closes ⇒ read_to_end returns
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200"));
        assert!(text.contains("Connection: close"));
        handle.shutdown();
    }
}
