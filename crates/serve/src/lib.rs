//! # serve — the zero-dependency analysis service
//!
//! The paper's pipeline answers one question per invocation: *does this
//! application, on this I/O configuration, need stronger-than-session
//! file-system semantics?* The answer is a deterministic function of a
//! small key — `(app, io-config, ranks, seed, semantics model, fault
//! plan)` — which makes it cacheable, and cacheable makes it servable:
//! this crate turns the fused `AnalysisContext` pipeline into a long-lived
//! HTTP service so a verdict costs a simulation once and a memcpy
//! thereafter.
//!
//! Like every other crate in the workspace, it is built from scratch on
//! `std` alone (the build must succeed with no registry access):
//!
//! * [`http`] — hand-rolled, bounds-checked HTTP/1.1 parser and a
//!   deterministic response writer (no `Date` header; response *bodies*
//!   carry no timestamps or request ids — the property behind the
//!   warm-equals-cold byte-identity guarantee; correlation ids live in
//!   headers only).
//! * [`pool`] — fixed worker pool over a bounded queue; a full queue is
//!   answered 503 + `Retry-After` at the accept loop (explicit
//!   backpressure), and shutdown drains in-flight work.
//! * [`cache`] — sharded LRU keyed by [`semantics_core::CacheKey`]
//!   fingerprints with full-key verification on hit.
//! * [`router`] — URL space and error mapping over a pluggable
//!   [`router::Backend`]; `report-gen` supplies the real backend so the
//!   dependency arrow stays serve ← report, never circular. Misses are
//!   single-flight coalesced (one cold analysis per canonical key, with
//!   panic-safe abort publication) and optionally backed by the
//!   crash-safe persistent `store` tier, so a restarted process answers
//!   warm with bytes identical to what the dead one served.
//! * [`server`] — accept loop, connection lifecycle, SIGTERM/ctrl-c
//!   graceful drain (via [`signal`]).
//! * [`client`] — the minimal blocking client loadgen and the tests use.
//! * [`fleet`] — the cluster tier: consistent-hash routing of analysis
//!   keys across a sharded serving fleet (`--cluster-id`/`--peers`),
//!   proxy or 307-redirect forwarding with a hop limit, liveness-aware
//!   degradation to local recompute, and snapshot-segment rebalancing
//!   on membership change (the route table itself lives in the
//!   zero-dependency `cluster` crate).
//!
//! * [`reqid`] — deterministic-format request ids (inbound
//!   `X-Request-Id` honored, echoed in responses, threaded through
//!   router → single-flight → store as the span/flight-recorder
//!   context).
//!
//! Endpoints: `GET /healthz`, `/metricsz` (Prometheus-style SLO
//! exposition), `/v1/apps`, `/v1/metrics`, `/v1/debug/flightrec` (the
//! flight-recorder ring as JSON), and
//! `/v1/{verdict|conflicts|patterns}/{app}/{config}` with `ranks`,
//! `seed`, `model`, `faults` query parameters.

pub mod cache;
pub mod client;
pub mod fleet;
pub mod http;
pub mod pool;
pub mod reqid;
pub mod router;
pub mod server;
pub mod signal;

pub use cache::ShardedLru;
pub use client::{get_once, get_redirecting, ClientResponse, HttpClient};
pub use fleet::{ClusterConfig, ClusterRuntime, Forwarding};
pub use http::{parse_request, ConnReader, HttpLimits, ParseError, Request, Response};
pub use pool::{QueueFull, WorkerPool};
pub use reqid::{next_request_id, request_id, REQUEST_ID_HEADER};
pub use router::{
    decode_views, encode_views, AnalysisQuery, AnalysisViews, ApiError, Backend, Router,
    SLO_ENDPOINTS,
};
pub use server::{serve, ServeConfig, ServerHandle};
