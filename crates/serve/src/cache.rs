//! Sharded LRU cache for derived-analysis results.
//!
//! Keys are [`semantics_core::CacheKey`]s — stable fingerprints over
//! `(app, io-config, ranks, seed, semantics model, fault plan)` — and
//! values are whatever the router wants to reuse (an `Arc` of the
//! rendered response bodies). The map is sharded by the key fingerprint
//! so concurrent workers rarely contend on one lock, mirroring the obs
//! metrics registry's design; within a shard, entries carry a
//! last-touched tick and eviction scans for the minimum. Shards are small
//! (capacity / shard count), so the O(shard) eviction scan is cheaper
//! than maintaining linked-list order under a lock.
//!
//! Lookups compare the full canonical key string, not just the
//! fingerprint — a fingerprint collision can cost a false miss-and-evict,
//! never a wrong answer.
//!
//! Degraded artifacts (the router's 422 bodies) are admitted under a
//! separate, much smaller quota: a fault-campaign burst hammering the
//! service with failing queries can only ever displace *other* degraded
//! entries, never the healthy verdicts the cache exists to keep warm.

use std::collections::HashMap;
use std::sync::Mutex;

use semantics_core::CacheKey;

struct Entry<V> {
    canonical: String,
    value: V,
    last_used: u64,
    /// Admitted via [`ShardedLru::insert_degraded`] — counted against the
    /// shard's degraded quota and the only eviction victims such inserts
    /// may pick.
    degraded: bool,
}

struct Shard<V> {
    /// Keyed by fingerprint; canonical string verified on hit.
    map: HashMap<(u64, u64), Entry<V>>,
    tick: u64,
    /// Entries with `degraded` set, maintained incrementally.
    degraded: usize,
}

/// The cache. `V` is cloned out on hit — use an `Arc` for large values.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_cap: usize,
    /// Ceiling on degraded entries per shard (¼ of the shard, min 1).
    per_shard_degraded_cap: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache holding ~`capacity` entries across `shards` locks.
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard_cap = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                        degraded: 0,
                    })
                })
                .collect(),
            per_shard_cap,
            per_shard_degraded_cap: (per_shard_cap / 4).max(1),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Look `key` up, refreshing its recency on hit.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(&key.fingerprint())?;
        if entry.canonical != key.canonical() {
            // Fingerprint collision with a different key: treat as a miss.
            return None;
        }
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Insert (or refresh) a healthy entry, evicting the
    /// least-recently-used entry of its shard when that shard is full.
    pub fn insert(&self, key: &CacheKey, value: V) {
        self.insert_classed(key, value, false);
    }

    /// Insert (or refresh) a degraded artifact under the smaller degraded
    /// quota. Over quota — or with the shard full — the victim must be
    /// another degraded entry; when none exists the insert is dropped
    /// rather than evicting a healthy verdict. (The outcome is
    /// deterministic, so the worst case is recomputing a failing run.)
    pub fn insert_degraded(&self, key: &CacheKey, value: V) {
        self.insert_classed(key, value, true);
    }

    fn insert_classed(&self, key: &CacheKey, value: V, degraded: bool) {
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let fp = key.fingerprint();
        if !shard.map.contains_key(&fp) {
            if degraded {
                if shard.degraded >= self.per_shard_degraded_cap
                    || shard.map.len() >= self.per_shard_cap
                {
                    let victim = shard
                        .map
                        .iter()
                        .filter(|(_, e)| e.degraded)
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(&k, _)| k);
                    match victim {
                        Some(v) => {
                            shard.map.remove(&v);
                            shard.degraded -= 1;
                        }
                        None => return,
                    }
                }
            } else if shard.map.len() >= self.per_shard_cap {
                if let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.last_used) {
                    if shard.map.remove(&victim).is_some_and(|e| e.degraded) {
                        shard.degraded -= 1;
                    }
                }
            }
        }
        let old = shard.map.insert(
            fp,
            Entry {
                canonical: key.canonical().to_string(),
                value,
                last_used: tick,
                degraded,
            },
        );
        let was_degraded = old.is_some_and(|e| e.degraded);
        if degraded && !was_degraded {
            shard.degraded += 1;
        } else if !degraded && was_degraded {
            shard.degraded -= 1;
        }
    }

    /// Total entries across every shard.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Degraded entries across every shard (for metrics and tests).
    pub fn degraded_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().degraded).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semantics_core::CacheKeyBuilder;

    fn key(n: u64) -> CacheKey {
        CacheKeyBuilder::new().push_u64("k", n).finish()
    }

    #[test]
    fn get_after_insert_round_trips() {
        let cache: ShardedLru<u64> = ShardedLru::new(8, 2);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(&key(1), 11);
        assert_eq!(cache.get(&key(1)), Some(11));
        cache.insert(&key(1), 12);
        assert_eq!(cache.get(&key(1)), Some(12));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        // One shard, capacity 2 ⇒ classic LRU behaviour.
        let cache: ShardedLru<u64> = ShardedLru::new(2, 1);
        cache.insert(&key(1), 1);
        cache.insert(&key(2), 2);
        assert_eq!(cache.get(&key(1)), Some(1)); // touch 1 ⇒ 2 becomes LRU
        cache.insert(&key(3), 3);
        assert_eq!(cache.get(&key(2)), None, "LRU entry evicted");
        assert_eq!(cache.get(&key(1)), Some(1));
        assert_eq!(cache.get(&key(3)), Some(3));
    }

    #[test]
    fn capacity_is_bounded_under_churn() {
        let cache: ShardedLru<u64> = ShardedLru::new(16, 4);
        for n in 0..1000 {
            cache.insert(&key(n), n);
        }
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn degraded_burst_cannot_evict_healthy_entries() {
        // One shard, capacity 4 ⇒ degraded quota 1. Fill with healthy
        // verdicts, then hammer with degraded artifacts.
        let cache: ShardedLru<u64> = ShardedLru::new(4, 1);
        for n in 0..4 {
            cache.insert(&key(n), n);
        }
        for n in 100..200 {
            cache.insert_degraded(&key(n), n);
        }
        for n in 0..4 {
            assert_eq!(cache.get(&key(n)), Some(n), "healthy verdict {n} evicted");
        }
        assert!(cache.len() <= 4);
        assert_eq!(
            cache.degraded_entries(),
            0,
            "full shard of healthy entries admits no degraded artifact"
        );
    }

    #[test]
    fn degraded_entries_bounded_by_quota_and_displace_each_other() {
        // One shard, capacity 8 ⇒ degraded quota 2.
        let cache: ShardedLru<u64> = ShardedLru::new(8, 1);
        cache.insert(&key(1), 1);
        for n in 100..120 {
            cache.insert_degraded(&key(n), n);
        }
        assert_eq!(cache.degraded_entries(), 2, "quota is capacity/4");
        assert_eq!(cache.get(&key(1)), Some(1));
        // The two most recent degraded artifacts survived (LRU among
        // degraded only) and refresh normally.
        assert_eq!(cache.get(&key(118)), Some(118));
        assert_eq!(cache.get(&key(119)), Some(119));
        // Refreshing an existing degraded entry is never dropped.
        cache.insert_degraded(&key(119), 1190);
        assert_eq!(cache.get(&key(119)), Some(1190));
        assert_eq!(cache.degraded_entries(), 2);
    }

    #[test]
    fn healthy_inserts_still_evict_degraded_lru_entries() {
        // One shard, capacity 2 ⇒ quota 1. A healthy insert into a full
        // shard may evict a degraded entry (global LRU), and the counter
        // tracks it.
        let cache: ShardedLru<u64> = ShardedLru::new(2, 1);
        cache.insert_degraded(&key(100), 100);
        cache.insert(&key(1), 1);
        cache.insert(&key(2), 2); // shard full; key(100) is LRU
        assert_eq!(cache.get(&key(100)), None, "degraded LRU evicted");
        assert_eq!(cache.degraded_entries(), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: std::sync::Arc<ShardedLru<u64>> = std::sync::Arc::new(ShardedLru::new(64, 8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for n in 0..500u64 {
                        let k = key(n % 97);
                        cache.insert(&k, n + t);
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }
}
