//! Hand-rolled, bounds-checked HTTP/1.1 request parser and response
//! writer.
//!
//! The offline build has no web-framework crates, so the wire protocol is
//! implemented directly over `std::io`: a buffered [`ConnReader`] that
//! retains leftover bytes across requests (keep-alive and pipelining come
//! for free), [`parse_request`] with hard limits on every dimension a
//! hostile peer controls (request-line length, header count, header-block
//! bytes, total header time), and a deterministic [`Response`] writer
//! whose *bodies* contain no timestamps or per-request identifiers — the
//! property that lets the verdict cache promise byte-identical warm
//! responses. (Correlation ids like `X-Request-Id` ride in
//! `extra_headers`, outside the body contract.)
//!
//! Every malformed, oversized, truncated, or dawdling request maps to a
//! typed [`ParseError`]; the connection loop converts those into 4xx
//! responses (when the peer is still writable) or a clean close. Nothing
//! in this module panics on untrusted input — the adversarial test suite
//! feeds it garbage, partial lines, and slow-loris dribbles.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Hard caps on attacker-controlled request dimensions.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Longest accepted request line (method + URI + version), bytes.
    pub max_request_line: usize,
    /// Cap on the whole header block, bytes.
    pub max_header_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Wall-clock budget for receiving one complete request head; a peer
    /// dribbling bytes slower than this (slow loris) is cut off.
    pub header_deadline: Duration,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 2048,
            max_header_bytes: 8192,
            max_headers: 64,
            header_deadline: Duration::from_secs(5),
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Clean EOF before any byte of a new request — the peer ended the
    /// keep-alive session; not an error.
    ConnectionClosed,
    /// EOF in the middle of a request head.
    Truncated,
    /// The header deadline or a socket read timeout expired.
    Timeout,
    /// Request line longer than the limit.
    RequestLineTooLong,
    /// Header block over the byte or field-count cap.
    HeadersTooLarge,
    /// Syntactically invalid request.
    Malformed(String),
    /// The request carries a body (`Content-Length` > 0 or any
    /// `Transfer-Encoding`); this API is GET-only and never reads bodies.
    BodyNotAllowed,
    /// Not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion,
    /// Underlying transport error.
    Io(io::Error),
}

impl ParseError {
    /// The response owed to the peer, if the failure mode leaves the
    /// connection in a writable state (`None` ⇒ just close).
    pub fn response(&self) -> Option<Response> {
        match self {
            ParseError::ConnectionClosed | ParseError::Truncated | ParseError::Io(_) => None,
            ParseError::Timeout => Some(Response::error(408, "request timed out")),
            ParseError::RequestLineTooLong => Some(Response::error(414, "request line too long")),
            ParseError::HeadersTooLarge => {
                Some(Response::error(431, "request header fields too large"))
            }
            ParseError::Malformed(msg) => Some(Response::error(400, msg)),
            ParseError::BodyNotAllowed => {
                Some(Response::error(400, "request bodies are not accepted"))
            }
            ParseError::UnsupportedVersion => Some(Response::error(
                505,
                "only HTTP/1.0 and HTTP/1.1 are supported",
            )),
        }
    }
}

/// One parsed request head.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    pub headers: Vec<(String, String)>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Path split on `/`, empty segments dropped.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// A buffered reader that retains unconsumed bytes between requests, so
/// pipelined requests queued in one TCP segment are each parsed in turn.
pub struct ConnReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl<R: Read> ConnReader<R> {
    pub fn new(inner: R) -> Self {
        ConnReader {
            inner,
            buf: vec![0; 4096],
            start: 0,
            end: 0,
        }
    }

    /// Pull more bytes from the transport. `Ok(0)` is EOF.
    fn fill(&mut self) -> io::Result<usize> {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.end == self.buf.len() {
            // Compact so there is always room to read.
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.end == self.buf.len() {
            // One buffered line fills the whole buffer (compaction freed
            // nothing). Grow rather than mistake a full buffer for EOF;
            // growth is bounded because `read_line` rejects any line
            // longer than its limit before asking for more bytes.
            self.buf.resize(self.buf.len() * 2, 0);
        }
        let n = self.inner.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Read one line, consuming through the terminating `\n` (CRLF or
    /// bare LF; the trailing terminator is stripped). `max` bounds the
    /// line length; `deadline` bounds total wall time. `at_start` marks
    /// whether EOF before any byte means a clean close.
    fn read_line(
        &mut self,
        max: usize,
        deadline: Instant,
        at_start: bool,
    ) -> Result<String, ParseError> {
        let mut scanned = 0;
        loop {
            let window = &self.buf[self.start..self.end];
            if let Some(pos) = window[scanned..].iter().position(|&b| b == b'\n') {
                let line_end = scanned + pos;
                if line_end > max {
                    return Err(oversize_error(max, at_start));
                }
                let mut line = &window[..line_end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.start += line_end + 1;
                return Ok(text);
            }
            scanned = window.len();
            if scanned > max {
                return Err(oversize_error(max, at_start));
            }
            if Instant::now() >= deadline {
                return Err(ParseError::Timeout);
            }
            match self.fill() {
                Ok(0) => {
                    return Err(if at_start && scanned == 0 {
                        ParseError::ConnectionClosed
                    } else {
                        ParseError::Truncated
                    });
                }
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(ParseError::Timeout);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ParseError::Io(e)),
            }
        }
    }
}

/// A request line that will not fit is 414; an oversized header line is
/// 431 — the two cases share the scanning code but not the status.
fn oversize_error(_max: usize, at_request_line: bool) -> ParseError {
    if at_request_line {
        ParseError::RequestLineTooLong
    } else {
        ParseError::HeadersTooLarge
    }
}

/// Parse one request head off the connection, enforcing every limit.
pub fn parse_request<R: Read>(
    reader: &mut ConnReader<R>,
    limits: &HttpLimits,
) -> Result<Request, ParseError> {
    let deadline = Instant::now() + limits.header_deadline;

    let request_line = reader.read_line(limits.max_request_line, deadline, true)?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(ParseError::Malformed("extra fields in request line".into()));
    }
    if !method
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-')
        || method.is_empty()
    {
        return Err(ParseError::Malformed("invalid method token".into()));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::UnsupportedVersion),
    };
    if !target.starts_with('/') {
        return Err(ParseError::Malformed(
            "request target must be a path".into(),
        ));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = reader.read_line(limits.max_header_bytes, deadline, false)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len() + 2;
        if header_bytes > limits.max_header_bytes || headers.len() >= limits.max_headers {
            return Err(ParseError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed("header line without colon".into()))?;
        let name = name.trim();
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed("invalid header name".into()));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: String::new(),
        query: Vec::new(),
        headers,
        keep_alive: http11,
    };

    // Bodies: this API never accepts one. A nonzero Content-Length or any
    // Transfer-Encoding is rejected outright — the unread body would
    // poison the connection for keep-alive anyway, so the error response
    // also closes it.
    if let Some(cl) = request.header("content-length") {
        let n: u64 = cl
            .trim()
            .parse()
            .map_err(|_| ParseError::Malformed("unparseable Content-Length".into()))?;
        if n > 0 {
            return Err(ParseError::BodyNotAllowed);
        }
    }
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::BodyNotAllowed);
    }

    // Connection semantics: HTTP/1.1 defaults to keep-alive, 1.0 to close.
    let keep_alive = match request.header("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
        _ => http11,
    };

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();

    Ok(Request {
        path,
        query,
        keep_alive,
        ..request
    })
}

/// Decode `%XX` escapes and `+`-as-space. Invalid escapes pass through
/// literally (never an error — the router's lookup will 404 instead).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// One response, rendered deterministically: fixed header order, no
/// `Date`, and bodies free of request ids — identical inputs yield
/// identical body bytes (per-request headers like `X-Request-Id` are
/// appended via `extra_headers`).
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After` on 503), rendered in order.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Close the connection after writing.
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON error body: `{"error": "..."}`. Error responses close the
    /// connection — after a protocol-level failure the stream state is
    /// not trustworthy.
    pub fn error(status: u16, message: &str) -> Response {
        let doc = semantics_core::json::Json::obj()
            .field("error", message)
            .field("status", u64::from(status));
        let mut r = Response::json(status, doc.pretty() + "\n");
        r.close = true;
        r
    }

    /// 503 with an explicit backpressure hint.
    pub fn overloaded(retry_after_secs: u32) -> Response {
        let mut r = Response::error(503, "server at capacity, retry later");
        r.extra_headers
            .push(("Retry-After", retry_after_secs.to_string()));
        r
    }

    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            307 => "Temporary Redirect",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            414 => "URI Too Long",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            409 => "Conflict",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            508 => "Loop Detected",
            _ => "Unknown",
        }
    }

    /// Status class for metrics: 2, 4, or 5.
    pub fn class(&self) -> u16 {
        self.status / 100
    }

    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(if self.close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(input: &str) -> Result<Request, ParseError> {
        let mut reader = ConnReader::new(input.as_bytes());
        parse_request(&mut reader, &HttpLimits::default())
    }

    #[test]
    fn parses_simple_get() {
        let req = parse_str("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.keep_alive);
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let req = parse_str(
            "GET /v1/verdict/MILC-QCD/Serial?ranks=8&faults=crash%40r1%3Aop5 HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.segments(), vec!["v1", "verdict", "MILC-QCD", "Serial"]);
        assert_eq!(req.query_param("ranks"), Some("8"));
        assert_eq!(req.query_param("faults"), Some("crash@r1:op5"));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = ConnReader::new(two.as_bytes());
        let limits = HttpLimits::default();
        let first = parse_request(&mut reader, &limits).unwrap();
        assert_eq!(first.path, "/a");
        assert!(first.keep_alive);
        let second = parse_request(&mut reader, &limits).unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        assert!(matches!(
            parse_request(&mut reader, &limits),
            Err(ParseError::ConnectionClosed)
        ));
    }

    #[test]
    fn truncated_head_is_truncated_not_panic() {
        assert!(matches!(parse_str("GET /he"), Err(ParseError::Truncated)));
        assert!(matches!(
            parse_str("GET /x HTTP/1.1\r\nHost: unfini"),
            Err(ParseError::Truncated)
        ));
        assert!(matches!(parse_str(""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn oversized_request_line_is_414_and_headers_431() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(5000));
        assert!(matches!(
            parse_str(&long_target),
            Err(ParseError::RequestLineTooLong)
        ));
        let fat_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(10_000));
        assert!(matches!(
            parse_str(&fat_header),
            Err(ParseError::HeadersTooLarge)
        ));
        let many: String = (0..100).map(|i| format!("X-{i}: v\r\n")).collect();
        assert!(matches!(
            parse_str(&format!("GET / HTTP/1.1\r\n{many}\r\n")),
            Err(ParseError::HeadersTooLarge)
        ));
    }

    #[test]
    fn bodies_are_rejected() {
        assert!(matches!(
            parse_str("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            Err(ParseError::BodyNotAllowed)
        ));
        assert!(matches!(
            parse_str("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::BodyNotAllowed)
        ));
        // Content-Length: 0 is fine.
        assert!(parse_str("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n").is_ok());
    }

    #[test]
    fn malformed_lines_are_400_class() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "G<T /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        ] {
            match parse_str(bad) {
                Err(ParseError::Malformed(_)) => {}
                other => panic!("{bad:?}: expected Malformed, got {other:?}"),
            }
        }
        assert!(matches!(
            parse_str("GET / HTTP/2.0\r\n\r\n"),
            Err(ParseError::UnsupportedVersion)
        ));
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let a = Response::json(200, "{\"x\":1}".to_string());
        let b = Response::json(200, "{\"x\":1}".to_string());
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.write_to(&mut ba).unwrap();
        b.write_to(&mut bb).unwrap();
        assert_eq!(ba, bb);
        let text = String::from_utf8(ba).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(!text.contains("Date:"), "no timestamps in responses");
    }

    #[test]
    fn overloaded_carries_retry_after() {
        let mut out = Vec::new();
        Response::overloaded(1).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 "));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close"));
    }

    #[test]
    fn percent_decode_is_total() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%4"), "%4");
        assert_eq!(percent_decode("%ff"), "\u{fffd}");
    }
}
