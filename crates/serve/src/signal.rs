//! SIGINT/SIGTERM → graceful-shutdown flag, without a libc crate.
//!
//! The offline build cannot add `libc` or `signal-hook`, so the handler
//! is registered through a direct `extern "C"` binding to `signal(2)`.
//! The handler body does the only thing that is async-signal-safe here:
//! store into a static atomic. The accept loop polls
//! [`shutdown_requested`] between accepts and drains the worker pool when
//! it flips — in-flight requests finish, new connections stop being
//! accepted.
//!
//! On non-Unix targets the flag still exists (tests and embedders call
//! [`request_shutdown`] directly); only the OS hookup is `cfg`-gated.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or requested in-process).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the shutdown flag from normal (non-signal) code — used by tests
/// and by embedders that manage their own lifecycle.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Reset the flag (process-global; tests that exercise shutdown must be
/// serialized by the caller).
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod os {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the platform libc (always linked by std).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation performed: one atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Install SIGINT/SIGTERM handlers that set the shutdown flag. Idempotent;
/// a no-op off Unix.
pub fn install_handlers() {
    #[cfg(unix)]
    os::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_for_test();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_test();
        assert!(!shutdown_requested());
    }
}
