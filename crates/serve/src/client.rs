//! Minimal blocking HTTP/1.1 client — just enough for loadgen, the test
//! suites, and the CI smoke check. Speaks keep-alive, reads
//! `Content-Length`-framed bodies, and treats anything else as a close.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response as the client saw it.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Connect by `host:port` string — how cluster peers are named in
    /// the seed table.
    pub fn connect_str(addr: &str) -> io::Result<HttpClient> {
        let sockaddr = std::net::ToSocketAddrs::to_socket_addrs(addr)?
            .next()
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "address resolves to nothing")
            })?;
        HttpClient::connect(sockaddr)
    }

    /// Issue `GET path` and read the full response.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.get_with_headers(path, &[])
    }

    /// Issue `GET path` with extra request headers (how a proxying node
    /// stamps `X-Cluster-Hops` onto a forwarded request).
    pub fn get_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, String)],
    ) -> io::Result<ClientResponse> {
        let mut req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n");
        for (name, value) in headers {
            req.push_str(name);
            req.push_str(": ");
            req.push_str(value);
            req.push_str("\r\n");
        }
        req.push_str("\r\n");
        self.stream.write_all(req.as_bytes())?;
        self.read_response()
    }

    /// Read bytes until the buffer holds at least `need`, or EOF.
    fn fill_until(&mut self, need: usize) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        while self.buf.len() < need {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        Ok(())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        // Accumulate until the blank line ending the header block.
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            self.fill_until(self.buf.len() + 1)?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);

        let body_start = head_end + 4;
        self.fill_until(body_start + content_length)?;
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Retain any pipelined surplus for the next response.
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot GET on a fresh connection.
pub fn get_once(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    HttpClient::connect(addr)?.get(path)
}

/// One-shot GET on `addr` (`host:port`), following `307 Temporary
/// Redirect` up to `max_redirects` times. Returns the final response
/// plus the address that actually served it, so redirect-learning
/// clients can cache key→owner and go straight there next time.
pub fn get_redirecting(
    addr: &str,
    path: &str,
    max_redirects: u32,
) -> io::Result<(ClientResponse, String)> {
    let mut here = addr.to_string();
    for _ in 0..=max_redirects {
        let resp = HttpClient::connect_str(&here)?.get(path)?;
        if resp.status != 307 {
            return Ok((resp, here));
        }
        let location = resp.header("location").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "307 without a Location header")
        })?;
        let rest = location.strip_prefix("http://").ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "Location is not an http:// URL")
        })?;
        here = match rest.find('/') {
            Some(slash) => rest[..slash].to_string(),
            None => rest.to_string(),
        };
    }
    Err(io::Error::new(
        io::ErrorKind::Other,
        "redirect limit exceeded (ring loop?)",
    ))
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_header_terminator() {
        assert_eq!(find_subslice(b"ab\r\n\r\ncd", b"\r\n\r\n"), Some(2));
        assert_eq!(find_subslice(b"abcd", b"\r\n\r\n"), None);
    }
}
