//! Minimal blocking HTTP/1.1 client — just enough for loadgen, the test
//! suites, and the CI smoke check. Speaks keep-alive, reads
//! `Content-Length`-framed bodies, and treats anything else as a close.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response as the client saw it.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issue `GET path` and read the full response.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        let req = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        self.stream.write_all(req.as_bytes())?;
        self.read_response()
    }

    /// Read bytes until the buffer holds at least `need`, or EOF.
    fn fill_until(&mut self, need: usize) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        while self.buf.len() < need {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        Ok(())
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        // Accumulate until the blank line ending the header block.
        let head_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            self.fill_until(self.buf.len() + 1)?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);

        let body_start = head_end + 4;
        self.fill_until(body_start + content_length)?;
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Retain any pipelined surplus for the next response.
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot GET on a fresh connection.
pub fn get_once(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    HttpClient::connect(addr)?.get(path)
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_header_terminator() {
        assert_eq!(find_subslice(b"ab\r\n\r\ncd", b"\r\n\r\n"), Some(2));
        assert_eq!(find_subslice(b"abcd", b"\r\n\r\n"), None);
    }
}
