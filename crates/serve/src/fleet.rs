//! Cluster routing runtime: the glue between the `cluster` crate's pure
//! route table and this crate's HTTP machinery.
//!
//! Every analysis request derives its cache key as usual; when the node
//! runs clustered, the key's fingerprint is looked up on the ring first.
//! A key the node owns is served locally. A key another node owns is
//! either **proxied** (forwarded over a pooled keep-alive connection,
//! with `X-Cluster-Hops` incremented so a misconfigured ring terminates
//! in a 508 instead of a socket storm) or answered **307** with the
//! authoritative peer in `Location` — selectable per node with
//! `--forwarding {proxy,redirect}`.
//!
//! Two deliberate degradations keep the fleet correct when the ring is
//! in flux:
//!
//! * **Epoch skew** — a *forwarded* request (hops ≥ 1) for a key this
//!   node does not own, where the sender's `X-Cluster-Epoch` differs
//!   from ours, means a rebalance is mid-commit. The node serves the
//!   request locally: a verdict is a pure function of the query, so the
//!   bytes are identical to the owner's — never wrong, merely computed
//!   in the wrong place once.
//! * **Dead peer** — a proxy target that fails to answer is marked dead
//!   (flight-recorder event, per-peer counter) and the request falls
//!   back to local recompute instead of surfacing an error.

use std::io;
use std::sync::Mutex;

use cluster::{ClusterState, Peer, MAX_HOPS};
use obs::FlightKind;

use crate::client::{ClientResponse, HttpClient};
use crate::http::{Request, Response};

/// What to do with a request whose key another node owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Forwarding {
    /// Forward server-side over a pooled keep-alive connection.
    Proxy,
    /// Answer 307 and let the client go to the owner itself.
    Redirect,
}

impl Forwarding {
    pub fn parse(s: &str) -> Result<Forwarding, String> {
        match s {
            "proxy" => Ok(Forwarding::Proxy),
            "redirect" => Ok(Forwarding::Redirect),
            other => Err(format!(
                "--forwarding must be 'proxy' or 'redirect', got {other:?}"
            )),
        }
    }
}

/// Cluster parameters carried by `ServeConfig`.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's id in the seed table.
    pub node_id: u32,
    /// The full seed table (must contain `node_id`).
    pub peers: Vec<Peer>,
    pub forwarding: Forwarding,
}

/// Forwarded-request hop count; incremented per proxy hop.
pub const HOPS_HEADER: &str = "X-Cluster-Hops";
/// The forwarding node's ring epoch, for skew detection at the receiver.
pub const EPOCH_HEADER: &str = "X-Cluster-Epoch";
/// On a 307: the authoritative peer, as `id@host:port`.
pub const OWNER_HEADER: &str = "X-Cluster-Owner";

/// A small pool of keep-alive connections to one peer. Connections are
/// checked out per request and returned on success; a failed request
/// drops its connection (the next checkout dials fresh).
struct PeerPool {
    addr: String,
    conns: Mutex<Vec<HttpClient>>,
}

impl PeerPool {
    fn request(&self, path: &str, headers: &[(&str, String)]) -> io::Result<ClientResponse> {
        let pooled = self.conns.lock().unwrap().pop();
        let mut conn = match pooled {
            Some(c) => c,
            None => HttpClient::connect_str(&self.addr)?,
        };
        match conn.get_with_headers(path, headers) {
            Ok(resp) => {
                let mut conns = self.conns.lock().unwrap();
                if conns.len() < 8 {
                    conns.push(conn);
                }
                Ok(resp)
            }
            Err(e) => Err(e),
        }
    }
}

/// The routing decision for one analysis request.
pub enum RouteDecision {
    /// Serve locally; `persist` says whether the store may journal the
    /// result (only keys this node owns belong in its store slice).
    Local { persist: bool },
    /// The decision produced a complete response (proxied bytes, a 307,
    /// or a 508) — return it as-is.
    Respond(Response),
}

/// Per-node cluster runtime: route table + liveness + peer pools.
pub struct ClusterRuntime {
    state: ClusterState,
    forwarding: Forwarding,
    /// One pool per seed peer except self, in seed-table order.
    pools: Vec<(u32, PeerPool)>,
}

impl ClusterRuntime {
    pub fn new(cfg: ClusterConfig) -> Result<ClusterRuntime, String> {
        let state = ClusterState::new(cfg.node_id, cfg.peers)?;
        let pools = state
            .peers()
            .iter()
            .filter(|p| p.id != cfg.node_id)
            .map(|p| {
                (
                    p.id,
                    PeerPool {
                        addr: p.addr.clone(),
                        conns: Mutex::new(Vec::new()),
                    },
                )
            })
            .collect();
        Ok(ClusterRuntime {
            state,
            forwarding: cfg.forwarding,
            pools,
        })
    }

    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    pub fn forwarding(&self) -> Forwarding {
        self.forwarding
    }

    /// Mark a peer's liveness, recording the transition in the flight
    /// ring and the `cluster.peer_transitions` counter when it changes.
    pub fn mark_alive(&self, id: u32, alive: bool) {
        if self.state.set_alive(id, alive) {
            obs::flight::record(
                FlightKind::ClusterPeerDown,
                u64::from(id),
                u64::from(alive),
                0,
                "",
                self.state.peer_addr(id).unwrap_or(""),
            );
            if obs::metrics_enabled() {
                obs::metrics().add(
                    if alive {
                        "cluster.peer_up_transitions"
                    } else {
                        "cluster.peer_down_transitions"
                    },
                    1,
                );
            }
            if alive {
                obs::info!("cluster: peer {id} is back");
            } else {
                obs::warn!("cluster: peer {id} marked dead");
            }
        }
    }

    /// Decide where one analysis request runs. `point` is the high word
    /// of the query's cache-key fingerprint; `rid` labels flight events.
    pub fn route(&self, req: &Request, point: u64, rid: &str) -> RouteDecision {
        let (owner, epoch) = self.state.owner_of(point);
        let Some(owner) = owner else {
            // Empty ring (every member decommissioned): serve locally,
            // nothing owns the slice so nothing is persisted.
            return RouteDecision::Local { persist: false };
        };
        if owner == self.state.node_id() {
            return RouteDecision::Local { persist: true };
        }

        let hops: u32 = req
            .header(HOPS_HEADER)
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if hops >= MAX_HOPS {
            if obs::metrics_enabled() {
                obs::metrics().add("cluster.loops_rejected", 1);
            }
            return RouteDecision::Respond(Response::error(
                508,
                &format!(
                    "cluster routing loop detected after {hops} hops; \
                     nodes disagree on ring ownership — check that every \
                     node was started with the same --peers table and a \
                     distinct --cluster-id"
                ),
            ));
        }
        if hops > 0 {
            // Already forwarded once. If the sender disagrees with us on
            // the epoch the ring is mid-rebalance; recompute locally
            // (deterministic ⇒ byte-identical) instead of ping-ponging
            // toward the hop limit.
            let sender_epoch: Option<u64> =
                req.header(EPOCH_HEADER).and_then(|v| v.trim().parse().ok());
            if sender_epoch != Some(epoch) {
                if obs::metrics_enabled() {
                    obs::metrics().add("cluster.epoch_skew_local", 1);
                }
                return RouteDecision::Local { persist: false };
            }
        }

        let path_query = render_path_query(req);
        match self.forwarding {
            Forwarding::Redirect => {
                let addr = self.state.peer_addr(owner).unwrap_or("");
                obs::flight::record(
                    FlightKind::ClusterRedirect,
                    u64::from(owner),
                    u64::from(hops),
                    0,
                    rid,
                    &req.path,
                );
                if obs::metrics_enabled() {
                    let m = obs::metrics();
                    m.add("cluster.redirects", 1);
                    m.add(&format!("cluster.redirect_to.{owner}"), 1);
                }
                let mut resp = Response::json(
                    307,
                    format!(
                        "{{\n  \"redirect\": \"owner\",\n  \"owner\": {owner},\n  \
                         \"addr\": \"{addr}\",\n  \"epoch\": {epoch}\n}}\n"
                    ),
                );
                resp.extra_headers
                    .push(("Location", format!("http://{addr}{path_query}")));
                resp.extra_headers
                    .push((OWNER_HEADER, format!("{owner}@{addr}")));
                RouteDecision::Respond(resp)
            }
            Forwarding::Proxy => {
                if !self.state.is_alive(owner) {
                    if obs::metrics_enabled() {
                        obs::metrics().add("cluster.dead_peer_local", 1);
                    }
                    return RouteDecision::Local { persist: false };
                }
                match self.proxy_to(owner, &path_query, hops, epoch) {
                    Ok(resp) => {
                        obs::flight::record(
                            FlightKind::ClusterForward,
                            u64::from(owner),
                            u64::from(hops),
                            0,
                            rid,
                            &req.path,
                        );
                        if obs::metrics_enabled() {
                            let m = obs::metrics();
                            m.add("cluster.forwarded", 1);
                            m.add(&format!("cluster.forward_to.{owner}"), 1);
                        }
                        RouteDecision::Respond(client_to_response(owner, resp))
                    }
                    Err(e) => {
                        obs::warn!(
                            "cluster: proxy to peer {owner} failed ({e}); recomputing locally"
                        );
                        self.mark_alive(owner, false);
                        if obs::metrics_enabled() {
                            obs::metrics().add("cluster.proxy_errors", 1);
                        }
                        RouteDecision::Local { persist: false }
                    }
                }
            }
        }
    }

    /// Forward a GET to `owner` with hop and epoch headers stamped.
    fn proxy_to(
        &self,
        owner: u32,
        path_query: &str,
        hops: u32,
        epoch: u64,
    ) -> io::Result<ClientResponse> {
        let pool = self
            .pools
            .iter()
            .find(|(id, _)| *id == owner)
            .map(|(_, p)| p)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no pool for owner"))?;
        pool.request(
            path_query,
            &[
                (HOPS_HEADER, (hops + 1).to_string()),
                (EPOCH_HEADER, epoch.to_string()),
            ],
        )
    }

    /// A probe pass over every peer (used by the server's prober thread).
    pub fn probe_all(&self, timeout: std::time::Duration) {
        for peer in self.state.peers() {
            if peer.id == self.state.node_id() {
                continue;
            }
            let alive = cluster::probe_healthz(&peer.addr, timeout);
            self.mark_alive(peer.id, alive);
        }
    }
}

/// Re-render the request's path + query string for forwarding. Both were
/// percent-decoded at parse time, so reserved bytes are re-escaped.
fn render_path_query(req: &Request) -> String {
    let mut out = String::new();
    for seg in req.path.split('/').filter(|s| !s.is_empty()) {
        out.push('/');
        out.push_str(&percent_encode(seg));
    }
    if out.is_empty() {
        out.push('/');
    }
    for (i, (k, v)) in req.query.iter().enumerate() {
        out.push(if i == 0 { '?' } else { '&' });
        out.push_str(&percent_encode(k));
        out.push('=');
        out.push_str(&percent_encode(v));
    }
    out
}

/// Minimal percent-encoder: unreserved bytes pass, everything else is
/// `%XX`. The inverse of `http::percent_decode` for round-tripping
/// forwarded query values (fault plans contain `@` and `:`).
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Convert a proxied peer response into our response type. The peer's
/// body bytes pass through untouched — that is the byte-identity
/// contract — and the owner is named in a header for observability.
fn client_to_response(owner: u32, resp: ClientResponse) -> Response {
    let content_type = match resp.header("content-type") {
        Some("application/octet-stream") => "application/octet-stream",
        Some(ct) if ct.starts_with("text/plain") => "text/plain; version=0.0.4",
        _ => "application/json",
    };
    Response {
        status: resp.status,
        content_type,
        body: resp.body,
        extra_headers: vec![("X-Cluster-Served-By", owner.to_string())],
        close: false,
    }
}

/// Extract `"name": <integer>` from a small JSON body — enough to read
/// counts out of peer `/v1/cluster/*` responses without a JSON parser.
pub fn json_u64_field(body: &str, name: &str) -> Option<u64> {
    let tag = format!("\"{name}\"");
    let at = body.find(&tag)? + tag.len();
    let rest = body[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extract `"name": [1, 2, ...]` — the member list in a peer's
/// `/v1/cluster/status` document.
pub fn json_u32_array(body: &str, name: &str) -> Option<Vec<u32>> {
    let tag = format!("\"{name}\"");
    let at = body.find(&tag)? + tag.len();
    let rest = &body[at..];
    let open = rest.find('[')?;
    let close = open + rest[open..].find(']')?;
    let mut out = Vec::new();
    for tok in rest[open + 1..close].split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            continue;
        }
        out.push(tok.parse().ok()?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, ConnReader, HttpLimits};

    fn request(line: &str, headers: &str) -> Request {
        let raw = format!("GET {line} HTTP/1.1\r\n{headers}\r\n");
        let mut reader = ConnReader::new(raw.as_bytes());
        parse_request(&mut reader, &HttpLimits::default()).unwrap()
    }

    fn runtime(node_id: u32, forwarding: Forwarding) -> ClusterRuntime {
        let peers = cluster::parse_peers("1=127.0.0.1:19001,2=127.0.0.1:19002").unwrap();
        ClusterRuntime::new(ClusterConfig {
            node_id,
            peers,
            forwarding,
        })
        .unwrap()
    }

    /// A fingerprint point owned by the given node under the 2-node ring.
    fn point_owned_by(rt: &ClusterRuntime, id: u32) -> u64 {
        for p in 0..100_000u64 {
            let point = p.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            if rt.state().owner_of(point).0 == Some(id) {
                return point;
            }
        }
        panic!("no point owned by {id}");
    }

    #[test]
    fn own_keys_are_local_with_persist() {
        let rt = runtime(1, Forwarding::Proxy);
        let req = request("/v1/verdict/a/b", "");
        let point = point_owned_by(&rt, 1);
        assert!(matches!(
            rt.route(&req, point, ""),
            RouteDecision::Local { persist: true }
        ));
    }

    #[test]
    fn foreign_keys_redirect_with_location() {
        let rt = runtime(1, Forwarding::Redirect);
        let req = request("/v1/verdict/a/b?ranks=4", "");
        let point = point_owned_by(&rt, 2);
        match rt.route(&req, point, "") {
            RouteDecision::Respond(resp) => {
                assert_eq!(resp.status, 307);
                let loc = resp
                    .extra_headers
                    .iter()
                    .find(|(k, _)| *k == "Location")
                    .map(|(_, v)| v.as_str())
                    .unwrap();
                assert_eq!(loc, "http://127.0.0.1:19002/v1/verdict/a/b?ranks=4");
                let owner = resp
                    .extra_headers
                    .iter()
                    .find(|(k, _)| *k == OWNER_HEADER)
                    .map(|(_, v)| v.as_str())
                    .unwrap();
                assert_eq!(owner, "2@127.0.0.1:19002");
            }
            _ => panic!("expected a 307"),
        }
    }

    #[test]
    fn hop_limit_is_a_508_not_a_forward() {
        let rt = runtime(1, Forwarding::Proxy);
        let req = request("/v1/verdict/a/b", &format!("{HOPS_HEADER}: {MAX_HOPS}\r\n"));
        let point = point_owned_by(&rt, 2);
        match rt.route(&req, point, "") {
            RouteDecision::Respond(resp) => {
                assert_eq!(resp.status, 508);
                assert!(resp.body_starts_with_loop_error());
            }
            _ => panic!("expected a 508"),
        }
    }

    #[test]
    fn epoch_skew_on_forwarded_request_degrades_to_local() {
        let rt = runtime(1, Forwarding::Proxy);
        // Forwarded once (hops 1) by a sender at a different epoch.
        let req = request(
            "/v1/verdict/a/b",
            &format!("{HOPS_HEADER}: 1\r\n{EPOCH_HEADER}: 99\r\n"),
        );
        let point = point_owned_by(&rt, 2);
        assert!(matches!(
            rt.route(&req, point, ""),
            RouteDecision::Local { persist: false }
        ));
    }

    #[test]
    fn dead_peer_degrades_to_local() {
        let rt = runtime(1, Forwarding::Proxy);
        rt.mark_alive(2, false);
        let req = request("/v1/verdict/a/b", "");
        let point = point_owned_by(&rt, 2);
        assert!(matches!(
            rt.route(&req, point, ""),
            RouteDecision::Local { persist: false }
        ));
    }

    #[test]
    fn path_query_roundtrips_through_encoding() {
        let req = request(
            "/v1/verdict/MILC-QCD/Serial?faults=crash%40r1%3Aop5&ranks=8",
            "",
        );
        let rendered = render_path_query(&req);
        assert_eq!(
            rendered,
            "/v1/verdict/MILC-QCD/Serial?faults=crash%40r1%3Aop5&ranks=8"
        );
    }

    #[test]
    fn json_u64_field_reads_counts() {
        assert_eq!(json_u64_field("{\"imported\": 42}", "imported"), Some(42));
        assert_eq!(json_u64_field("{\"a\":{\"b\": 7}}", "b"), Some(7));
        assert_eq!(json_u64_field("{}", "imported"), None);
        assert_eq!(json_u64_field("{\"imported\": \"x\"}", "imported"), None);
    }

    impl Response {
        fn body_starts_with_loop_error(&self) -> bool {
            String::from_utf8_lossy(&self.body).contains("routing loop")
        }
    }
}
