//! Fixed worker pool with a bounded queue and explicit backpressure.
//!
//! The accept loop hands each connection to [`WorkerPool::try_submit`].
//! When every worker is busy and the queue is at capacity the submit
//! *fails* — the caller answers 503 + `Retry-After` instead of queueing
//! unboundedly, which is the whole point: under overload the server sheds
//! load at the door with a cheap response rather than stacking up latency
//! until clients time out anyway.
//!
//! Shutdown is graceful by construction: [`WorkerPool::shutdown`] stops
//! accepting new jobs, wakes every worker, and joins them — each worker
//! finishes its in-flight job and then drains whatever is still queued
//! before exiting. A panicking job is caught and counted, never allowed
//! to take its worker thread down.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    wake: Condvar,
    queue_cap: usize,
}

/// The pool; dropping it without [`WorkerPool::shutdown`] also drains.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
    /// Observed by connection handlers to close keep-alive sessions
    /// promptly once shutdown begins.
    draining: Arc<AtomicBool>,
}

/// Submit rejection: the queue is full. Carries the job back so the
/// caller may retry or respond 503.
pub struct QueueFull(pub Job);

impl std::fmt::Debug for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("QueueFull(..)")
    }
}

impl WorkerPool {
    /// Spawn `workers` threads sharing a queue bounded at `queue_cap`
    /// jobs (both forced to at least 1).
    pub fn new(workers: usize, queue_cap: usize) -> WorkerPool {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            wake: Condvar::new(),
            queue_cap: queue_cap.max(1),
        });
        let draining = Arc::new(AtomicBool::new(false));
        let workers = (0..workers.max(1))
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{k}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            inner,
            workers,
            draining,
        }
    }

    /// Queue a job. Returns the queue depth *after* enqueueing, or the
    /// job back if the queue is full or the pool is shutting down.
    pub fn try_submit(&self, job: Job) -> Result<usize, QueueFull> {
        let mut state = self.inner.state.lock().unwrap();
        if state.shutting_down || state.queue.len() >= self.inner.queue_cap {
            return Err(QueueFull(job));
        }
        state.queue.push_back(job);
        let depth = state.queue.len();
        drop(state);
        self.inner.wake.notify_one();
        Ok(depth)
    }

    /// Jobs currently queued (not counting in-flight ones).
    pub fn queued(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Flag connection handlers should poll to stop serving keep-alive
    /// requests once shutdown begins.
    pub fn draining_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.draining)
    }

    /// Stop accepting work, finish everything in flight and queued, and
    /// join every worker.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let mut state = self.inner.state.lock().unwrap();
        state.shutting_down = true;
        drop(state);
        self.inner.wake.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = inner.wake.wait(state).unwrap();
            }
        };
        // A handler panic must not kill the worker; it is recorded and the
        // pool keeps serving (the connection drops, which the peer sees as
        // a reset — never a hung server).
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            obs::error!("serve: connection handler panicked (worker survives)");
            if obs::metrics_enabled() {
                obs::metrics().add("serve.handler_panics", 1);
            }
            // Crash forensics: the router's PanicTrap already stamped the
            // dying request's id into the ring; persist the whole ring
            // while the trail is hot.
            obs::flight::dump_postmortem("handler-panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn rejects_when_queue_full_then_recovers() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker until released.
        let g = Arc::clone(&gate);
        pool.try_submit(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        }))
        .unwrap();
        // Wait until the worker picked the blocker up, then fill the queue.
        while pool.queued() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(Box::new(|| {})).unwrap();
        // Queue (cap 1) now full ⇒ rejection.
        assert!(pool.try_submit(Box::new(|| {})).is_err());
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_micros(200));
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32, "queued jobs drain");
    }

    #[test]
    fn panicking_job_does_not_kill_worker() {
        let pool = WorkerPool::new(1, 8);
        pool.try_submit(Box::new(|| panic!("boom"))).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.try_submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
