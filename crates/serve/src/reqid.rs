//! Deterministic-format request ids.
//!
//! Every request the router handles gets an id: an inbound
//! `X-Request-Id` header is honored when it is sane (so a client or an
//! upstream proxy can thread its own correlation id through), otherwise
//! one is minted from a process-local counter in the fixed format
//! `req-%016x`. The id is echoed back in the response headers, attached
//! to log lines, spans, and flight-recorder events, and stored on a
//! single-flight so a coalesced follower can name its leader.
//!
//! Ids live only in *headers* and observability side channels — never in
//! a response body — which is what keeps them compatible with the
//! warm-equals-cold byte-identity guarantee on bodies.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::http::Request;

/// The correlation header, inbound and outbound.
pub const REQUEST_ID_HEADER: &str = "X-Request-Id";

/// Cap on an accepted inbound id — matches the flight recorder's
/// fixed-width rid field, so an honored id is never truncated in dumps.
pub const MAX_REQUEST_ID_LEN: usize = obs::flight::RID_BYTES;

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Mint a fresh id: `req-` + 16 hex digits of a process-local counter.
/// Hand-rendered into one exact-capacity allocation — this runs on every
/// live request, so it skips the `format!` machinery.
pub fn next_request_id() -> String {
    let n = NEXT.fetch_add(1, Ordering::Relaxed) + 1;
    let mut id = String::with_capacity(20);
    id.push_str("req-");
    for shift in (0..16).rev() {
        let digit = ((n >> (shift * 4)) & 0xf) as u32;
        id.push(char::from_digit(digit, 16).expect("nibble is a hex digit"));
    }
    id
}

/// An inbound id is honored iff it is 1..=32 bytes of printable ASCII
/// with nothing that could confuse a log line or a JSON dump.
pub fn valid_inbound(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_REQUEST_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_graphic() && b != b'"' && b != b'\\' && b != b',')
}

/// The id for this request: the client's, when acceptable, else a
/// freshly minted one.
pub fn request_id(req: &Request) -> String {
    match req.header(REQUEST_ID_HEADER) {
        Some(h) if valid_inbound(h) => h.to_string(),
        _ => next_request_id(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, ConnReader, HttpLimits};

    fn request(raw: &str) -> Request {
        let mut reader = ConnReader::new(raw.as_bytes());
        parse_request(&mut reader, &HttpLimits::default()).unwrap()
    }

    #[test]
    fn minted_ids_have_fixed_format_and_advance() {
        let a = next_request_id();
        let b = next_request_id();
        assert_eq!(a.len(), 4 + 16);
        assert!(a.starts_with("req-"));
        assert!(a[4..].bytes().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }

    #[test]
    fn inbound_id_honored_when_sane() {
        let req = request("GET / HTTP/1.1\r\nX-Request-Id: trace-42\r\n\r\n");
        assert_eq!(request_id(&req), "trace-42");
        // Case-insensitive header match.
        let req = request("GET / HTTP/1.1\r\nx-request-id: lower\r\n\r\n");
        assert_eq!(request_id(&req), "lower");
    }

    #[test]
    fn bad_inbound_ids_are_replaced() {
        for bad in [
            "GET / HTTP/1.1\r\nX-Request-Id: has space\r\n\r\n",
            "GET / HTTP/1.1\r\nX-Request-Id: quo\"te\r\n\r\n",
            "GET / HTTP/1.1\r\nX-Request-Id: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n",
            "GET / HTTP/1.1\r\nX-Request-Id:\r\n\r\n",
        ] {
            let rid = request_id(&request(bad));
            assert!(rid.starts_with("req-"), "{bad:?} should be replaced");
        }
    }
}
