//! Endpoint routing over a pluggable analysis [`Backend`].
//!
//! The serve crate owns the protocol — URL shape, query defaults, cache
//! policy, error mapping, metrics — while the backend owns the analysis:
//! `report-gen` plugs its fused-pipeline runner in, and the adversarial
//! tests plug in a stub so the HTTP surface can be hammered without
//! simulating anything.
//!
//! ```text
//! GET /healthz
//! GET /v1/apps
//! GET /v1/verdict/{app}/{config}?ranks=&seed=&model=&faults=
//! GET /v1/conflicts/{app}/{config}?...
//! GET /v1/patterns/{app}/{config}?...
//! GET /v1/metrics
//! ```
//!
//! The three analysis endpoints share one cache entry per canonical query
//! — the backend computes all three views in a single cold run (they are
//! one fused pipeline pass), so a verdict request warms the conflicts and
//! patterns responses for free.
//!
//! Two tiers sit under the LRU:
//!
//! * **Single-flight coalescing** — N concurrent misses on one canonical
//!   key run *one* backend analysis; followers park on the leader's
//!   flight and reuse its bytes. A leader that panics publishes an abort
//!   (via a drop guard, so unwinding cannot leave followers parked
//!   forever) and every follower retries with its own attempt.
//! * **The persistent [`store::Store`]** (optional) — healthy views are
//!   encoded and journaled on the cold path, and a miss consults the
//!   store before the backend, so a restarted process answers warm with
//!   bytes identical to what the dead process served. Stored bytes are
//!   keyed by the full canonical string and re-verified structurally on
//!   decode; anything unreadable is treated as a miss and recomputed,
//!   never served.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use obs::FlightKind;
use semantics_core::json::Json;
use semantics_core::{CacheKey, CacheKeyBuilder};

use crate::cache::ShardedLru;
use crate::client::HttpClient;
use crate::fleet::{self, ClusterRuntime, RouteDecision};
use crate::http::{Request, Response};
use crate::reqid;

/// Defaults for the analysis query parameters. The service default world
/// is deliberately smaller than the paper's 64 ranks: a verdict is
/// scale-invariant (§6.1), and an interactive service should answer cold
/// queries in hundreds of milliseconds, not tens of seconds.
pub const DEFAULT_RANKS: u32 = 8;
pub const DEFAULT_SEED: u64 = 2021;

/// Ceiling on the `ranks` query parameter. The event-loop rank executor
/// makes worlds this large tractable in one request (a few seconds, not
/// minutes); anything beyond is rejected up front as a client error
/// before the backend allocates a thing.
pub const MAX_QUERY_RANKS: u32 = 4096;

/// Endpoint labels for SLO accounting, in index order. Fixed at compile
/// time so an observation is an array index, not a hash lookup.
pub static SLO_ENDPOINTS: [&str; 9] = [
    "healthz",
    "apps",
    "metrics",
    "metricsz",
    "flightrec",
    "verdict",
    "conflicts",
    "patterns",
    "other",
];

/// SLO window shape: 16 epochs of 15 s — a four-minute sliding window.
const SLO_EPOCH_NS: u64 = 15_000_000_000;
const SLO_EPOCHS: usize = 16;

/// Availability target backing the error-budget exposition: 99.9%, i.e.
/// one 5xx allowed per thousand windowed requests.
const SLO_BUDGET_DENOMINATOR: u64 = 1000;

/// One canonicalized analysis query — the cache-key domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisQuery {
    /// Application path segment, as matched by the backend registry.
    pub app: String,
    /// Configuration path segment.
    pub config: String,
    pub ranks: u32,
    pub seed: u64,
    /// Semantics model under inspection: `session`, `commit`, or `both`.
    pub model: String,
    /// Canonical fault-plan description (`"none"` for the happy path).
    pub faults: String,
}

impl AnalysisQuery {
    /// Derive the stable cache key for this query.
    pub fn cache_key(&self) -> CacheKey {
        CacheKeyBuilder::new()
            .push("app", &self.app)
            .push("cfg", &self.config)
            .push_u64("ranks", u64::from(self.ranks))
            .push_u64("seed", self.seed)
            .push("model", &self.model)
            .push("faults", &self.faults)
            .finish()
    }
}

/// The response bodies one analysis run yields, all rendered eagerly so a
/// cache hit is a pure byte copy.
#[derive(Debug)]
pub struct AnalysisViews {
    pub verdict: String,
    pub conflicts: String,
    pub patterns: String,
}

/// Backend failure modes, mapped to HTTP statuses by the router.
#[derive(Debug)]
pub enum ApiError {
    /// Unknown app/config pair → 404.
    NotFound(String),
    /// Invalid query parameter (bad model name, unparseable fault plan) →
    /// 400.
    BadRequest(String),
    /// The isolated analysis degraded (simulation error or caught panic)
    /// → 422: the request was well-formed, the run itself failed. The
    /// outcome is deterministic, so it is cached too — but under the
    /// cache's smaller degraded quota, so failing-query bursts cannot
    /// evict healthy verdicts.
    Degraded { config: String, error: String },
}

/// What the router needs from an analysis provider.
pub trait Backend: Send + Sync + 'static {
    /// The `/v1/apps` body (rendered once; must be deterministic).
    fn apps_json(&self) -> String;

    /// Validate and canonicalize a raw query (resolve the config, parse
    /// and re-render the fault plan, check the model name).
    fn canonicalize(&self, query: AnalysisQuery) -> Result<AnalysisQuery, ApiError>;

    /// Run the analysis for a canonical query — the cold path.
    fn analyze(&self, query: &AnalysisQuery) -> Result<AnalysisViews, ApiError>;
}

/// Cached outcome: success and degraded runs are both deterministic
/// functions of the query, so both are cacheable.
type CachedResult = Arc<Result<AnalysisViews, ApiError>>;

/// Magic prefix of an encoded [`AnalysisViews`] bundle in the store.
const VIEWS_MAGIC: &[u8; 4] = b"AVW1";

/// Encode the three rendered views as one store value: magic, then each
/// view as `u32` LE length + bytes. Only healthy results are persisted.
pub fn encode_views(views: &AnalysisViews) -> Vec<u8> {
    let parts = [&views.verdict, &views.conflicts, &views.patterns];
    let total = 4 + parts.iter().map(|p| 4 + p.len()).sum::<usize>();
    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(VIEWS_MAGIC);
    for part in parts {
        buf.extend_from_slice(&(part.len() as u32).to_le_bytes());
        buf.extend_from_slice(part.as_bytes());
    }
    buf
}

/// Decode a stored bundle. `None` means the bytes are not a valid bundle
/// (version skew or corruption the store's checksums cannot see into) —
/// the caller treats that as a miss and recomputes; it never improvises.
pub fn decode_views(bytes: &[u8]) -> Option<AnalysisViews> {
    let rest = bytes.strip_prefix(VIEWS_MAGIC)?;
    let mut offset = 0usize;
    let mut parts = Vec::with_capacity(3);
    for _ in 0..3 {
        let len = u32::from_le_bytes(rest.get(offset..offset + 4)?.try_into().ok()?) as usize;
        offset += 4;
        let body = rest.get(offset..offset + len)?;
        offset += len;
        parts.push(std::str::from_utf8(body).ok()?.to_string());
    }
    if offset != rest.len() {
        return None;
    }
    let mut parts = parts.into_iter();
    Some(AnalysisViews {
        verdict: parts.next().unwrap(),
        conflicts: parts.next().unwrap(),
        patterns: parts.next().unwrap(),
    })
}

/// A cold run in progress: followers park on `done` until the leader
/// publishes an outcome.
enum FlightOutcome {
    Running,
    Done(CachedResult),
    /// The leader unwound without publishing; followers retry themselves.
    Aborted,
}

struct Flight {
    state: Mutex<FlightOutcome>,
    done: Condvar,
    /// The leading request's id — how a coalesced follower names its
    /// leader (in its `X-Coalesced-Leader` response header and its
    /// flight-recorder event).
    leader_rid: String,
}

/// Where a resolved analysis result came from — drives the follower's
/// leader-attribution header.
enum LoadOrigin {
    Cache,
    Store,
    Computed,
    Coalesced { leader: String },
}

/// Unwind-safety for the single-flight protocol: if the leader's
/// `analyze` panics, this guard publishes `Aborted` and unlinks the
/// flight, so followers wake into their own attempts instead of parking
/// forever on a flight nobody owns.
struct FlightGuard<'a> {
    flights: &'a Mutex<HashMap<String, Arc<Flight>>>,
    key: &'a str,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if obs::metrics_enabled() {
            obs::metrics().add("serve.singleflight_aborts", 1);
        }
        obs::flight::record(
            FlightKind::SfAbort,
            0,
            0,
            0,
            &self.flight.leader_rid,
            self.key,
        );
        *self.flight.state.lock().unwrap() = FlightOutcome::Aborted;
        self.flight.done.notify_all();
        self.flights.lock().unwrap().remove(self.key);
    }
}

/// Routes requests, consulting the verdict cache before the backend.
pub struct Router {
    backend: Arc<dyn Backend>,
    cache: ShardedLru<CachedResult>,
    store: Option<Arc<store::Store>>,
    cluster: Option<Arc<ClusterRuntime>>,
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    apps_body: String,
    started: Instant,
    slo: obs::SloWindow,
}

impl Router {
    pub fn new(backend: Arc<dyn Backend>, cache_entries: usize) -> Router {
        Router::with_store(backend, cache_entries, None)
    }

    /// A router backed by the persistent store: cold results are
    /// journaled, and misses consult the store before the backend.
    pub fn with_store(
        backend: Arc<dyn Backend>,
        cache_entries: usize,
        store: Option<Arc<store::Store>>,
    ) -> Router {
        Router::with_cluster(backend, cache_entries, store, None)
    }

    /// The full constructor: store tier plus (optionally) the cluster
    /// routing runtime. When `cluster` is set, analysis keys are looked
    /// up on the consistent-hash ring before local tiers, and the
    /// `/v1/cluster/*` endpoints come alive.
    pub fn with_cluster(
        backend: Arc<dyn Backend>,
        cache_entries: usize,
        store: Option<Arc<store::Store>>,
        cluster: Option<Arc<ClusterRuntime>>,
    ) -> Router {
        let apps_body = backend.apps_json();
        if let Some(store) = &store {
            // The recovery verdict belongs in the flight ring: a crash
            // postmortem should show what the store salvaged at open.
            let rec = store.recovery();
            obs::flight::record(
                FlightKind::StoreRecovery,
                store.generation(),
                rec.recovered_records(),
                rec.quarantined_bytes,
                "",
                "store-open",
            );
        }
        Router {
            backend,
            cache: ShardedLru::new(cache_entries, 8),
            store,
            cluster,
            flights: Mutex::new(HashMap::new()),
            apps_body,
            started: Instant::now(),
            slo: obs::SloWindow::new(&SLO_ENDPOINTS, SLO_EPOCH_NS, SLO_EPOCHS),
        }
    }

    /// Index of a request path in [`SLO_ENDPOINTS`]. Works on the raw
    /// path (no segment `Vec`): this runs on every live request.
    fn endpoint_index(path: &str) -> usize {
        let label = match path.trim_end_matches('/') {
            "/healthz" => "healthz",
            "/metricsz" => "metricsz",
            "/v1/apps" => "apps",
            "/v1/metrics" => "metrics",
            "/v1/debug/flightrec" => "flightrec",
            p if p.starts_with("/v1/verdict") => "verdict",
            p if p.starts_with("/v1/conflicts") => "conflicts",
            p if p.starts_with("/v1/patterns") => "patterns",
            _ => "other",
        };
        SLO_ENDPOINTS
            .iter()
            .position(|l| *l == label)
            .expect("label is drawn from SLO_ENDPOINTS")
    }

    /// Entries currently cached (for /healthz and tests).
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    /// Handle one parsed request, recording latency and outcome metrics.
    ///
    /// When the live-observability layer is on (the default), the
    /// request also gets an id (inbound `X-Request-Id` honored, echoed
    /// back in the response headers), a pair of flight-recorder events
    /// bracketing it, and an SLO window observation. With the layer off
    /// this is byte-for-byte the pre-observability request path.
    pub fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        let live = obs::flight_enabled();
        let rid = if live {
            reqid::request_id(req)
        } else {
            String::new()
        };
        // `t0` is already in hand, so the live layer stamps its ring
        // events and SLO observation with a pure subtraction — zero
        // additional clock reads per request.
        let start_ns = if live { obs::wall_ns_at(t0) } else { 0 };
        if live {
            obs::flight().record_at(start_ns, FlightKind::ReqStart, 0, 0, 0, &rid, &req.path);
        }
        let mut span = obs::span("serve", "request").with_arg("path", req.path.clone());
        if live && obs::tracing_enabled() {
            span = span.with_arg("rid", rid.clone());
        }
        let mut resp = {
            // If dispatch unwinds, the trap drops while panicking and
            // stamps the rid into the ring — that is how a postmortem
            // names the request that killed the handler.
            let _trap = PanicTrap {
                rid: &rid,
                path: &req.path,
            };
            self.dispatch(req, &rid, start_ns)
        };
        span.set_arg("status", u64::from(resp.status));
        let lat_ns = t0.elapsed().as_nanos() as u64;
        if live {
            let label = Self::endpoint_index(&req.path);
            self.slo
                .observe(label, resp.status, lat_ns, start_ns + lat_ns);
            obs::flight().record_at(
                start_ns + lat_ns,
                FlightKind::ReqEnd,
                u64::from(resp.status),
                lat_ns,
                0,
                &rid,
                &req.path,
            );
            resp.extra_headers.push((reqid::REQUEST_ID_HEADER, rid));
        }
        if obs::metrics_enabled() {
            let m = obs::metrics();
            m.add("serve.requests", 1);
            m.add(
                match resp.class() {
                    2 => "serve.responses_2xx",
                    4 => "serve.responses_4xx",
                    _ => "serve.responses_5xx",
                },
                1,
            );
            m.observe("serve.request_ns", lat_ns);
        }
        resp
    }

    fn dispatch(&self, req: &Request, rid: &str, now_ns: u64) -> Response {
        if req.method != "GET" {
            return Response::error(405, "only GET is supported");
        }
        let segments = req.segments();
        match segments.as_slice() {
            ["healthz"] => self.healthz(),
            ["metricsz"] => self.metricsz(),
            ["v1", "apps"] => Response::json(200, self.apps_body.clone()),
            ["v1", "metrics"] => self.metrics(),
            ["v1", "debug", "flightrec"] => Response::json(200, obs::flight().dump_json()),
            ["v1", "cluster", "status"] => self.cluster_status(req),
            ["v1", "cluster", "segment"] => self.cluster_segment(req),
            ["v1", "cluster", "pull"] => self.cluster_pull(req),
            ["v1", "cluster", "commit"] => self.cluster_commit(req),
            ["v1", "cluster", "join"] => self.cluster_join(),
            ["v1", "cluster", "decommission"] => self.cluster_decommission(),
            ["v1", endpoint @ ("verdict" | "conflicts" | "patterns"), app, config] => {
                self.analysis(endpoint, app, config, req, rid, now_ns)
            }
            ["v1", "verdict" | "conflicts" | "patterns"]
            | ["v1", "verdict" | "conflicts" | "patterns", _] => {
                Response::error(404, "expected /v1/{endpoint}/{app}/{config}")
            }
            _ => Response::error(404, "no such endpoint"),
        }
    }

    fn healthz(&self) -> Response {
        let ring = obs::flight();
        let mut doc = Json::obj()
            .field("status", "ok")
            .field("build", env!("CARGO_PKG_VERSION"))
            .field("uptime_ms", self.started.elapsed().as_millis() as u64)
            .field("cache_entries", self.cache.len())
            .field("flightrec_depth", ring.depth())
            .field("flightrec_total", ring.total());
        if let Some(store) = &self.store {
            let rec = store.recovery();
            doc = doc
                .field("store_entries", store.len())
                .field("store_generation", store.generation())
                .field("store_recovered_records", rec.recovered_records())
                .field("store_quarantined_bytes", rec.quarantined_bytes);
        }
        // Cluster fields appear only when the node runs clustered, so
        // existing /healthz parsers see exactly the document they always
        // did on a standalone node.
        if let Some(cl) = &self.cluster {
            let st = cl.state();
            let (epoch, members) = st.view();
            doc = doc
                .field("cluster_id", st.node_id())
                .field("cluster_epoch", epoch)
                .field("cluster_members", members.len())
                .field("cluster_slice", st.slice_fraction(st.node_id()));
        }
        Response::json(200, doc.pretty() + "\n")
    }

    /// Prometheus-style text exposition of the SLO window, the flight
    /// recorder's vitals, and the deterministic obs counters. Wall-clock
    /// data — explicitly outside the byte-identity contract of the
    /// analysis endpoints. The format is validated by
    /// [`obs::parse_exposition`] in tests, CI, and `tracetool`.
    fn metricsz(&self) -> Response {
        let rows = self.slo.snapshot(obs::wall_ns());
        let mut out = String::with_capacity(4096);
        out.push_str("# HELP serve_requests_total Cumulative requests by endpoint and class.\n");
        out.push_str("# TYPE serve_requests_total counter\n");
        for row in &rows {
            for (c, class) in obs::slo::CLASSES.iter().enumerate() {
                out.push_str(&format!(
                    "serve_requests_total{{endpoint=\"{}\",class=\"{class}\"}} {}\n",
                    row.label, row.total[c]
                ));
            }
        }
        out.push_str("# HELP serve_window_requests Requests in the sliding SLO window.\n");
        out.push_str("# TYPE serve_window_requests gauge\n");
        for row in &rows {
            for (c, class) in obs::slo::CLASSES.iter().enumerate() {
                out.push_str(&format!(
                    "serve_window_requests{{endpoint=\"{}\",class=\"{class}\"}} {}\n",
                    row.label, row.window[c]
                ));
            }
        }
        out.push_str(
            "# HELP serve_window_latency_ns Windowed latency quantiles \
             (inclusive log2-bucket upper bounds).\n",
        );
        out.push_str("# TYPE serve_window_latency_ns gauge\n");
        for row in &rows {
            if row.lat_count == 0 {
                continue;
            }
            for (q, v) in [("0.5", row.p50_ns), ("0.99", row.p99_ns)] {
                out.push_str(&format!(
                    "serve_window_latency_ns{{endpoint=\"{}\",quantile=\"{q}\"}} {v}\n",
                    row.label
                ));
            }
            out.push_str(&format!(
                "serve_window_latency_sum_ns{{endpoint=\"{}\"}} {}\n",
                row.label, row.lat_sum
            ));
            out.push_str(&format!(
                "serve_window_latency_count{{endpoint=\"{}\"}} {}\n",
                row.label, row.lat_count
            ));
        }
        out.push_str(
            "# HELP serve_error_budget_remaining Windowed 5xx budget left at a \
             99.9% availability target (burned = windowed 5xx count).\n",
        );
        out.push_str("# TYPE serve_error_budget_remaining gauge\n");
        for row in &rows {
            let total: u64 = row.window.iter().sum();
            let allowed = total / SLO_BUDGET_DENOMINATOR;
            let burned = row.window[2];
            out.push_str(&format!(
                "serve_error_budget_remaining{{endpoint=\"{}\"}} {}\n",
                row.label,
                allowed.saturating_sub(burned)
            ));
            out.push_str(&format!(
                "serve_error_budget_burned{{endpoint=\"{}\"}} {burned}\n",
                row.label
            ));
        }
        let ring = obs::flight();
        out.push_str("# TYPE serve_flightrec_events_total counter\n");
        out.push_str(&format!("serve_flightrec_events_total {}\n", ring.total()));
        out.push_str("# TYPE serve_flightrec_depth gauge\n");
        out.push_str(&format!("serve_flightrec_depth {}\n", ring.depth()));
        out.push_str("# TYPE serve_uptime_ms gauge\n");
        out.push_str(&format!(
            "serve_uptime_ms {}\n",
            self.started.elapsed().as_millis()
        ));
        out.push_str("# TYPE serve_cache_entries gauge\n");
        out.push_str(&format!("serve_cache_entries {}\n", self.cache.len()));
        if let Some(cl) = &self.cluster {
            let st = cl.state();
            let (epoch, members) = st.view();
            out.push_str("# TYPE serve_cluster_epoch gauge\n");
            out.push_str(&format!("serve_cluster_epoch {epoch}\n"));
            out.push_str("# TYPE serve_cluster_members gauge\n");
            out.push_str(&format!("serve_cluster_members {}\n", members.len()));
            out.push_str("# TYPE serve_cluster_slice gauge\n");
            out.push_str(&format!(
                "serve_cluster_slice {:.6}\n",
                st.slice_fraction(st.node_id())
            ));
            out.push_str("# TYPE serve_cluster_peer_alive gauge\n");
            for peer in st.peers() {
                out.push_str(&format!(
                    "serve_cluster_peer_alive{{peer=\"{}\"}} {}\n",
                    peer.id,
                    u8::from(st.is_alive(peer.id))
                ));
            }
        }
        // The deterministic registry counters, dots and all, as one
        // labeled family — so the exposition carries the same numbers
        // the byte-identity tests compare.
        out.push_str("# TYPE obs_counter gauge\n");
        for (name, value) in obs::metrics().snapshot_counters() {
            out.push_str(&format!("obs_counter{{name=\"{name}\"}} {value}\n"));
        }
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: out.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// The obs registry dump plus service-level latency quantiles derived
    /// from the request histogram. Wall-clock data — explicitly outside
    /// the byte-identity contract of the analysis endpoints.
    fn metrics(&self) -> Response {
        let registry = obs::metrics();
        let lat = registry.histogram("serve.request_ns");
        let latency = Json::obj()
            .field("count", lat.count())
            .field("p50_ns_le", lat.quantile(0.50))
            .field("p99_ns_le", lat.quantile(0.99));
        let queue = registry.histogram("serve.queue_depth");
        let queue_doc = Json::obj()
            .field("samples", queue.count())
            .field("p50_depth_le", queue.quantile(0.50))
            .field("p99_depth_le", queue.quantile(0.99));
        let summary = Json::obj()
            .field("cache_hits", registry.counter("serve.cache_hits").get())
            .field("cache_misses", registry.counter("serve.cache_misses").get())
            .field("latency", latency)
            .field("queue", queue_doc)
            .pretty();
        // Splice the already-rendered registry dump in as the final field;
        // both fragments are complete JSON objects.
        let registry_dump = registry.dump_json();
        let body = format!(
            "{{\n\"serve\": {summary},\n\"registry\": {}}}\n",
            registry_dump.trim_end()
        );
        Response::json(200, body)
    }

    fn analysis(
        &self,
        endpoint: &str,
        app: &str,
        config: &str,
        req: &Request,
        rid: &str,
        now_ns: u64,
    ) -> Response {
        // Parse query parameters; malformed values are client errors.
        let ranks = match parse_param(req, "ranks", DEFAULT_RANKS) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let seed = match parse_param(req, "seed", DEFAULT_SEED) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        if ranks == 0 || ranks > MAX_QUERY_RANKS {
            return Response::error(400, "ranks must be in [1, 4096]");
        }
        let raw = AnalysisQuery {
            app: app.to_string(),
            config: config.to_string(),
            ranks,
            seed,
            model: req.query_param("model").unwrap_or("both").to_string(),
            faults: req.query_param("faults").unwrap_or("none").to_string(),
        };
        let query = match self.backend.canonicalize(raw) {
            Ok(q) => q,
            Err(e) => return error_response(&e),
        };
        let key = query.cache_key();
        // Clustered: the ring decides before any local tier is touched.
        // A key another node owns is proxied or redirected there; local
        // serving of foreign keys happens only as a deliberate
        // degradation (dead peer, epoch skew) and never persists into
        // this node's store slice.
        let mut persist = true;
        if let Some(cl) = &self.cluster {
            match cl.route(req, key.fingerprint().0, rid) {
                RouteDecision::Local { persist: p } => persist = p,
                RouteDecision::Respond(resp) => return resp,
            }
        }
        let cached = self.cache.get(&key);
        let hit = cached.is_some();
        if obs::metrics_enabled() {
            obs::metrics().add(
                if hit {
                    "serve.cache_hits"
                } else {
                    "serve.cache_misses"
                },
                1,
            );
        }
        // Misses go to the ring; hits do not. A warm server takes
        // thousands of hits a second, and an event per hit would evict
        // every forensically interesting entry (misses, store traffic,
        // single-flight transitions, degradations) from the fixed-size
        // ring within milliseconds. Hits stay visible through the
        // `serve.cache_hits` counter and the request's ReqStart/ReqEnd
        // bracket.
        if !hit && obs::flight_enabled() {
            obs::flight().record_at(now_ns, FlightKind::CacheMiss, 0, 0, 0, rid, key.canonical());
        }
        let (result, origin) = match cached {
            Some(r) => (r, LoadOrigin::Cache),
            None => self.load_or_compute(&key, &query, rid, persist),
        };
        match result.as_ref() {
            Ok(views) => {
                let body = match endpoint {
                    "verdict" => &views.verdict,
                    "conflicts" => &views.conflicts,
                    _ => &views.patterns,
                };
                let mut resp = Response::json(200, body.clone());
                if let LoadOrigin::Coalesced { leader } = origin {
                    // The follower names its leader — the coalescing is
                    // visible in the response, not just the ring.
                    resp.extra_headers.push(("X-Coalesced-Leader", leader));
                }
                resp
            }
            Err(e) => {
                if let ApiError::Degraded { config, error } = e {
                    obs::flight::record(FlightKind::Degraded, 422, 0, 0, rid, config);
                    obs::debug!("serve: analysis degraded for {config:?} (rid {rid}): {error}");
                }
                error_response(e)
            }
        }
    }

    /// Resolve a cache miss: persistent store, then single-flight
    /// coalesced backend analysis. `persist` gates journaling the result
    /// (false for cluster-foreign keys computed here as a degradation —
    /// they belong in the owner's store slice, not ours).
    fn load_or_compute(
        &self,
        key: &CacheKey,
        query: &AnalysisQuery,
        rid: &str,
        persist: bool,
    ) -> (CachedResult, LoadOrigin) {
        let canonical = key.canonical();
        loop {
            // Store tier first — a restarted process answers from disk.
            if let Some(store) = &self.store {
                if let Some(bytes) = store.get(canonical) {
                    if let Some(views) = decode_views(&bytes) {
                        let result: CachedResult = Arc::new(Ok(views));
                        self.cache.insert(key, Arc::clone(&result));
                        if obs::metrics_enabled() {
                            obs::metrics().add("store.hits", 1);
                        }
                        obs::flight::record(
                            FlightKind::StoreHit,
                            0,
                            bytes.len() as u64,
                            0,
                            rid,
                            canonical,
                        );
                        return (result, LoadOrigin::Store);
                    }
                    // Undecodable bundle (version skew): recompute below.
                    obs::warn!(
                        "store: undecodable bundle for {canonical:?} (rid {rid}); recomputing"
                    );
                }
            }

            // Single-flight: first miss leads, the rest park.
            let (flight, leader) = {
                let mut flights = self.flights.lock().unwrap();
                match flights.get(canonical) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(Flight {
                            state: Mutex::new(FlightOutcome::Running),
                            done: Condvar::new(),
                            leader_rid: rid.to_string(),
                        });
                        flights.insert(canonical.to_string(), Arc::clone(&f));
                        (f, true)
                    }
                }
            };

            if !leader {
                if obs::metrics_enabled() {
                    obs::metrics().add("serve.coalesced_waiters", 1);
                }
                obs::flight::record(FlightKind::SfFollow, 0, 0, 0, rid, &flight.leader_rid);
                let mut state = flight.state.lock().unwrap();
                loop {
                    match &*state {
                        FlightOutcome::Running => state = flight.done.wait(state).unwrap(),
                        FlightOutcome::Done(result) => {
                            return (
                                Arc::clone(result),
                                LoadOrigin::Coalesced {
                                    leader: flight.leader_rid.clone(),
                                },
                            )
                        }
                        // Leader died: take another lap — maybe lead.
                        FlightOutcome::Aborted => break,
                    }
                }
                continue;
            }

            obs::flight::record(FlightKind::SfLead, 0, 0, 0, rid, canonical);
            let mut guard = FlightGuard {
                flights: &self.flights,
                key: canonical,
                flight: &flight,
                armed: true,
            };
            let mut span = obs::span("serve", "analyze-cold")
                .with_arg("app", query.app.clone())
                .with_arg("cfg", query.config.clone());
            let computed: CachedResult = Arc::new(self.backend.analyze(query));
            span.set_arg("ok", u64::from(computed.is_ok()));
            // Degraded outcomes are admitted under the cache's smaller
            // degraded quota so a burst of failing queries cannot evict
            // healthy verdicts — and they are *not* persisted: a restart
            // deserves a fresh attempt.
            match computed.as_ref() {
                Ok(views) => {
                    self.cache.insert(key, Arc::clone(&computed));
                    if let (Some(store), true) = (&self.store, persist) {
                        let encoded = encode_views(views);
                        match store.put(canonical, &encoded) {
                            Ok(()) => obs::flight::record(
                                FlightKind::StorePut,
                                0,
                                encoded.len() as u64,
                                0,
                                rid,
                                canonical,
                            ),
                            Err(e) => {
                                // Durability degraded, service alive: the
                                // bytes still come from memory.
                                obs::warn!(
                                    "store: persist failed for {canonical:?} (rid {rid}): {e}"
                                );
                            }
                        }
                    }
                }
                Err(_) => self.cache.insert_degraded(key, Arc::clone(&computed)),
            }
            // Publish before unlinking so late arrivals either find the
            // flight Done or miss it entirely and hit the cache.
            *flight.state.lock().unwrap() = FlightOutcome::Done(Arc::clone(&computed));
            flight.done.notify_all();
            self.flights.lock().unwrap().remove(canonical);
            guard.armed = false;
            return (computed, LoadOrigin::Computed);
        }
    }

    /// Drain-time flush: compact the store's journal into a snapshot so
    /// the next open recovers from one segment. Called by the server
    /// after the worker pool finishes.
    pub fn flush_store(&self) {
        if let Some(store) = &self.store {
            match store.compact_if_dirty() {
                Ok(()) => obs::info!("store: drain flush complete (gen {})", store.generation()),
                Err(e) => obs::warn!("store: drain flush failed: {e}"),
            }
        }
    }

    /// The persistent store handle, when one is attached.
    pub fn store(&self) -> Option<&Arc<store::Store>> {
        self.store.as_ref()
    }

    /// The cluster runtime, when the node runs clustered.
    pub fn cluster(&self) -> Option<&Arc<ClusterRuntime>> {
        self.cluster.as_ref()
    }

    /// `/v1/cluster/*` guard: these endpoints exist only on a clustered
    /// node.
    fn clustered(&self) -> Result<&Arc<ClusterRuntime>, Response> {
        self.cluster
            .as_ref()
            .ok_or_else(|| Response::error(400, "this node is not running in cluster mode"))
    }

    /// Ring view: JSON by default, a rendered table with `?format=table`
    /// (what `report cluster status` prints).
    fn cluster_status(&self, req: &Request) -> Response {
        let cl = match self.clustered() {
            Ok(cl) => cl,
            Err(resp) => return resp,
        };
        let st = cl.state();
        let (epoch, members) = st.view();
        let mode = match cl.forwarding() {
            fleet::Forwarding::Proxy => "proxy",
            fleet::Forwarding::Redirect => "redirect",
        };
        if req.query_param("format") == Some("table") {
            let mut out = format!(
                "cluster: node {} @ {}  epoch {epoch}  forwarding {mode}\n\
                 {:>4}  {:<21}  {:>6}  {:>5}  {:>7}\n",
                st.node_id(),
                st.self_addr(),
                "id",
                "addr",
                "member",
                "alive",
                "slice"
            );
            for peer in st.peers() {
                out.push_str(&format!(
                    "{:>4}  {:<21}  {:>6}  {:>5}  {:>6.1}%\n",
                    peer.id,
                    peer.addr,
                    if st.is_member(peer.id) { "yes" } else { "no" },
                    if st.is_alive(peer.id) { "yes" } else { "no" },
                    st.slice_fraction(peer.id) * 100.0
                ));
            }
            return Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: out.into_bytes(),
                extra_headers: Vec::new(),
                close: false,
            };
        }
        let peers: Vec<Json> = st
            .peers()
            .iter()
            .map(|p| {
                Json::obj()
                    .field("id", p.id)
                    .field("addr", p.addr.as_str())
                    .field("member", st.is_member(p.id))
                    .field("alive", st.is_alive(p.id))
                    .field("slice", st.slice_fraction(p.id))
            })
            .collect();
        let doc = Json::obj()
            .field("node", st.node_id())
            .field("addr", st.self_addr())
            .field("epoch", epoch)
            .field("forwarding", mode)
            .field(
                "members",
                members
                    .iter()
                    .map(|&m| Json::U64(u64::from(m)))
                    .collect::<Vec<_>>(),
            )
            .field("peers", peers);
        Response::json(200, doc.pretty() + "\n")
    }

    /// Parse the common rebalance query triple: target node id, the
    /// epoch under negotiation, and the proposed member csv.
    fn rebalance_params(req: &Request) -> Result<(u64, Vec<u32>), Response> {
        let epoch: u64 = req
            .query_param("epoch")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| Response::error(400, "missing or invalid epoch parameter"))?;
        let members = req
            .query_param("members")
            .ok_or_else(|| Response::error(400, "missing members parameter"))
            .and_then(|csv| cluster::parse_members(csv).map_err(|e| Response::error(400, &e)))?;
        Ok((epoch, members))
    }

    /// Export this node's store records that belong to `node` under the
    /// proposed ring, as one checksummed snapshot segment stamped with
    /// the epoch under negotiation.
    fn cluster_segment(&self, req: &Request) -> Response {
        let cl = match self.clustered() {
            Ok(cl) => cl,
            Err(resp) => return resp,
        };
        let Some(store) = &self.store else {
            return Response::error(400, "no store attached; nothing to hand off");
        };
        let node: u32 = match req.query_param("node").and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => return Response::error(400, "missing or invalid node parameter"),
        };
        let (epoch, members) = match Self::rebalance_params(req) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let current = cl.state().epoch();
        if epoch <= current {
            return Response::error(
                409,
                &format!("stale rebalance epoch {epoch} (current {current})"),
            );
        }
        let ring = cluster::Ring::build(&members);
        let segment = store.export_segment(epoch, |canonical| {
            let fp = CacheKey::from_canonical(canonical.to_string()).fingerprint();
            ring.owner(fp.0) == Some(node)
        });
        let records = u64::from_le_bytes(segment[16..24].try_into().unwrap());
        if obs::metrics_enabled() {
            let m = obs::metrics();
            m.add("cluster.segments_out", 1);
            m.add("cluster.segment_records_out", records);
            m.add(&format!("cluster.rebalance_out_to.{node}"), records);
        }
        obs::flight::record(
            FlightKind::ClusterRebalance,
            epoch,
            records,
            segment.len() as u64,
            "",
            "segment-export",
        );
        Response {
            status: 200,
            content_type: "application/octet-stream",
            body: segment,
            extra_headers: vec![(fleet::EPOCH_HEADER, epoch.to_string())],
            close: false,
        }
    }

    /// Pull a segment from the losing node named in `from` and replay it
    /// through normal store recovery. All-or-nothing: verification
    /// failure imports zero records and is reported as an error.
    fn cluster_pull(&self, req: &Request) -> Response {
        let cl = match self.clustered() {
            Ok(cl) => cl,
            Err(resp) => return resp,
        };
        let Some(store) = &self.store else {
            return Response::error(400, "no store attached; cannot import a segment");
        };
        let Some(from) = req.query_param("from") else {
            return Response::error(400, "missing from parameter");
        };
        let (epoch, members) = match Self::rebalance_params(req) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let current = cl.state().epoch();
        if epoch <= current {
            return Response::error(
                409,
                &format!("stale rebalance epoch {epoch} (current {current})"),
            );
        }
        let me = cl.state().node_id();
        let path = format!(
            "/v1/cluster/segment?node={me}&epoch={epoch}&members={}",
            cluster::format_members(&members)
        );
        let resp = match HttpClient::connect_str(from).and_then(|mut c| c.get(&path)) {
            Ok(r) => r,
            Err(e) => {
                return Response::error(502, &format!("segment fetch from {from} failed: {e}"))
            }
        };
        if resp.status != 200 {
            return Response::error(
                502,
                &format!("segment fetch from {from} answered {}", resp.status),
            );
        }
        let bytes = resp.body.len() as u64;
        let imported = match store.import_segment(epoch, &resp.body) {
            Ok(n) => n,
            Err(e) => return Response::error(500, &format!("segment verification failed: {e}")),
        };
        if obs::metrics_enabled() {
            let m = obs::metrics();
            m.add("cluster.segments_in", 1);
            m.add("cluster.segment_records_in", imported);
        }
        obs::flight::record(
            FlightKind::ClusterRebalance,
            epoch,
            imported,
            bytes,
            "",
            "segment-import",
        );
        let doc = Json::obj()
            .field("imported", imported)
            .field("bytes", bytes)
            .field("epoch", epoch);
        Response::json(200, doc.pretty() + "\n")
    }

    /// Switch to the proposed member set at the negotiated epoch. Only
    /// issued by the orchestrating node *after* byte-verified handoff.
    fn cluster_commit(&self, req: &Request) -> Response {
        let cl = match self.clustered() {
            Ok(cl) => cl,
            Err(resp) => return resp,
        };
        let (epoch, members) = match Self::rebalance_params(req) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        if let Err(e) = cl.state().commit(epoch, &members) {
            return Response::error(409, &e);
        }
        if obs::metrics_enabled() {
            obs::metrics().add("cluster.commits", 1);
        }
        obs::flight::record(FlightKind::ClusterRebalance, epoch, 0, 0, "", "commit");
        let doc = Json::obj().field("epoch", epoch).field(
            "members",
            members
                .iter()
                .map(|&m| Json::U64(u64::from(m)))
                .collect::<Vec<_>>(),
        );
        Response::json(200, doc.pretty() + "\n")
    }

    /// Join orchestration, run on the *gaining* node: pull the slice it
    /// will own from every current member, then bump the epoch
    /// everywhere. The epoch moves only after every segment verified.
    fn cluster_join(&self) -> Response {
        let cl = match self.clustered() {
            Ok(cl) => cl,
            Err(resp) => return resp,
        };
        let Some(store) = &self.store else {
            return Response::error(400, "no store attached; cannot rebalance");
        };
        // A freshly booted node defaults to "every seed peer is a member
        // at epoch 1" — adopt the running fleet's freshest view before
        // deciding whether we are actually in it.
        self.sync_view_from_peers(cl);
        let st = cl.state();
        let me = st.node_id();
        let (epoch, members) = st.view();
        if members.contains(&me) {
            return Response::error(409, "this node is already a ring member");
        }
        let mut new_members = members.clone();
        new_members.push(me);
        new_members.sort_unstable();
        let new_epoch = epoch + 1;
        let csv = cluster::format_members(&new_members);

        // Handoff: every current member exports the slice the new ring
        // assigns to us; each segment is checksum-verified on import.
        let mut imported = 0u64;
        let mut moved_bytes = 0u64;
        for &m in &members {
            let addr = st.peer_addr(m).unwrap_or_default().to_string();
            let path = format!("/v1/cluster/segment?node={me}&epoch={new_epoch}&members={csv}");
            let resp = match HttpClient::connect_str(&addr).and_then(|mut c| c.get(&path)) {
                Ok(r) => r,
                Err(e) => {
                    return Response::error(
                        502,
                        &format!("join aborted: segment fetch from node {m} failed: {e}"),
                    )
                }
            };
            if resp.status != 200 {
                return Response::error(
                    502,
                    &format!("join aborted: node {m} answered {}", resp.status),
                );
            }
            moved_bytes += resp.body.len() as u64;
            match store.import_segment(new_epoch, &resp.body) {
                Ok(n) => imported += n,
                Err(e) => {
                    return Response::error(
                        500,
                        &format!("join aborted: segment from node {m} failed verification: {e}"),
                    )
                }
            }
        }

        // Byte-verified handoff complete: commit locally, then on peers.
        if let Err(e) = st.commit(new_epoch, &new_members) {
            return Response::error(409, &e);
        }
        let peer_commits = self.commit_on_peers(cl, new_epoch, &csv, &members);
        obs::flight::record(
            FlightKind::ClusterRebalance,
            new_epoch,
            imported,
            moved_bytes,
            "",
            "join",
        );
        let doc = Json::obj()
            .field("epoch", new_epoch)
            .field("imported", imported)
            .field("bytes", moved_bytes)
            .field("peer_commits", peer_commits)
            .field(
                "members",
                new_members
                    .iter()
                    .map(|&m| Json::U64(u64::from(m)))
                    .collect::<Vec<_>>(),
            );
        Response::json(200, doc.pretty() + "\n")
    }

    /// Decommission orchestration, run on the *losing* node: every
    /// gaining member pulls its share of our records, each pull's count
    /// is verified against what the new ring says it should have moved,
    /// and only then does the epoch bump fleet-wide.
    fn cluster_decommission(&self) -> Response {
        let cl = match self.clustered() {
            Ok(cl) => cl,
            Err(resp) => return resp,
        };
        let Some(store) = &self.store else {
            return Response::error(400, "no store attached; cannot rebalance");
        };
        self.sync_view_from_peers(cl);
        let st = cl.state();
        let me = st.node_id();
        let (epoch, members) = st.view();
        if !members.contains(&me) {
            return Response::error(409, "this node is not a ring member");
        }
        if members.len() == 1 {
            return Response::error(400, "cannot decommission the last ring member");
        }
        let new_members: Vec<u32> = members.iter().copied().filter(|&m| m != me).collect();
        let new_epoch = epoch + 1;
        let csv = cluster::format_members(&new_members);
        let ring = cluster::Ring::build(&new_members);

        // What the new ring says each gaining member should receive.
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for key in store.keys() {
            let fp = CacheKey::from_canonical(key).fingerprint();
            if let Some(owner) = ring.owner(fp.0) {
                *expected.entry(owner).or_insert(0) += 1;
            }
        }

        let self_addr = st.self_addr().to_string();
        let mut moved = 0u64;
        for &m in &new_members {
            let want = expected.get(&m).copied().unwrap_or(0);
            if want == 0 {
                continue;
            }
            let addr = st.peer_addr(m).unwrap_or_default().to_string();
            let path = format!("/v1/cluster/pull?from={self_addr}&epoch={new_epoch}&members={csv}");
            let resp = match HttpClient::connect_str(&addr).and_then(|mut c| c.get(&path)) {
                Ok(r) => r,
                Err(e) => {
                    return Response::error(
                        502,
                        &format!("decommission aborted: pull by node {m} failed: {e}"),
                    )
                }
            };
            if resp.status != 200 {
                return Response::error(
                    502,
                    &format!(
                        "decommission aborted: node {m} answered {}: {}",
                        resp.status,
                        resp.body_text().trim()
                    ),
                );
            }
            let got = fleet::json_u64_field(&resp.body_text(), "imported").unwrap_or(u64::MAX);
            if got != want {
                return Response::error(
                    500,
                    &format!(
                        "decommission aborted: node {m} imported {got} records, expected {want}"
                    ),
                );
            }
            moved += got;
        }

        // Every gaining member verified its share: bump the epoch — on
        // this node first (it starts forwarding everything immediately),
        // then fleet-wide.
        if let Err(e) = st.commit(new_epoch, &new_members) {
            return Response::error(409, &e);
        }
        let peer_commits = self.commit_on_peers(cl, new_epoch, &csv, &new_members);
        obs::flight::record(
            FlightKind::ClusterRebalance,
            new_epoch,
            moved,
            0,
            "",
            "decommission",
        );
        let doc = Json::obj()
            .field("epoch", new_epoch)
            .field("moved", moved)
            .field("peer_commits", peer_commits)
            .field(
                "members",
                new_members
                    .iter()
                    .map(|&m| Json::U64(u64::from(m)))
                    .collect::<Vec<_>>(),
            );
        Response::json(200, doc.pretty() + "\n")
    }

    /// Adopt the freshest committed view any seed peer holds; best
    /// effort (unreachable peers are skipped, a losing race is a no-op —
    /// `commit` rejects stale epochs).
    fn sync_view_from_peers(&self, cl: &ClusterRuntime) {
        let st = cl.state();
        let ours = st.epoch();
        let mut best: Option<(u64, Vec<u32>)> = None;
        for peer in st.peers() {
            if peer.id == st.node_id() {
                continue;
            }
            let Ok(resp) =
                HttpClient::connect_str(&peer.addr).and_then(|mut c| c.get("/v1/cluster/status"))
            else {
                continue;
            };
            if resp.status != 200 {
                continue;
            }
            let body = resp.body_text();
            let Some(epoch) = fleet::json_u64_field(&body, "epoch") else {
                continue;
            };
            if epoch > ours && best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                if let Some(members) = fleet::json_u32_array(&body, "members") {
                    best = Some((epoch, members));
                }
            }
        }
        if let Some((epoch, members)) = best {
            let _ = st.commit(epoch, &members);
        }
    }

    /// Push a commit to each peer in `targets` (self excluded); returns
    /// how many acknowledged. A peer that misses the commit catches up
    /// through epoch-skew handling on its next forwarded request.
    fn commit_on_peers(
        &self,
        cl: &ClusterRuntime,
        epoch: u64,
        members_csv: &str,
        targets: &[u32],
    ) -> u64 {
        let st = cl.state();
        let mut acked = 0u64;
        for &m in targets {
            if m == st.node_id() {
                continue;
            }
            let Some(addr) = st.peer_addr(m) else {
                continue;
            };
            let path = format!("/v1/cluster/commit?epoch={epoch}&members={members_csv}");
            match HttpClient::connect_str(addr).and_then(|mut c| c.get(&path)) {
                Ok(resp) if resp.status == 200 => acked += 1,
                Ok(resp) => {
                    obs::warn!("cluster: commit on node {m} answered {}", resp.status)
                }
                Err(e) => obs::warn!("cluster: commit on node {m} failed: {e}"),
            }
        }
        acked
    }
}

/// Dropped while unwinding ⇒ the dispatch under it panicked: stamp the
/// request id and path into the flight ring so the postmortem dump (the
/// worker pool triggers it after catching the unwind) names the request
/// that died. Normal drops are a `thread::panicking()` check, nothing
/// more.
struct PanicTrap<'a> {
    rid: &'a str,
    path: &'a str,
}

impl Drop for PanicTrap<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            obs::flight::record(FlightKind::HandlerPanic, 0, 0, 0, self.rid, self.path);
            obs::error!(
                "serve: handler panicked (rid {} path {})",
                self.rid,
                self.path
            );
        }
    }
}

fn error_response(e: &ApiError) -> Response {
    match e {
        ApiError::NotFound(msg) => Response::error(404, msg),
        ApiError::BadRequest(msg) => Response::error(400, msg),
        ApiError::Degraded { config, error } => {
            let doc = Json::obj()
                .field("error", "analysis degraded")
                .field("config", config.as_str())
                .field("detail", error.as_str())
                .field("status", 422u64);
            let mut r = Response::json(422, doc.pretty() + "\n");
            r.close = true;
            r
        }
    }
}

fn parse_param<T: std::str::FromStr>(req: &Request, name: &str, default: T) -> Result<T, Response> {
    match req.query_param(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| Response::error(400, &format!("invalid value for {name}: {raw:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, ConnReader, HttpLimits};

    /// A backend that echoes its query — no simulation, used to test
    /// routing, caching, and error mapping in isolation.
    struct EchoBackend;

    impl Backend for EchoBackend {
        fn apps_json(&self) -> String {
            "{\"apps\": []}\n".to_string()
        }

        fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
            if q.app == "nope" {
                return Err(ApiError::NotFound("no such app".into()));
            }
            if q.model != "both" && q.model != "session" && q.model != "commit" {
                return Err(ApiError::BadRequest("bad model".into()));
            }
            Ok(q)
        }

        fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
            if q.app == "sick" {
                return Err(ApiError::Degraded {
                    config: q.config.clone(),
                    error: "simulated deadlock".into(),
                });
            }
            Ok(AnalysisViews {
                verdict: format!("verdict:{}:{}:{}\n", q.app, q.config, q.ranks),
                conflicts: format!("conflicts:{}\n", q.app),
                patterns: format!("patterns:{}\n", q.app),
            })
        }
    }

    fn request(line: &str) -> Request {
        let raw = format!("GET {line} HTTP/1.1\r\n\r\n");
        let mut reader = ConnReader::new(raw.as_bytes());
        parse_request(&mut reader, &HttpLimits::default()).unwrap()
    }

    fn router() -> Router {
        Router::new(Arc::new(EchoBackend), 16)
    }

    #[test]
    fn routes_core_endpoints() {
        let r = router();
        assert_eq!(r.handle(&request("/healthz")).status, 200);
        assert_eq!(r.handle(&request("/v1/apps")).status, 200);
        assert_eq!(r.handle(&request("/v1/metrics")).status, 200);
        assert_eq!(r.handle(&request("/v1/verdict/a/b")).status, 200);
        assert_eq!(r.handle(&request("/v1/conflicts/a/b")).status, 200);
        assert_eq!(r.handle(&request("/v1/patterns/a/b")).status, 200);
        assert_eq!(r.handle(&request("/nope")).status, 404);
        assert_eq!(r.handle(&request("/v1/verdict/only-app")).status, 404);
    }

    #[test]
    fn warm_bytes_equal_cold_bytes() {
        let r = router();
        let cold = r.handle(&request("/v1/verdict/a/b?ranks=4"));
        let warm = r.handle(&request("/v1/verdict/a/b?ranks=4"));
        assert_eq!(cold.body, warm.body);
        assert_eq!(r.cached_entries(), 1);
        // A different parameter is a different cache entry.
        r.handle(&request("/v1/verdict/a/b?ranks=2"));
        assert_eq!(r.cached_entries(), 2);
    }

    #[test]
    fn one_cold_run_warms_all_three_views() {
        let r = router();
        r.handle(&request("/v1/verdict/a/b"));
        assert_eq!(r.cached_entries(), 1);
        assert_eq!(r.handle(&request("/v1/conflicts/a/b")).status, 200);
        assert_eq!(r.handle(&request("/v1/patterns/a/b")).status, 200);
        assert_eq!(r.cached_entries(), 1, "same entry served all views");
    }

    #[test]
    fn error_mapping() {
        let r = router();
        assert_eq!(r.handle(&request("/v1/verdict/nope/x")).status, 404);
        assert_eq!(
            r.handle(&request("/v1/verdict/a/b?model=weird")).status,
            400
        );
        assert_eq!(r.handle(&request("/v1/verdict/a/b?ranks=zero")).status, 400);
        assert_eq!(r.handle(&request("/v1/verdict/a/b?ranks=0")).status, 400);
        assert_eq!(r.handle(&request("/v1/verdict/sick/x")).status, 422);
        // Degraded results are cached too.
        assert_eq!(r.cached_entries(), 1);
        assert_eq!(r.handle(&request("/v1/verdict/sick/x")).status, 422);
    }

    #[test]
    fn degraded_burst_leaves_healthy_verdicts_cached() {
        // A backend that counts cold healthy runs: the healthy verdict
        // must never be recomputed, however many failing queries burst
        // through the (tiny) cache.
        struct CountingBackend(std::sync::atomic::AtomicUsize);
        impl Backend for CountingBackend {
            fn apps_json(&self) -> String {
                EchoBackend.apps_json()
            }
            fn canonicalize(&self, q: AnalysisQuery) -> Result<AnalysisQuery, ApiError> {
                EchoBackend.canonicalize(q)
            }
            fn analyze(&self, q: &AnalysisQuery) -> Result<AnalysisViews, ApiError> {
                if q.app != "sick" {
                    self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                EchoBackend.analyze(q)
            }
        }
        let backend = Arc::new(CountingBackend(std::sync::atomic::AtomicUsize::new(0)));
        let r = Router::new(Arc::clone(&backend) as Arc<dyn Backend>, 2);
        assert_eq!(r.handle(&request("/v1/verdict/a/b")).status, 200);
        for n in 0..50 {
            let line = format!("/v1/verdict/sick/x?seed={n}");
            assert_eq!(r.handle(&request(&line)).status, 422);
        }
        assert_eq!(r.handle(&request("/v1/verdict/a/b")).status, 200);
        assert_eq!(
            backend.0.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "healthy verdict was evicted by the degraded burst"
        );
        assert!(r.cached_entries() <= 2);
    }

    #[test]
    fn non_get_is_405() {
        let raw = "POST /healthz HTTP/1.1\r\n\r\n";
        let mut reader = ConnReader::new(raw.as_bytes());
        let req = parse_request(&mut reader, &HttpLimits::default()).unwrap();
        assert_eq!(router().handle(&req).status, 405);
    }
}
