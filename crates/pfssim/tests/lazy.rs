//! O_LAZY tunable consistency (§2.2): a strong-consistency PFS can be
//! downgraded per descriptor to commit-style buffered writes — the PDL
//! POSIX HPC-extensions proposal the paper describes ("options to
//! introduce laziness into the API … API calls to flush caches … when
//! operating on files where the O_LAZY flag was supplied to open").

use pfssim::{OpenFlags, Pfs, PfsConfig, SemanticsModel, Whence};

fn strong() -> Pfs {
    Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Strong))
}

#[test]
fn lazy_writes_invisible_until_flush() {
    let fs = strong();
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a
        .open("/f", OpenFlags::wronly_create_trunc().with_lazy(), 0)
        .unwrap();
    a.write(fda, b"hello", 1).unwrap();

    let fdb = b.open("/f", OpenFlags::rdonly(), 2).unwrap();
    assert_eq!(
        b.read(fdb, 5, 3).unwrap().data,
        b"",
        "lazy write is buffered"
    );

    a.fsync(fda, 4).unwrap(); // the O_LAZY flush call
    b.lseek(fdb, 0, Whence::Set, 5).unwrap();
    assert_eq!(b.read(fdb, 5, 6).unwrap().data, b"hello", "flush publishes");
}

#[test]
fn lazy_close_publishes() {
    let fs = strong();
    let mut a = fs.client(0);
    let fda = a
        .open("/f", OpenFlags::wronly_create_trunc().with_lazy(), 0)
        .unwrap();
    a.write(fda, b"zz", 1).unwrap();
    a.close(fda, 2).unwrap();
    assert_eq!(fs.published_image("/f").unwrap().read(0, 2), b"zz");
}

#[test]
fn lazy_descriptor_keeps_read_your_writes() {
    let fs = strong();
    let mut a = fs.client(0);
    let fd = a
        .open("/f", OpenFlags::rdwr_create().with_lazy(), 0)
        .unwrap();
    a.write(fd, b"abc", 1).unwrap();
    a.lseek(fd, 0, Whence::Set, 2).unwrap();
    assert_eq!(a.read(fd, 3, 3).unwrap().data, b"abc");
    assert_eq!(
        a.fstat(fd, 4).unwrap().size,
        3,
        "own view includes buffered bytes"
    );
}

#[test]
fn lazy_skips_the_lock_manager() {
    let fs = strong();
    let mut strict = fs.client(0);
    let mut lazy = fs.client(1);
    let fd1 = strict
        .open("/strict", OpenFlags::wronly_create_trunc(), 0)
        .unwrap();
    strict.write(fd1, &[1u8; 4096], 1).unwrap();
    let before = fs.stats().locks_acquired;
    assert!(before > 0);

    let fd2 = lazy
        .open("/lazy", OpenFlags::wronly_create_trunc().with_lazy(), 2)
        .unwrap();
    lazy.write(fd2, &[1u8; 4096], 3).unwrap();
    assert_eq!(
        fs.stats().locks_acquired,
        before,
        "lazy writes bypass the lock manager entirely — the §2.2 performance motivation"
    );
}

#[test]
fn mixed_descriptors_on_one_file() {
    // A strict writer and a lazy writer on the same file: the strict bytes
    // are immediately global, the lazy bytes appear at flush.
    let fs = strong();
    let mut s = fs.client(0);
    let mut l = fs.client(1);
    let mut r = fs.client(2);
    let fds = s.open("/mix", OpenFlags::rdwr_create(), 0).unwrap();
    let fdl = l.open("/mix", OpenFlags::rdwr().with_lazy(), 1).unwrap();
    s.pwrite(fds, 0, b"S", 2).unwrap();
    l.pwrite(fdl, 1, b"L", 3).unwrap();

    let fdr = r.open("/mix", OpenFlags::rdonly(), 4).unwrap();
    assert_eq!(
        r.pread(fdr, 0, 2, 5).unwrap().data,
        b"S",
        "only the strict byte is visible"
    );
    l.fsync(fdl, 6).unwrap();
    assert_eq!(r.pread(fdr, 0, 2, 7).unwrap().data, b"SL");
}

#[test]
fn lazy_is_a_noop_on_relaxed_engines() {
    for model in [
        SemanticsModel::Commit,
        SemanticsModel::Session,
        SemanticsModel::Eventual,
    ] {
        let fs = Pfs::new(
            PfsConfig::default()
                .with_semantics(model)
                .with_eventual_delay_ns(1_000_000),
        );
        let mut a = fs.client(0);
        let mut b = fs.client(1);
        let fda = a
            .open("/f", OpenFlags::wronly_create_trunc().with_lazy(), 0)
            .unwrap();
        a.write(fda, b"x", 1).unwrap();
        // Same visibility as without the flag: not visible before any
        // commit/close under every relaxed engine.
        let fdb = b.open("/f", OpenFlags::rdonly(), 2).unwrap();
        assert_eq!(b.read(fdb, 1, 3).unwrap().data, b"", "{model:?}");
    }
}
