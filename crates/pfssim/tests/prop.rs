//! Property-style tests: the strong engine must agree with a trivial
//! reference model (a flat byte array), and the buffering engines must
//! converge to the same final image once quiesced, for any single-writer
//! operation sequence. Cases come from pinned [`simrng`] seeds so the
//! suite runs with no registry dependencies.

use pfssim::{OpenFlags, Pfs, PfsConfig, SemanticsModel, Whence};
use simrng::SimRng;

/// A single-file operation for the reference-model comparison.
#[derive(Debug, Clone)]
enum Op {
    Write(Vec<u8>),
    Pwrite(u64, Vec<u8>),
    SeekSet(u64),
    SeekCur(i64),
    SeekEnd(i64),
    Read(u64),
    Pread(u64, u64),
    Truncate(u64),
    Fsync,
}

fn random_bytes(rng: &mut SimRng, min: usize, max: usize) -> Vec<u8> {
    (0..rng.range_usize(min, max))
        .map(|_| rng.next_u32() as u8)
        .collect()
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.range_u32(0, 9) {
        0 => Op::Write(random_bytes(rng, 1, 64)),
        1 => Op::Pwrite(rng.range_u64(0, 512), random_bytes(rng, 1, 64)),
        2 => Op::SeekSet(rng.range_u64(0, 512)),
        3 => Op::SeekCur(rng.range_i64_inclusive(-64, 63)),
        4 => Op::SeekEnd(rng.range_i64_inclusive(-64, -1)),
        5 => Op::Read(rng.range_u64(1, 128)),
        6 => Op::Pread(rng.range_u64(0, 512), rng.range_u64(1, 128)),
        7 => Op::Truncate(rng.range_u64(0, 512)),
        _ => Op::Fsync,
    }
}

fn random_ops(rng: &mut SimRng) -> Vec<Op> {
    (0..rng.range_usize(1, 40))
        .map(|_| random_op(rng))
        .collect()
}

/// Reference: flat in-memory file with a cursor.
#[derive(Default)]
struct RefFile {
    data: Vec<u8>,
    cursor: u64,
}

impl RefFile {
    fn write_at(&mut self, off: u64, bytes: &[u8]) {
        let end = off as usize + bytes.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[off as usize..end].copy_from_slice(bytes);
    }

    fn apply(&mut self, op: &Op) -> Option<Vec<u8>> {
        match op {
            Op::Write(d) => {
                let off = self.cursor;
                self.write_at(off, d);
                self.cursor += d.len() as u64;
                None
            }
            Op::Pwrite(o, d) => {
                self.write_at(*o, d);
                None
            }
            Op::SeekSet(o) => {
                self.cursor = *o;
                None
            }
            Op::SeekCur(delta) => {
                let pos = self.cursor as i64 + delta;
                if pos >= 0 {
                    self.cursor = pos as u64;
                }
                None
            }
            Op::SeekEnd(delta) => {
                let pos = self.data.len() as i64 + delta;
                if pos >= 0 {
                    self.cursor = pos as u64;
                }
                None
            }
            Op::Read(len) => {
                let off = self.cursor as usize;
                let end = (off + *len as usize).min(self.data.len());
                let out = if off >= self.data.len() {
                    Vec::new()
                } else {
                    self.data[off..end].to_vec()
                };
                self.cursor += out.len() as u64;
                Some(out)
            }
            Op::Pread(o, len) => {
                let off = *o as usize;
                let end = (off + *len as usize).min(self.data.len());
                Some(if off >= self.data.len() {
                    Vec::new()
                } else {
                    self.data[off..end].to_vec()
                })
            }
            Op::Truncate(l) => {
                self.data.resize(*l as usize, 0);
                if *l < self.data.len() as u64 {
                    self.data.truncate(*l as usize);
                }
                None
            }
            Op::Fsync => None,
        }
    }
}

fn run_engine(model: SemanticsModel, ops: &[Op]) -> (Vec<Option<Vec<u8>>>, Vec<u8>) {
    let fs = Pfs::new(PfsConfig::default().with_semantics(model));
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    let mut reads = Vec::new();
    let mut now = 1u64;
    for op in ops {
        now += 1;
        let r = match op {
            Op::Write(d) => {
                c.write(fd, d, now).unwrap();
                None
            }
            Op::Pwrite(o, d) => {
                c.pwrite(fd, *o, d, now).unwrap();
                None
            }
            Op::SeekSet(o) => {
                c.lseek(fd, *o as i64, Whence::Set, now).unwrap();
                None
            }
            Op::SeekCur(delta) => {
                let _ = c.lseek(fd, *delta, Whence::Cur, now);
                None
            }
            Op::SeekEnd(delta) => {
                let _ = c.lseek(fd, *delta, Whence::End, now);
                None
            }
            Op::Read(len) => Some(c.read(fd, *len, now).unwrap().data),
            Op::Pread(o, len) => Some(c.pread(fd, *o, *len, now).unwrap().data),
            Op::Truncate(l) => {
                c.ftruncate(fd, *l, now).unwrap();
                None
            }
            Op::Fsync => {
                c.fsync(fd, now).unwrap();
                None
            }
        };
        reads.push(r);
    }
    c.close(fd, now + 1).unwrap();
    fs.quiesce();
    let img = fs.published_image("/f").unwrap();
    let size = img.size();
    (reads, img.read(0, size))
}

/// The strong engine behaves exactly like a flat byte array with a
/// cursor, for any single-process op sequence.
#[test]
fn strong_engine_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0xF5A);
    for _ in 0..64 {
        let ops = random_ops(&mut rng);
        let mut reference = RefFile::default();
        let ref_reads: Vec<Option<Vec<u8>>> = ops.iter().map(|op| reference.apply(op)).collect();
        let (reads, final_img) = run_engine(SemanticsModel::Strong, &ops);
        assert_eq!(reads, ref_reads);
        assert_eq!(final_img, reference.data);
    }
}

/// Single-process programs are engine-invariant: every read returns the
/// same bytes (read-your-writes), and after quiesce the published image
/// is identical under all four models.
#[test]
fn single_writer_engine_invariance() {
    let mut rng = SimRng::seed_from_u64(0xF5B);
    for _ in 0..64 {
        let ops = random_ops(&mut rng);
        let (strong_reads, strong_img) = run_engine(SemanticsModel::Strong, &ops);
        for model in [
            SemanticsModel::Commit,
            SemanticsModel::Session,
            SemanticsModel::Eventual,
        ] {
            let (reads, img) = run_engine(model, &ops);
            assert_eq!(&reads, &strong_reads, "reads differ under {model:?}");
            assert_eq!(&img, &strong_img, "final image differs under {model:?}");
        }
    }
}
