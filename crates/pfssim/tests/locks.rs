//! Lock-manager behaviour under the strong engine: acquisitions scale with
//! extents, revocations appear only when different clients touch the same
//! extent — the §3.1 cost model ("the metadata server, where the locks are
//! normally maintained, may become a bottleneck").

use pfssim::{OpenFlags, Pfs, PfsConfig, SemanticsModel};

fn strong() -> Pfs {
    Pfs::new(PfsConfig {
        semantics: SemanticsModel::Strong,
        lock_granularity: 1 << 20,
        ..PfsConfig::default()
    })
}

#[test]
fn disjoint_writers_never_revoke() {
    let fs = strong();
    for rank in 0..8u32 {
        let mut c = fs.client(rank);
        let flags = if rank == 0 {
            OpenFlags::rdwr_create()
        } else {
            OpenFlags::rdwr()
        };
        let fd = c.open("/shared", flags, rank as u64).unwrap();
        c.pwrite(fd, rank as u64 * 4096, &[1u8; 4096], 10 + rank as u64)
            .unwrap();
        c.close(fd, 20 + rank as u64).unwrap();
    }
    let s = fs.stats();
    assert_eq!(s.locks_acquired, 8);
    assert_eq!(
        s.lock_revocations, 0,
        "N-1 strided writers own disjoint extents"
    );
}

#[test]
fn shared_extent_ping_pong_revokes() {
    // Two clients alternately rewriting the same header block: every
    // write after the first revokes the other's lock.
    let fs = strong();
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/shared", OpenFlags::rdwr_create(), 0).unwrap();
    let fdb = b.open("/shared", OpenFlags::rdwr(), 1).unwrap();
    for i in 0..5u64 {
        a.pwrite(fda, 0, &[1u8; 96], 10 + i * 2).unwrap();
        b.pwrite(fdb, 0, &[2u8; 96], 11 + i * 2).unwrap();
    }
    let s = fs.stats();
    assert_eq!(
        s.lock_revocations, 9,
        "every handoff after the first write revokes"
    );
}

#[test]
fn same_client_rewrites_do_not_revoke() {
    let fs = strong();
    let mut a = fs.client(0);
    let fd = a.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    for i in 0..10u64 {
        a.pwrite(fd, 0, &[i as u8; 128], i).unwrap();
    }
    assert_eq!(fs.stats().lock_revocations, 0);
}

#[test]
fn foreign_read_after_write_counts_as_revocation() {
    let fs = strong();
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    a.pwrite(fda, 0, &[7u8; 256], 1).unwrap();
    let fdb = b.open("/f", OpenFlags::rdonly(), 2).unwrap();
    b.pread(fdb, 0, 256, 3).unwrap();
    let s = fs.stats();
    assert_eq!(
        s.lock_revocations, 1,
        "the reader must downgrade the writer's lock"
    );
}

#[test]
fn relaxed_engines_never_lock_or_revoke() {
    for model in [
        SemanticsModel::Commit,
        SemanticsModel::Session,
        SemanticsModel::Eventual,
    ] {
        let fs = Pfs::new(PfsConfig::default().with_semantics(model));
        let mut a = fs.client(0);
        let mut b = fs.client(1);
        let fda = a.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
        a.pwrite(fda, 0, &[1u8; 4096], 1).unwrap();
        a.close(fda, 2).unwrap();
        let fdb = b.open("/f", OpenFlags::rdwr(), 3).unwrap();
        b.pwrite(fdb, 0, &[2u8; 4096], 4).unwrap();
        b.close(fdb, 5).unwrap();
        let s = fs.stats();
        assert_eq!((s.locks_acquired, s.lock_revocations), (0, 0), "{model:?}");
    }
}

#[test]
fn lock_count_scales_with_granularity() {
    let fs = Pfs::new(PfsConfig {
        semantics: SemanticsModel::Strong,
        lock_granularity: 1024,
        ..PfsConfig::default()
    });
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.pwrite(fd, 0, &[0u8; 10 * 1024], 1).unwrap();
    assert_eq!(fs.stats().locks_acquired, 10);
}
