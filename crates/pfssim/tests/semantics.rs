//! Tests of the four consistency engines: who sees which write, when.
//! Each scenario plays the roles of "process A" (writer, rank 0) and
//! "process B" (reader, rank 1) with explicit simulated timestamps.

use pfssim::{OpenFlags, Pfs, PfsConfig, SemanticsModel};

fn pfs(model: SemanticsModel) -> Pfs {
    Pfs::new(
        PfsConfig::default()
            .with_semantics(model)
            .with_eventual_delay_ns(1_000_000),
    )
}

const W: OpenFlags = OpenFlags::wronly_create_trunc();
const R: OpenFlags = OpenFlags::rdonly();

#[test]
fn strong_write_immediately_visible() {
    let fs = pfs(SemanticsModel::Strong);
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"hello", 10).unwrap();

    let fdb = b.open("/f", R, 20).unwrap();
    let out = b.read(fdb, 5, 30).unwrap();
    assert_eq!(out.data, b"hello");
    assert_eq!(out.tags.len(), 1);
    assert_eq!(out.tags[0].tag.unwrap().rank, 0);
}

#[test]
fn commit_write_invisible_until_fsync() {
    let fs = pfs(SemanticsModel::Commit);
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"hello", 10).unwrap();

    let fdb = b.open("/f", R, 20).unwrap();
    assert_eq!(
        b.read(fdb, 5, 30).unwrap().data,
        b"",
        "uncommitted write hidden"
    );

    a.fsync(fda, 40).unwrap();
    b.lseek(fdb, 0, pfssim::Whence::Set, 45).unwrap();
    assert_eq!(
        b.read(fdb, 5, 50).unwrap().data,
        b"hello",
        "fsync publishes"
    );
}

#[test]
fn commit_close_also_publishes() {
    let fs = pfs(SemanticsModel::Commit);
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"xy", 10).unwrap();
    a.close(fda, 20).unwrap();

    let fdb = b.open("/f", R, 30).unwrap();
    assert_eq!(b.read(fdb, 2, 40).unwrap().data, b"xy");
}

#[test]
fn session_fsync_does_not_publish() {
    let fs = pfs(SemanticsModel::Session);
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"hello", 10).unwrap();
    a.fsync(fda, 20).unwrap();

    let fdb = b.open("/f", R, 30).unwrap();
    assert_eq!(
        b.read(fdb, 5, 40).unwrap().data,
        b"",
        "session semantics: fsync persists but does not publish"
    );
}

#[test]
fn session_close_to_open_visibility() {
    let fs = pfs(SemanticsModel::Session);
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"hello", 10).unwrap();

    // B opens *before* A closes: B's session must not observe A's write,
    // even after the close happens.
    let fdb_early = b.open("/f", R, 15).unwrap();
    a.close(fda, 20).unwrap();
    assert_eq!(
        b.read(fdb_early, 5, 30).unwrap().data,
        b"",
        "open preceded the writer's close"
    );

    // B reopens after the close: now the write is visible.
    let fdb_late = b.open("/f", R, 40).unwrap();
    assert_eq!(b.read(fdb_late, 5, 50).unwrap().data, b"hello");
}

#[test]
fn eventual_visibility_by_delay_only() {
    let fs = pfs(SemanticsModel::Eventual); // delay = 1_000_000 ns
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"hello", 1000).unwrap(); // matures at 1_001_000
    a.fsync(fda, 2000).unwrap(); // must NOT accelerate propagation
    a.close(fda, 3000).unwrap(); // nor close

    let fdb = b.open("/f", R, 5000).unwrap();
    assert_eq!(b.read(fdb, 5, 10_000).unwrap().data, b"", "before delay");

    b.lseek(fdb, 0, pfssim::Whence::Set, 0).unwrap();
    assert_eq!(
        b.read(fdb, 5, 2_000_000).unwrap().data,
        b"hello",
        "after delay the write propagates with no commit at all"
    );
}

#[test]
fn read_your_writes_under_every_engine() {
    for model in SemanticsModel::ALL {
        let fs = pfs(model);
        let mut a = fs.client(0);
        let fd = a.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
        a.write(fd, b"abc", 10).unwrap();
        a.lseek(fd, 0, pfssim::Whence::Set, 11).unwrap();
        let out = a.read(fd, 3, 20).unwrap();
        assert_eq!(
            out.data, b"abc",
            "read-your-writes violated under {model:?}"
        );
    }
}

#[test]
fn same_process_waw_order_preserved_by_default() {
    let fs = pfs(SemanticsModel::Commit);
    let mut a = fs.client(0);
    let fd = a.open("/f", W, 0).unwrap();
    a.write(fd, b"old", 10).unwrap();
    a.lseek(fd, 0, pfssim::Whence::Set, 11).unwrap();
    a.write(fd, b"new", 20).unwrap();
    a.close(fd, 30).unwrap();
    let img = fs.published_image("/f").unwrap();
    assert_eq!(img.read(0, 3), b"new");
}

#[test]
fn burstfs_mode_may_reorder_same_process_writes() {
    let cfg = PfsConfig::default()
        .with_semantics(SemanticsModel::Commit)
        .with_burstfs_reordering();
    let fs = Pfs::new(cfg);
    let mut a = fs.client(0);
    let fd = a.open("/f", W, 0).unwrap();
    a.write(fd, b"old", 10).unwrap();
    a.lseek(fd, 0, pfssim::Whence::Set, 11).unwrap();
    a.write(fd, b"new", 20).unwrap();
    a.close(fd, 30).unwrap();
    let img = fs.published_image("/f").unwrap();
    // The BurstFS anomaly (§3.5): a read after two same-process writes can
    // return the older value.
    assert_eq!(img.read(0, 3), b"old");
}

#[test]
fn observation_logs_identical_when_no_sharing() {
    // A program where each rank works on its own file observes identical
    // provenance under strong and session semantics — the signal the
    // semantics-matrix experiment relies on.
    let run = |model| {
        let fs = pfs(model);
        let mut obs = Vec::new();
        for rank in 0..4u32 {
            let mut c = fs.client(rank);
            let path = format!("/own_{rank}");
            let fd = c.open(&path, OpenFlags::rdwr_create(), 0).unwrap();
            c.write(fd, &[rank as u8; 64], 10).unwrap();
            c.lseek(fd, 0, pfssim::Whence::Set, 11).unwrap();
            c.read(fd, 64, 20).unwrap();
            c.close(fd, 30).unwrap();
            obs.extend(c.take_observations());
        }
        obs
    };
    let strong = run(SemanticsModel::Strong);
    let session = run(SemanticsModel::Session);
    assert_eq!(strong.len(), session.len());
    for (s, w) in strong.iter().zip(&session) {
        assert_eq!(
            s.digest, w.digest,
            "no-sharing program must be engine-invariant"
        );
    }
}

#[test]
fn observation_logs_differ_on_stale_read() {
    // Writer publishes nothing before the reader's read: session-stale.
    let run = |model| {
        let fs = pfs(model);
        let mut a = fs.client(0);
        let mut b = fs.client(1);
        let fda = a.open("/shared", W, 0).unwrap();
        a.write(fda, b"payload", 10).unwrap();
        a.fsync(fda, 20).unwrap(); // commit point
        let fdb = b.open("/shared", R, 30).unwrap();
        let _ = b.read(fdb, 7, 40).unwrap();
        b.take_observations()[0].digest
    };
    let strong = run(SemanticsModel::Strong);
    let commit = run(SemanticsModel::Commit);
    let session = run(SemanticsModel::Session);
    // fsync is a commit: commit semantics agree with strong here.
    assert_eq!(strong, commit);
    // …but session semantics return stale (empty) data: different digest.
    assert_ne!(strong, session);
}

#[test]
fn laminate_publishes_everything_and_freezes() {
    let fs = pfs(SemanticsModel::Commit);
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"data", 10).unwrap();
    // No fsync/close — laminate must still publish.
    b.laminate("/f", 20).unwrap();
    let img = fs.published_image("/f").unwrap();
    assert_eq!(img.read(0, 4), b"data");
    // Writes after lamination are denied.
    assert!(a.write(fda, b"more", 30).is_err());
    assert!(b.open("/f", W, 40).is_err());
    let fdb = b.open("/f", R, 50).unwrap();
    assert_eq!(b.read(fdb, 4, 60).unwrap().data, b"data");
}

#[test]
fn locks_counted_only_under_strong() {
    for model in SemanticsModel::ALL {
        let fs = pfs(model);
        let mut a = fs.client(0);
        let fd = a.open("/f", W, 0).unwrap();
        let out = a.write(fd, &[0u8; 4096], 10).unwrap();
        let stats = fs.stats();
        if model == SemanticsModel::Strong {
            assert!(out.locks > 0);
            assert!(stats.locks_acquired > 0);
        } else {
            assert_eq!(out.locks, 0);
            assert_eq!(stats.locks_acquired, 0, "{model:?} must not lock");
        }
    }
}

#[test]
fn pending_and_publish_stats() {
    let fs = pfs(SemanticsModel::Commit);
    let mut a = fs.client(0);
    let fd = a.open("/f", W, 0).unwrap();
    a.write(fd, b"1", 1).unwrap();
    a.write(fd, b"2", 2).unwrap();
    assert_eq!(fs.stats().pending_extents, 2);
    assert_eq!(fs.stats().publishes, 0);
    a.fsync(fd, 3).unwrap();
    assert_eq!(fs.stats().pending_extents, 0);
    assert_eq!(fs.stats().publishes, 2);
}

#[test]
fn quiesce_flushes_all_engines() {
    for model in [
        SemanticsModel::Commit,
        SemanticsModel::Session,
        SemanticsModel::Eventual,
    ] {
        let fs = pfs(model);
        let mut a = fs.client(0);
        let fd = a.open("/f", W, 0).unwrap();
        a.write(fd, b"zz", 10).unwrap();
        // Neither fsync nor close: only quiesce makes it durable/visible.
        fs.quiesce();
        let img = fs.published_image("/f").unwrap();
        assert_eq!(img.read(0, 2), b"zz", "quiesce must flush under {model:?}");
    }
}

#[test]
fn append_positions_at_visible_eof() {
    for model in SemanticsModel::ALL {
        let fs = pfs(model);
        let mut a = fs.client(0);
        let fd = a.open("/log", OpenFlags::append_create(), 0).unwrap();
        a.write(fd, b"aaa", 1).unwrap();
        let out = a.write(fd, b"bbb", 2).unwrap();
        assert_eq!(
            out.offset, 3,
            "append must see own buffered EOF under {model:?}"
        );
        a.close(fd, 3).unwrap();
        fs.quiesce();
        assert_eq!(fs.published_image("/log").unwrap().read(0, 6), b"aaabbb");
    }
}

#[test]
fn session_snapshot_isolates_concurrent_overwrites() {
    let fs = pfs(SemanticsModel::Session);
    let mut a = fs.client(0);
    let mut b = fs.client(1);

    // Session 1: A writes v1 and closes → published.
    let fda = a.open("/f", W, 0).unwrap();
    a.write(fda, b"v1", 1).unwrap();
    a.close(fda, 2).unwrap();

    // B opens and snapshots v1.
    let fdb = b.open("/f", R, 3).unwrap();

    // Session 2: A overwrites with v2 and closes.
    let fda2 = a.open("/f", OpenFlags::rdwr(), 4).unwrap();
    a.write(fda2, b"v2", 5).unwrap();
    a.close(fda2, 6).unwrap();

    // B still reads v1 through its open session.
    assert_eq!(b.read(fdb, 2, 7).unwrap().data, b"v1");
    // A fresh open sees v2.
    let fdb2 = b.open("/f", R, 8).unwrap();
    assert_eq!(b.read(fdb2, 2, 9).unwrap().data, b"v2");
}

#[test]
fn stripe_accounting_spreads_over_servers() {
    let cfg = PfsConfig {
        semantics: SemanticsModel::Strong,
        stripe_size: 1024,
        data_servers: 4,
        ..PfsConfig::default()
    };
    let fs = Pfs::new(cfg);
    let mut a = fs.client(0);
    let fd = a.open("/big", W, 0).unwrap();
    a.write(fd, &vec![1u8; 8192], 1).unwrap();
    let stats = fs.stats();
    assert_eq!(
        stats.server_bytes_written,
        vec![2048; 4],
        "round-robin striping"
    );
}
