//! POSIX-surface tests: cursors, flags, seeks, metadata operations, and
//! error paths. These behaviours are exactly what the paper's offset
//! resolution (§5.1) has to interpret, so they must be right.

use pfssim::{FsError, MetaOp, OpenFlags, Pfs, PfsConfig, SemanticsModel, Whence};

fn strong() -> Pfs {
    Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Strong))
}

#[test]
fn write_advances_cursor_pwrite_does_not() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.write(fd, b"abcd", 1).unwrap();
    assert_eq!(c.cursor(fd).unwrap(), 4);
    c.pwrite(fd, 100, b"zz", 2).unwrap();
    assert_eq!(c.cursor(fd).unwrap(), 4, "pwrite must not move the cursor");
}

#[test]
fn read_advances_cursor_pread_does_not() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.write(fd, b"abcdef", 1).unwrap();
    c.lseek(fd, 0, Whence::Set, 2).unwrap();
    assert_eq!(c.read(fd, 3, 3).unwrap().data, b"abc");
    assert_eq!(c.cursor(fd).unwrap(), 3);
    assert_eq!(c.pread(fd, 0, 2, 4).unwrap().data, b"ab");
    assert_eq!(c.cursor(fd).unwrap(), 3, "pread must not move the cursor");
}

#[test]
fn short_read_at_eof_advances_by_actual() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.write(fd, b"abc", 1).unwrap();
    c.lseek(fd, 1, Whence::Set, 2).unwrap();
    let out = c.read(fd, 100, 3).unwrap();
    assert_eq!(out.data, b"bc");
    assert_eq!(c.cursor(fd).unwrap(), 3);
    // Reading at EOF returns empty and leaves the cursor alone.
    assert_eq!(c.read(fd, 10, 4).unwrap().data, b"");
    assert_eq!(c.cursor(fd).unwrap(), 3);
}

#[test]
fn lseek_set_cur_end() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.write(fd, &[9u8; 100], 1).unwrap();
    assert_eq!(c.lseek(fd, 10, Whence::Set, 2).unwrap(), 10);
    assert_eq!(c.lseek(fd, 5, Whence::Cur, 3).unwrap(), 15);
    assert_eq!(c.lseek(fd, -5, Whence::Cur, 4).unwrap(), 10);
    assert_eq!(c.lseek(fd, 0, Whence::End, 5).unwrap(), 100);
    assert_eq!(c.lseek(fd, -20, Whence::End, 6).unwrap(), 80);
    assert!(matches!(
        c.lseek(fd, -101, Whence::End, 7),
        Err(FsError::Invalid { .. })
    ));
    // Seeking past EOF is legal; a write there creates a hole.
    assert_eq!(c.lseek(fd, 200, Whence::Set, 8).unwrap(), 200);
    c.write(fd, b"x", 9).unwrap();
    c.lseek(fd, 150, Whence::Set, 10).unwrap();
    let out = c.read(fd, 10, 11).unwrap();
    assert_eq!(out.data, vec![0u8; 10], "hole reads as zeros");
}

#[test]
fn o_trunc_resets_existing_file() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::wronly_create_trunc(), 0).unwrap();
    c.write(fd, &[1u8; 50], 1).unwrap();
    c.close(fd, 2).unwrap();
    let fd = c.open("/f", OpenFlags::wronly_create_trunc(), 3).unwrap();
    assert_eq!(c.fstat(fd, 4).unwrap().size, 0, "O_TRUNC zeroes the size");
    c.close(fd, 5).unwrap();
}

#[test]
fn o_excl_fails_on_existing() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c
        .open("/f", OpenFlags::rdwr_create().with_excl(), 0)
        .unwrap();
    c.close(fd, 1).unwrap();
    assert!(matches!(
        c.open("/f", OpenFlags::rdwr_create().with_excl(), 2),
        Err(FsError::AlreadyExists { .. })
    ));
}

#[test]
fn open_modes_enforced() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::wronly_create_trunc(), 0).unwrap();
    assert!(matches!(c.read(fd, 1, 1), Err(FsError::Denied { .. })));
    c.close(fd, 2).unwrap();
    let fd = c.open("/f", OpenFlags::rdonly(), 3).unwrap();
    assert!(matches!(c.write(fd, b"x", 4), Err(FsError::Denied { .. })));
}

#[test]
fn missing_file_and_bad_fd() {
    let fs = strong();
    let mut c = fs.client(0);
    assert!(matches!(
        c.open("/missing", OpenFlags::rdonly(), 0),
        Err(FsError::NotFound { .. })
    ));
    assert!(matches!(c.read(99, 1, 1), Err(FsError::BadFd { fd: 99 })));
    assert!(matches!(c.close(99, 2), Err(FsError::BadFd { fd: 99 })));
}

#[test]
fn create_in_missing_directory_fails() {
    let fs = strong();
    let mut c = fs.client(0);
    assert!(matches!(
        c.open("/nodir/f", OpenFlags::rdwr_create(), 0),
        Err(FsError::NotFound { .. })
    ));
    c.mkdir("/nodir", 1).unwrap();
    assert!(c.open("/nodir/f", OpenFlags::rdwr_create(), 2).is_ok());
}

#[test]
fn stat_fstat_and_sizes() {
    let fs = strong();
    let mut c = fs.client(0);
    c.mkdir("/d", 0).unwrap();
    assert!(c.stat("/d", 1).unwrap().is_dir);
    let fd = c.open("/d/f", OpenFlags::rdwr_create(), 2).unwrap();
    c.write(fd, &[1u8; 77], 3).unwrap();
    assert_eq!(c.stat("/d/f", 4).unwrap().size, 77);
    assert_eq!(c.fstat(fd, 5).unwrap().size, 77);
    assert_eq!(c.lstat("/d/f", 6).unwrap().size, 77);
}

#[test]
fn stat_sees_own_buffered_size_under_commit() {
    let fs = Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Commit));
    let mut a = fs.client(0);
    let mut b = fs.client(1);
    let fd = a.open("/f", OpenFlags::wronly_create_trunc(), 0).unwrap();
    a.write(fd, &[1u8; 10], 1).unwrap();
    assert_eq!(
        a.stat("/f", 2).unwrap().size,
        10,
        "own view includes pending"
    );
    assert_eq!(b.stat("/f", 3).unwrap().size, 0, "other view does not");
}

#[test]
fn unlink_rename_rmdir() {
    let fs = strong();
    let mut c = fs.client(0);
    c.mkdir("/d", 0).unwrap();
    let fd = c.open("/d/a", OpenFlags::rdwr_create(), 1).unwrap();
    c.close(fd, 2).unwrap();
    c.rename("/d/a", "/d/b", 3).unwrap();
    assert!(!c.access("/d/a", 4).unwrap());
    assert!(c.access("/d/b", 5).unwrap());
    assert!(matches!(c.rmdir("/d", 6), Err(FsError::NotEmpty { .. })));
    c.unlink("/d/b", 7).unwrap();
    c.rmdir("/d", 8).unwrap();
    assert!(!c.access("/d", 9).unwrap());
}

#[test]
fn cwd_and_relative_paths() {
    let fs = strong();
    let mut c = fs.client(0);
    c.mkdir("/work", 0).unwrap();
    c.chdir("/work", 1).unwrap();
    assert_eq!(c.getcwd(2), "/work");
    let fd = c.open("rel.txt", OpenFlags::rdwr_create(), 3).unwrap();
    c.close(fd, 4).unwrap();
    assert!(c.access("/work/rel.txt", 5).unwrap());
}

#[test]
fn readdir_lists_and_counts() {
    let fs = strong();
    let mut c = fs.client(0);
    c.mkdir("/d", 0).unwrap();
    for name in ["x", "y", "z"] {
        let fd = c
            .open(&format!("/d/{name}"), OpenFlags::rdwr_create(), 1)
            .unwrap();
        c.close(fd, 2).unwrap();
    }
    let entries = c.readdir("/d", 3).unwrap();
    assert_eq!(entries.len(), 3);
    let stats = fs.stats();
    assert_eq!(stats.meta_ops[&MetaOp::Opendir], 1);
    assert_eq!(stats.meta_ops[&MetaOp::Readdir], 3);
    assert_eq!(stats.meta_ops[&MetaOp::Closedir], 1);
}

#[test]
fn truncate_and_ftruncate() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.write(fd, &[5u8; 100], 1).unwrap();
    c.ftruncate(fd, 40, 2).unwrap();
    assert_eq!(c.fstat(fd, 3).unwrap().size, 40);
    c.truncate("/f", 10, 4).unwrap();
    assert_eq!(c.stat("/f", 5).unwrap().size, 10);
}

#[test]
fn truncate_trims_pending_writes() {
    let fs = Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Commit));
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    c.write(fd, &[1u8; 100], 1).unwrap(); // pending
    c.ftruncate(fd, 10, 2).unwrap();
    c.fsync(fd, 3).unwrap();
    let img = fs.published_image("/f").unwrap();
    assert_eq!(
        img.size(),
        10,
        "pending beyond the truncation point is dropped"
    );
    assert_eq!(img.read(0, 100), vec![1u8; 10]);
}

#[test]
fn dup_fcntl_umask_fileno_counted() {
    let fs = strong();
    let mut c = fs.client(0);
    let fd = c.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    let fd2 = c.dup(fd, 1).unwrap();
    assert_ne!(fd, fd2);
    c.fcntl(fd, 2).unwrap();
    c.umask(0o022, 3);
    c.fileno(fd, 4).unwrap();
    let stats = fs.stats();
    assert_eq!(stats.meta_ops[&MetaOp::Dup], 1);
    assert_eq!(stats.meta_ops[&MetaOp::Fcntl], 1);
    assert_eq!(stats.meta_ops[&MetaOp::Umask], 1);
    assert_eq!(stats.meta_ops[&MetaOp::Fileno], 1);
}

#[test]
fn mmap_reads_and_msync_commits() {
    let fs = Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Commit));
    let mut a = fs.client(0);
    let fd = a.open("/f", OpenFlags::rdwr_create(), 0).unwrap();
    a.write(fd, b"mapped", 1).unwrap();
    let out = a.mmap(fd, 0, 6, 2).unwrap();
    assert_eq!(out.data, b"mapped");
    a.msync(fd, 3).unwrap();
    let img = fs.published_image("/f").unwrap();
    assert_eq!(
        img.read(0, 6),
        b"mapped",
        "msync publishes under commit semantics"
    );
    let stats = fs.stats();
    assert_eq!(stats.meta_ops[&MetaOp::Mmap], 1);
    assert_eq!(stats.meta_ops[&MetaOp::Msync], 1);
}

#[test]
fn list_files_walks_namespace() {
    let fs = strong();
    let mut c = fs.client(0);
    c.mkdir("/a", 0).unwrap();
    c.mkdir("/a/b", 1).unwrap();
    for p in ["/top", "/a/f1", "/a/b/f2"] {
        let fd = c.open(p, OpenFlags::rdwr_create(), 2).unwrap();
        c.close(fd, 3).unwrap();
    }
    assert_eq!(fs.list_files(), vec!["/a/b/f2", "/a/f1", "/top"]);
}

#[test]
fn opening_directory_as_file_fails() {
    let fs = strong();
    let mut c = fs.client(0);
    c.mkdir("/d", 0).unwrap();
    assert!(matches!(
        c.open("/d", OpenFlags::rdonly(), 1),
        Err(FsError::NotAFile { .. })
    ));
}
