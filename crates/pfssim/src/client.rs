//! The per-process PFS client: file descriptors, cursors, POSIX-style data
//! and metadata calls, and the read-observation log.

use std::collections::HashMap;
use std::sync::Arc;

use std::sync::Mutex;

use crate::config::{PfsConfig, SemanticsModel};
use crate::engine;
use crate::error::{FsError, FsResult};
use crate::flags::{OpenFlags, Whence};
use crate::image::FileImage;
use crate::namespace::{normalize, DirEntry};
use crate::state::{lock_state, FileId, PfsState};
use crate::stats::MetaOp;
use crate::tag::{TagRun, WriteTag};

/// Result of a write: where it landed and its provenance tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOut {
    /// Resolved absolute file offset of the first byte.
    pub offset: u64,
    pub len: u64,
    pub tag: WriteTag,
    /// Extent locks acquired (non-zero only under strong semantics).
    pub locks: u64,
}

/// Result of a read: the bytes, where they came from, and a provenance
/// digest for cross-engine comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOut {
    /// Resolved absolute file offset of the first byte.
    pub offset: u64,
    pub data: Vec<u8>,
    /// Per-byte provenance, run-length encoded.
    pub tags: Vec<TagRun>,
    /// FNV digest of `tags` (and the returned length).
    pub digest: u64,
}

/// `stat`-style metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatInfo {
    pub is_dir: bool,
    /// Size as visible to the calling process (includes its own buffered
    /// writes).
    pub size: u64,
}

/// One entry of the read-observation log: enough to compare what the same
/// deterministic program observed under two different consistency engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Per-client sequence number of the read.
    pub op_idx: u64,
    pub file: FileId,
    pub offset: u64,
    pub len: u64,
    /// Digest of the provenance runs the read returned.
    pub digest: u64,
}

#[derive(Debug, Clone)]
struct FdEntry {
    file: FileId,
    path: String,
    flags: OpenFlags,
    cursor: u64,
    /// Session-semantics open-time snapshot.
    snapshot: Option<Arc<FileImage>>,
}

/// A per-process client of one [`crate::Pfs`] instance.
///
/// Every data/metadata call takes `now`: the caller's simulated timestamp,
/// used by the eventual engine's propagation delay. Clients are not
/// thread-safe (one per simulated process, like a POSIX process's fd table).
pub struct PfsClient {
    state: Arc<Mutex<PfsState>>,
    cfg: PfsConfig,
    rank: u32,
    /// Unique client-instance (process) identity; owns this client's
    /// buffered writes.
    client_id: u64,
    fds: HashMap<u32, FdEntry>,
    next_fd: u32,
    cwd: String,
    observations: Vec<Observation>,
    next_obs: u64,
    /// One-shot lost-flush fault: when armed, the next fsync/fdatasync is
    /// recorded and counted as a commit but its publish is silently dropped
    /// (the flush never reached commit visibility).
    lost_flush_armed: bool,
}

impl PfsClient {
    pub(crate) fn new(state: Arc<Mutex<PfsState>>, cfg: PfsConfig, rank: u32) -> Self {
        let client_id = {
            let mut st = lock_state(&state);
            let id = st.next_client_id;
            st.next_client_id += 1;
            id
        };
        PfsClient {
            state,
            cfg,
            rank,
            client_id,
            fds: HashMap::new(),
            next_fd: 3, // 0-2 reserved, as in POSIX
            cwd: "/".to_string(),
            observations: Vec::new(),
            next_obs: 0,
            lost_flush_armed: false,
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn semantics(&self) -> SemanticsModel {
        self.cfg.semantics
    }

    /// The read-observation log accumulated so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    pub fn take_observations(&mut self) -> Vec<Observation> {
        std::mem::take(&mut self.observations)
    }

    fn fd(&self, fd: u32) -> FsResult<&FdEntry> {
        self.fds.get(&fd).ok_or(FsError::BadFd { fd })
    }

    fn fd_mut(&mut self, fd: u32) -> FsResult<&mut FdEntry> {
        self.fds.get_mut(&fd).ok_or(FsError::BadFd { fd })
    }

    fn norm(&self, path: &str) -> FsResult<String> {
        normalize(&self.cwd, path)
    }

    /// The consistency model in effect for a descriptor opened with
    /// `flags`: `O_LAZY` downgrades a strong-consistency PFS to commit
    /// semantics for that descriptor (the §2.2 tunable-consistency
    /// extension); it never *strengthens* an already-relaxed PFS.
    fn effective(&self, flags: OpenFlags) -> SemanticsModel {
        if flags.lazy && self.cfg.semantics == SemanticsModel::Strong {
            SemanticsModel::Commit
        } else {
            self.cfg.semantics
        }
    }

    // ------------------------------------------------------------------
    // Open / close
    // ------------------------------------------------------------------

    /// POSIX `open(2)`. Under session semantics a read-capable open
    /// snapshots the currently published image (close-to-open: the reader
    /// sees exactly the sessions closed before this open).
    pub fn open(&mut self, path: &str, flags: OpenFlags, now: u64) -> FsResult<u32> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.opens += 1;
        let existing = st.ns.lookup(&path);
        let file = match existing {
            Some(crate::namespace::Node::File(id)) => {
                if flags.create && flags.excl {
                    return Err(FsError::AlreadyExists { path });
                }
                id
            }
            Some(crate::namespace::Node::Dir) => {
                return Err(FsError::NotAFile { path });
            }
            None => {
                if !flags.create {
                    return Err(FsError::NotFound { path });
                }
                let id = st.alloc_file();
                st.ns.create_file(&path, id)?;
                id
            }
        };
        if st.file(file).laminated && flags.write {
            return Err(FsError::Denied {
                detail: format!("{path} is laminated (read-only)"),
            });
        }
        if flags.truncate && flags.write {
            let node = st.file_mut(file);
            Arc::make_mut(&mut node.published).truncate(0);
            node.publish_version += 1;
            // Buffered state from earlier sessions is discarded too.
            node.pending.clear();
            node.delayed.clear();
        }
        if self.cfg.semantics == SemanticsModel::Eventual {
            engine::mature_delayed(&mut st, &self.cfg, file, now);
        }
        let snapshot = if self.cfg.semantics == SemanticsModel::Session {
            Some(Arc::clone(&st.file(file).published))
        } else {
            None
        };
        drop(st);
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(
            fd,
            FdEntry {
                file,
                path,
                flags,
                cursor: 0,
                snapshot,
            },
        );
        Ok(fd)
    }

    /// POSIX `close(2)`. Under commit and session semantics this publishes
    /// the process's buffered writes to the file (a close is a commit; a
    /// close is the end of a session).
    pub fn close(&mut self, fd: u32, _now: u64) -> FsResult<()> {
        let entry = self.fds.remove(&fd).ok_or(FsError::BadFd { fd })?;
        let mut st = lock_state(&self.state);
        st.stats.closes += 1;
        match self.effective(entry.flags) {
            SemanticsModel::Commit | SemanticsModel::Session => {
                engine::publish_client(&mut st, &self.cfg, entry.file, self.client_id);
            }
            SemanticsModel::Strong | SemanticsModel::Eventual => {}
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data operations
    // ------------------------------------------------------------------

    /// POSIX `write(2)`: writes at the cursor (or at EOF under `O_APPEND`)
    /// and advances the cursor.
    pub fn write(&mut self, fd: u32, data: &[u8], now: u64) -> FsResult<WriteOut> {
        let rank = self.rank;
        let client_id = self.client_id;
        let cfg = self.cfg.clone();
        let entry = self.fds.get_mut(&fd).ok_or(FsError::BadFd { fd })?;
        if !entry.flags.write {
            return Err(FsError::Denied {
                detail: format!("fd {fd} not open for writing"),
            });
        }
        let mut st = lock_state(&self.state);
        if st.file(entry.file).laminated {
            return Err(FsError::Denied {
                detail: format!("{} is laminated", entry.path),
            });
        }
        let model = if entry.flags.lazy && cfg.semantics == SemanticsModel::Strong {
            SemanticsModel::Commit
        } else {
            cfg.semantics
        };
        let offset = if entry.flags.append {
            engine::visible_size(&st, model, entry.file, client_id, entry.snapshot.as_ref())
        } else {
            entry.cursor
        };
        let (tag, locks) = engine::write(
            &mut st,
            &cfg,
            model,
            client_id,
            rank,
            entry.file,
            offset,
            data.to_vec(),
            now,
        );
        drop(st);
        entry.cursor = offset + data.len() as u64;
        Ok(WriteOut {
            offset,
            len: data.len() as u64,
            tag,
            locks,
        })
    }

    /// POSIX `pwrite(2)`: writes at `offset` without moving the cursor
    /// (and, per POSIX, ignoring `O_APPEND`).
    pub fn pwrite(&mut self, fd: u32, offset: u64, data: &[u8], now: u64) -> FsResult<WriteOut> {
        let rank = self.rank;
        let client_id = self.client_id;
        let cfg = self.cfg.clone();
        let entry = self.fds.get(&fd).ok_or(FsError::BadFd { fd })?;
        if !entry.flags.write {
            return Err(FsError::Denied {
                detail: format!("fd {fd} not open for writing"),
            });
        }
        let model = self.effective(entry.flags);
        let file = entry.file;
        let mut st = lock_state(&self.state);
        if st.file(file).laminated {
            return Err(FsError::Denied {
                detail: "laminated".into(),
            });
        }
        let (tag, locks) = engine::write(
            &mut st,
            &cfg,
            model,
            client_id,
            rank,
            file,
            offset,
            data.to_vec(),
            now,
        );
        Ok(WriteOut {
            offset,
            len: data.len() as u64,
            tag,
            locks,
        })
    }

    /// POSIX `read(2)`: reads at the cursor, advances it by the bytes
    /// actually read (short reads at EOF, like POSIX).
    pub fn read(&mut self, fd: u32, len: u64, now: u64) -> FsResult<ReadOut> {
        let offset = self.fd(fd)?.cursor;
        let out = self.read_at(fd, offset, len, now)?;
        self.fd_mut(fd)?.cursor = offset + out.data.len() as u64;
        Ok(out)
    }

    /// POSIX `pread(2)`: reads at `offset` without moving the cursor.
    pub fn pread(&mut self, fd: u32, offset: u64, len: u64, now: u64) -> FsResult<ReadOut> {
        self.read_at(fd, offset, len, now)
    }

    fn read_at(&mut self, fd: u32, offset: u64, len: u64, now: u64) -> FsResult<ReadOut> {
        let client_id = self.client_id;
        let cfg = self.cfg.clone();
        let entry = self.fds.get(&fd).ok_or(FsError::BadFd { fd })?;
        if !entry.flags.read {
            return Err(FsError::Denied {
                detail: format!("fd {fd} not open for reading"),
            });
        }
        let model = self.effective(entry.flags);
        let file = entry.file;
        let snapshot = entry.snapshot.clone();
        let mut st = lock_state(&self.state);
        st.stats.reads += 1;
        if model == SemanticsModel::Strong {
            let locks = if len == 0 {
                0
            } else {
                len.div_ceil(cfg.lock_granularity)
            };
            st.stats.locks_acquired += locks;
            if len > 0 {
                let rev = engine::lock_revocations(&st, file, self.rank, offset, offset + len);
                st.stats.lock_revocations += rev;
            }
        }
        let (data, tags) = engine::read_view(
            &mut st,
            &cfg,
            model,
            client_id,
            file,
            offset,
            len,
            snapshot.as_ref(),
            now,
        );
        st.stats.bytes_read += data.len() as u64;
        let stripe = cfg.stripe_size;
        st.stats
            .stripe_account(offset, data.len() as u64, stripe, false);
        drop(st);
        let digest = digest_runs(data.len() as u64, &tags);
        self.observations.push(Observation {
            op_idx: self.next_obs,
            file,
            offset,
            len,
            digest,
        });
        self.next_obs += 1;
        Ok(ReadOut {
            offset,
            data,
            tags,
            digest,
        })
    }

    /// POSIX `lseek(2)`.
    pub fn lseek(&mut self, fd: u32, offset: i64, whence: Whence, _now: u64) -> FsResult<u64> {
        let client_id = self.client_id;
        let entry = self.fds.get(&fd).ok_or(FsError::BadFd { fd })?;
        let base = match whence {
            Whence::Set => 0,
            Whence::Cur => entry.cursor as i64,
            Whence::End => {
                let model = self.effective(entry.flags);
                let st = lock_state(&self.state);
                engine::visible_size(&st, model, entry.file, client_id, entry.snapshot.as_ref())
                    as i64
            }
        };
        let pos = base + offset;
        if pos < 0 {
            return Err(FsError::Invalid {
                detail: format!("seek to negative offset {pos}"),
            });
        }
        let entry = self.fds.get_mut(&fd).ok_or(FsError::BadFd { fd })?;
        entry.cursor = pos as u64;
        Ok(entry.cursor)
    }

    /// POSIX `fsync(2)`: a *commit* under commit semantics (globally
    /// publishes this process's buffered writes). Under session semantics it
    /// persists but does **not** publish — visibility still requires
    /// close-to-open. Under eventual semantics it does not accelerate
    /// propagation.
    pub fn fsync(&mut self, fd: u32, _now: u64) -> FsResult<()> {
        let entry = self.fd(fd)?;
        let model = self.effective(entry.flags);
        let file = entry.file;
        let lost = std::mem::take(&mut self.lost_flush_armed);
        let mut st = lock_state(&self.state);
        st.stats.commits += 1;
        if model == SemanticsModel::Commit && !lost {
            engine::publish_client(&mut st, &self.cfg, file, self.client_id);
        }
        Ok(())
    }

    /// Arm a one-shot *lost flush* fault: the next fsync/fdatasync returns
    /// success and counts as a commit, but the publish silently never
    /// happens — the canonical "fsync lied" failure the commit-semantics
    /// verdicts must survive. Injected by the fault harness.
    pub fn arm_lost_flush(&mut self) {
        self.lost_flush_armed = true;
    }

    /// Discard every buffered (pending) extent this client owns, across all
    /// files. Called when the owning simulated process fail-stops: a crashed
    /// process's un-published writes can never become visible, exactly as a
    /// real commit/session PFS would lose a client's write-back cache. The
    /// outcome is deterministic — pending data is invisible to other
    /// processes until publish, and a dead owner can no longer publish.
    pub fn discard_pending(&mut self) {
        let mut st = lock_state(&self.state);
        for node in st.files.iter_mut() {
            node.pending.remove(&self.client_id);
        }
    }

    /// POSIX `fdatasync(2)`: same visibility behaviour as [`Self::fsync`].
    pub fn fdatasync(&mut self, fd: u32, now: u64) -> FsResult<()> {
        self.fsync(fd, now)
    }

    /// UnifyFS-style lamination: publish everything (all processes) and
    /// make the file permanently read-only.
    pub fn laminate(&mut self, path: &str, _now: u64) -> FsResult<()> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        let file = st.ns.expect_file(&path)?;
        st.stats.commits += 1;
        engine::mature_delayed(&mut st, &self.cfg, file, u64::MAX);
        let owners: Vec<u64> = st.file(file).pending.keys().copied().collect();
        for o in owners {
            engine::publish_client(&mut st, &self.cfg, file, o);
        }
        st.file_mut(file).laminated = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Metadata operations
    // ------------------------------------------------------------------

    /// POSIX `stat(2)` (also used for `stat64`).
    pub fn stat(&mut self, path: &str, _now: u64) -> FsResult<StatInfo> {
        let path = self.norm(path)?;
        let client_id = self.client_id;
        let cfg = self.cfg.clone();
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Stat);
        match st.ns.lookup(&path) {
            Some(crate::namespace::Node::Dir) => Ok(StatInfo {
                is_dir: true,
                size: 0,
            }),
            Some(crate::namespace::Node::File(id)) => {
                let size = engine::visible_size(&st, cfg.semantics, id, client_id, None);
                Ok(StatInfo {
                    is_dir: false,
                    size,
                })
            }
            None => Err(FsError::NotFound { path }),
        }
    }

    /// POSIX `lstat(2)` — identical to `stat` here (no symlinks), but
    /// counted separately for the metadata census.
    pub fn lstat(&mut self, path: &str, now: u64) -> FsResult<StatInfo> {
        {
            let mut st = lock_state(&self.state);
            st.stats.count_meta(MetaOp::Lstat);
        }
        let out = self.stat(path, now);
        // stat() above also counted a Stat; undo to keep the census honest.
        let mut st = lock_state(&self.state);
        if let Some(c) = st.stats.meta_ops.get_mut(&MetaOp::Stat) {
            *c -= 1;
        }
        out
    }

    /// POSIX `fstat(2)`.
    pub fn fstat(&mut self, fd: u32, _now: u64) -> FsResult<StatInfo> {
        let client_id = self.client_id;
        let entry = self.fds.get(&fd).ok_or(FsError::BadFd { fd })?;
        let model = self.effective(entry.flags);
        let file = entry.file;
        let snapshot = entry.snapshot.clone();
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Fstat);
        let size = engine::visible_size(&st, model, file, client_id, snapshot.as_ref());
        Ok(StatInfo {
            is_dir: false,
            size,
        })
    }

    /// POSIX `access(2)` — existence check.
    pub fn access(&mut self, path: &str, _now: u64) -> FsResult<bool> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Access);
        Ok(st.ns.exists(&path))
    }

    pub fn mkdir(&mut self, path: &str, _now: u64) -> FsResult<()> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Mkdir);
        st.ns.mkdir(&path)
    }

    pub fn rmdir(&mut self, path: &str, _now: u64) -> FsResult<()> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Rmdir);
        st.ns.rmdir(&path)
    }

    pub fn unlink(&mut self, path: &str, _now: u64) -> FsResult<()> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Unlink);
        st.ns.unlink(&path).map(|_| ())
    }

    pub fn rename(&mut self, from: &str, to: &str, _now: u64) -> FsResult<()> {
        let from = self.norm(from)?;
        let to = self.norm(to)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Rename);
        st.ns.rename(&from, &to)
    }

    pub fn getcwd(&mut self, _now: u64) -> String {
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Getcwd);
        self.cwd.clone()
    }

    pub fn chdir(&mut self, path: &str, _now: u64) -> FsResult<()> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Chdir);
        st.ns.expect_dir(&path)?;
        drop(st);
        self.cwd = path;
        Ok(())
    }

    /// `opendir` + N×`readdir` + `closedir`, counted individually for the
    /// metadata census; returns the entries.
    pub fn readdir(&mut self, path: &str, _now: u64) -> FsResult<Vec<DirEntry>> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Opendir);
        let entries = st.ns.list(&path)?;
        for _ in &entries {
            st.stats.count_meta(MetaOp::Readdir);
        }
        st.stats.count_meta(MetaOp::Closedir);
        Ok(entries)
    }

    /// POSIX `truncate(2)`. Truncation acts on the published image
    /// immediately (metadata operations keep strong semantics, per the
    /// paper's scoping in §3) and discards buffered extents beyond the new
    /// length.
    pub fn truncate(&mut self, path: &str, len: u64, _now: u64) -> FsResult<()> {
        let path = self.norm(path)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Truncate);
        let file = st.ns.expect_file(&path)?;
        truncate_node(&mut st, file, len);
        let published = Arc::clone(&st.file(file).published);
        drop(st);
        self.refresh_own_snapshots(file, &published);
        Ok(())
    }

    /// POSIX `ftruncate(2)`.
    pub fn ftruncate(&mut self, fd: u32, len: u64, _now: u64) -> FsResult<()> {
        let entry = self.fd(fd)?;
        let file = entry.file;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Ftruncate);
        truncate_node(&mut st, file, len);
        let published = Arc::clone(&st.file(file).published);
        drop(st);
        self.refresh_own_snapshots(file, &published);
        Ok(())
    }

    /// After this process truncates a file, its *own* session snapshots of
    /// that file are refreshed (a local cache update, as an NFS client would
    /// do). Other processes' open sessions are untouched: close-to-open
    /// still governs cross-process visibility.
    fn refresh_own_snapshots(&mut self, file: FileId, published: &Arc<FileImage>) {
        if self.cfg.semantics != SemanticsModel::Session {
            return;
        }
        for entry in self.fds.values_mut() {
            if entry.file == file && entry.snapshot.is_some() {
                entry.snapshot = Some(Arc::clone(published));
            }
        }
    }

    /// POSIX `dup(2)`. Deviation from POSIX: the duplicate gets an
    /// independent cursor (a shared open-file description is not modelled);
    /// none of the studied applications relies on cursor sharing.
    pub fn dup(&mut self, fd: u32, _now: u64) -> FsResult<u32> {
        let entry = self.fd(fd)?.clone();
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Dup);
        drop(st);
        let new_fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(new_fd, entry);
        Ok(new_fd)
    }

    /// POSIX `fcntl(2)` — counted no-op (the studied applications use it
    /// only for flag queries).
    pub fn fcntl(&mut self, fd: u32, _now: u64) -> FsResult<()> {
        self.fd(fd)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Fcntl);
        Ok(())
    }

    /// `umask` — counted no-op.
    pub fn umask(&mut self, _mask: u32, _now: u64) {
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Umask);
    }

    /// `fileno` — counted no-op (stdio fd query).
    pub fn fileno(&mut self, fd: u32, _now: u64) -> FsResult<u32> {
        self.fd(fd)?;
        let mut st = lock_state(&self.state);
        st.stats.count_meta(MetaOp::Fileno);
        Ok(fd)
    }

    /// `mmap` of a file region, modelled as a counted read without cursor
    /// movement (LBANN-style dataset mapping).
    pub fn mmap(&mut self, fd: u32, offset: u64, len: u64, now: u64) -> FsResult<ReadOut> {
        {
            let mut st = lock_state(&self.state);
            st.stats.count_meta(MetaOp::Mmap);
        }
        self.read_at(fd, offset, len, now)
    }

    /// `msync`: counted, with the visibility effect of `fsync`.
    pub fn msync(&mut self, fd: u32, now: u64) -> FsResult<()> {
        {
            let mut st = lock_state(&self.state);
            st.stats.count_meta(MetaOp::Msync);
        }
        self.fsync(fd, now)
    }

    /// Count a metadata op that has no modelled behaviour (chmod, chown,
    /// utime, …) so library models can still emit it for the census.
    pub fn count_meta(&mut self, op: MetaOp) {
        let mut st = lock_state(&self.state);
        st.stats.count_meta(op);
    }

    /// Open fds (diagnostics; a well-behaved app closes everything).
    pub fn open_fds(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.fds.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The current cursor of `fd` (testing aid).
    pub fn cursor(&self, fd: u32) -> FsResult<u64> {
        Ok(self.fd(fd)?.cursor)
    }

    /// The file identity behind `fd` (testing / tracing aid).
    pub fn fd_file(&self, fd: u32) -> FsResult<FileId> {
        Ok(self.fd(fd)?.file)
    }

    /// The normalized path behind `fd`.
    pub fn fd_path(&self, fd: u32) -> FsResult<&str> {
        Ok(&self.fd(fd)?.path)
    }
}

fn truncate_node(st: &mut PfsState, file: FileId, len: u64) {
    let node = st.file_mut(file);
    Arc::make_mut(&mut node.published).truncate(len);
    node.publish_version += 1;
    for extents in node.pending.values_mut() {
        extents.retain_mut(|e| {
            if e.off >= len {
                return false;
            }
            let keep = (len - e.off).min(e.data.len() as u64) as usize;
            e.data.truncate(keep);
            !e.data.is_empty()
        });
    }
    let delayed = std::mem::take(&mut node.delayed);
    node.delayed = delayed
        .into_iter()
        .filter_map(|mut e| {
            if e.off >= len {
                return None;
            }
            let keep = (len - e.off).min(e.data.len() as u64) as usize;
            e.data.truncate(keep);
            if e.data.is_empty() {
                None
            } else {
                Some(e)
            }
        })
        .collect();
}

/// FNV-1a digest over a read's length and provenance runs.
fn digest_runs(len: u64, runs: &[TagRun]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(len);
    for r in runs {
        mix(r.len);
        match r.tag {
            Some(t) => {
                mix(t.rank as u64 + 1);
                mix(t.seq + 1);
            }
            None => mix(0),
        }
    }
    h
}
