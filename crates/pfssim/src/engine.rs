//! The consistency engines: what a write does, what a read sees, and when
//! buffered data becomes globally visible under each of the paper's four
//! semantics categories (§3).

use std::sync::Arc;

use crate::config::{PfsConfig, SemanticsModel};
use crate::image::FileImage;
use crate::state::{DelayedExtent, FileId, PendingExtent, PfsState};
use crate::tag::{SegMap, TagRun, WriteTag};

/// Record a write of `data` at `off` by `rank` at simulated time `now`.
/// Returns `(tag, locks_acquired)`.
#[allow(clippy::too_many_arguments)] // explicit engine inputs beat a param struct here
pub(crate) fn write(
    st: &mut PfsState,
    cfg: &PfsConfig,
    model: SemanticsModel,
    client: u64,
    rank: u32,
    file: FileId,
    off: u64,
    data: Vec<u8>,
    now: u64,
) -> (WriteTag, u64) {
    let seq_slot = st.next_write_seq.entry(rank).or_insert(0);
    let seq = *seq_slot;
    *seq_slot += 1;
    let tag = WriteTag { rank, seq };
    let len = data.len() as u64;
    st.stats.writes += 1;
    st.stats.bytes_written += len;

    match model {
        SemanticsModel::Strong => {
            // Extent locks on the lock manager, then apply globally. Any
            // overlap with an extent whose write lock a *different* rank
            // holds costs a revocation callback first.
            let locks = if len == 0 {
                0
            } else {
                len.div_ceil(cfg.lock_granularity)
            };
            st.stats.locks_acquired += locks;
            if len > 0 {
                let revocations = lock_revocations(st, file, rank, off, off + len);
                st.stats.lock_revocations += revocations;
                let node = st.file_mut(file);
                node.write_locks
                    .insert(off, off + len, WriteTag { rank, seq: 0 });
            }
            st.stats.stripe_account(off, len, cfg.stripe_size, true);
            let node = st.file_mut(file);
            Arc::make_mut(&mut node.published).apply(off, &data, tag);
            node.publish_version += 1;
            (tag, locks)
        }
        SemanticsModel::Commit | SemanticsModel::Session => {
            let node = st.file_mut(file);
            node.pending
                .entry(client)
                .or_default()
                .push(PendingExtent { off, data, tag });
            st.stats.pending_extents += 1;
            (tag, 0)
        }
        SemanticsModel::Eventual => {
            let node = st.file_mut(file);
            node.delayed.push_back(DelayedExtent {
                mature_at: now + cfg.eventual_delay_ns,
                owner: client,
                off,
                data,
                tag,
            });
            st.stats.pending_extents += 1;
            (tag, 0)
        }
    }
}

/// Count the foreign write-lock runs overlapping `[start, end)` on `file`
/// — each is a revocation the lock manager must perform before `rank` can
/// take its own lock.
pub(crate) fn lock_revocations(
    st: &PfsState,
    file: FileId,
    rank: u32,
    start: u64,
    end: u64,
) -> u64 {
    st.file(file)
        .write_locks
        .query(start, end)
        .iter()
        .filter(|run| matches!(run.tag, Some(t) if t.rank != rank))
        .count() as u64
}

/// Publish every pending extent of `rank` on `file`, in write order —
/// the effect of a commit (commit semantics) or a close (session
/// semantics). With `same_process_ordering` disabled (the BurstFS anomaly),
/// the extents are applied in *reverse* order, so a read following two
/// same-process writes to the same bytes can observe the older one.
pub(crate) fn publish_client(st: &mut PfsState, cfg: &PfsConfig, file: FileId, client: u64) {
    let node = st.file_mut(file);
    let Some(mut extents) = node.pending.remove(&client) else {
        return;
    };
    if !cfg.same_process_ordering {
        extents.reverse();
    }
    let n = extents.len() as u64;
    let img = Arc::make_mut(&mut node.published);
    let mut stripe_acct = Vec::new();
    for e in &extents {
        img.apply(e.off, &e.data, e.tag);
        stripe_acct.push((e.off, e.data.len() as u64));
    }
    node.publish_version += 1;
    st.stats.publishes += n;
    st.stats.pending_extents = st.stats.pending_extents.saturating_sub(n);
    for (off, len) in stripe_acct {
        st.stats.stripe_account(off, len, cfg.stripe_size, true);
    }
}

/// Apply every delayed (eventual-semantics) extent whose propagation delay
/// has elapsed by `now`, in global write order.
pub(crate) fn mature_delayed(st: &mut PfsState, cfg: &PfsConfig, file: FileId, now: u64) {
    let node = st.file_mut(file);
    if node.delayed.is_empty() {
        return;
    }
    let mut published = 0u64;
    let mut stripe_acct = Vec::new();
    while let Some(front) = node.delayed.front() {
        if front.mature_at > now {
            break;
        }
        let e = node.delayed.pop_front().expect("front exists");
        let img = Arc::make_mut(&mut node.published);
        img.apply(e.off, &e.data, e.tag);
        stripe_acct.push((e.off, e.data.len() as u64));
        published += 1;
    }
    if published > 0 {
        node.publish_version += 1;
        st.stats.publishes += published;
        st.stats.pending_extents = st.stats.pending_extents.saturating_sub(published);
        for (off, len) in stripe_acct {
            st.stats.stripe_account(off, len, cfg.stripe_size, true);
        }
    }
}

/// Owned copy of the not-yet-visible extents of `rank` on `file`, in write
/// order — the overlay that gives every engine read-your-writes.
fn collect_own(
    st: &PfsState,
    model: SemanticsModel,
    file: FileId,
    client: u64,
) -> Vec<(u64, Vec<u8>, WriteTag)> {
    let node = st.file(file);
    match model {
        SemanticsModel::Strong => Vec::new(),
        SemanticsModel::Commit | SemanticsModel::Session => node
            .pending
            .get(&client)
            .map(|v| v.iter().map(|e| (e.off, e.data.clone(), e.tag)).collect())
            .unwrap_or_default(),
        SemanticsModel::Eventual => node
            .delayed
            .iter()
            .filter(|d| d.owner == client)
            .map(|d| (d.off, d.data.clone(), d.tag))
            .collect(),
    }
}

/// The size of `file` as visible to `rank`: the base image (published, or
/// the session snapshot if one is given) extended by the rank's own
/// buffered writes.
pub(crate) fn visible_size(
    st: &PfsState,
    model: SemanticsModel,
    file: FileId,
    client: u64,
    snapshot: Option<&Arc<FileImage>>,
) -> u64 {
    let base = match (model, snapshot) {
        (SemanticsModel::Session, Some(s)) => s.size(),
        _ => st.file(file).published.size(),
    };
    let own_max = collect_own(st, model, file, client)
        .iter()
        .map(|(off, data, _)| off + data.len() as u64)
        .max()
        .unwrap_or(0);
    base.max(own_max)
}

/// What `rank` sees when reading `[off, off+len)` of `file`:
/// `(bytes, provenance runs)`. The base image depends on the engine
/// (published for strong/commit/eventual, the open-time snapshot for
/// session); the rank's own buffered writes are overlaid in write order so
/// every engine is read-your-writes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn read_view(
    st: &mut PfsState,
    cfg: &PfsConfig,
    model: SemanticsModel,
    client: u64,
    file: FileId,
    off: u64,
    len: u64,
    snapshot: Option<&Arc<FileImage>>,
    now: u64,
) -> (Vec<u8>, Vec<TagRun>) {
    if model == SemanticsModel::Eventual {
        mature_delayed(st, cfg, file, now);
    }
    let vsize = visible_size(st, model, file, client, snapshot);
    if off >= vsize || len == 0 {
        return (Vec::new(), Vec::new());
    }
    let end = (off + len).min(vsize);
    let want = end - off;

    let node = st.file(file);
    let base: &FileImage = match (model, snapshot) {
        (SemanticsModel::Session, Some(s)) => s,
        _ => &node.published,
    };

    // Base bytes and provenance, zero-extended to the visible range.
    let mut bytes = base.read(off, want);
    bytes.resize(want as usize, 0);
    let mut tags = SegMap::new();
    let mut pos = off;
    for run in base.provenance(off, want) {
        if let Some(t) = run.tag {
            tags.insert(pos, pos + run.len, t);
        }
        pos += run.len;
    }

    // Overlay own buffered writes, in order.
    for (eoff, data, tag) in collect_own(st, model, file, client) {
        let eend = eoff + data.len() as u64;
        let lo = eoff.max(off);
        let hi = eend.min(end);
        if lo >= hi {
            continue;
        }
        let src = &data[(lo - eoff) as usize..(hi - eoff) as usize];
        bytes[(lo - off) as usize..(hi - off) as usize].copy_from_slice(src);
        tags.insert(lo, hi, tag);
    }

    // Render the tag map into runs covering [off, end).
    let runs = tags.query(off, end);
    (bytes, runs)
}
