//! File system error type.

use std::fmt;

pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by the simulated file system. These mirror the errno
/// values a real PFS client would surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT — path or parent directory does not exist.
    NotFound {
        path: String,
    },
    /// EEXIST — `O_CREAT | O_EXCL` on an existing file, or mkdir on an
    /// existing path.
    AlreadyExists {
        path: String,
    },
    /// EBADF — file descriptor not open (or opened without the needed mode).
    BadFd {
        fd: u32,
    },
    /// EISDIR / ENOTDIR — wrong node kind for the operation.
    NotAFile {
        path: String,
    },
    NotADirectory {
        path: String,
    },
    /// ENOTEMPTY — rmdir on a non-empty directory.
    NotEmpty {
        path: String,
    },
    /// EACCES — operation not permitted by the open mode (e.g. write on a
    /// read-only fd) or on a laminated (read-only) file.
    Denied {
        detail: String,
    },
    /// EINVAL — malformed argument (negative seek, bad path, …).
    Invalid {
        detail: String,
    },
    /// EINTR — the call was interrupted and can be retried (injected
    /// transient fault; real clients see this on signal delivery).
    Interrupted {
        detail: String,
    },
    /// EIO — a low-level I/O error, possibly transient (injected fault;
    /// stands in for a dropped RPC or a flaky OST).
    IoError {
        detail: String,
    },
    /// ENOSPC — no space left on device (injected fault; usually clears
    /// when another job frees quota, so retries are plausible).
    NoSpace {
        detail: String,
    },
}

impl FsError {
    /// Whether a caller may reasonably retry the failed operation.
    /// Injected transient faults are retryable; semantic errors (bad fd,
    /// missing path, permission) are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FsError::Interrupted { .. } | FsError::IoError { .. } | FsError::NoSpace { .. }
        )
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { path } => write!(f, "ENOENT: {path}"),
            FsError::AlreadyExists { path } => write!(f, "EEXIST: {path}"),
            FsError::BadFd { fd } => write!(f, "EBADF: fd {fd}"),
            FsError::NotAFile { path } => write!(f, "EISDIR: {path}"),
            FsError::NotADirectory { path } => write!(f, "ENOTDIR: {path}"),
            FsError::NotEmpty { path } => write!(f, "ENOTEMPTY: {path}"),
            FsError::Denied { detail } => write!(f, "EACCES: {detail}"),
            FsError::Invalid { detail } => write!(f, "EINVAL: {detail}"),
            FsError::Interrupted { detail } => write!(f, "EINTR: {detail}"),
            FsError::IoError { detail } => write!(f, "EIO: {detail}"),
            FsError::NoSpace { detail } => write!(f, "ENOSPC: {detail}"),
        }
    }
}

impl std::error::Error for FsError {}
