//! The file-system namespace: a flat map of normalized absolute paths.
//!
//! The metadata server of a PFS owns the namespace; here it is a single
//! ordered map, which also makes directory listing a range scan. Paths are
//! normalized to `/a/b/c` form (no trailing slash, no `.`/`..`).

use std::collections::BTreeMap;

use crate::error::{FsError, FsResult};
use crate::state::FileId;

/// One entry returned by `readdir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    pub name: String,
    pub is_dir: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Node {
    Dir,
    File(FileId),
}

#[derive(Debug, Default)]
pub(crate) struct Namespace {
    nodes: BTreeMap<String, Node>,
}

/// Normalize `path` to an absolute `/a/b` form. Relative paths are resolved
/// against `cwd`.
pub(crate) fn normalize(cwd: &str, path: &str) -> FsResult<String> {
    if path.is_empty() {
        return Err(FsError::Invalid {
            detail: "empty path".into(),
        });
    }
    let joined = if path.starts_with('/') {
        path.to_string()
    } else {
        format!("{}/{}", cwd.trim_end_matches('/'), path)
    };
    let mut parts: Vec<&str> = Vec::new();
    for comp in joined.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    Ok(format!("/{}", parts.join("/")))
}

/// The parent directory of a normalized path (`/` for top-level entries).
pub(crate) fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

impl Namespace {
    pub fn new() -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_string(), Node::Dir);
        Namespace { nodes }
    }

    pub fn lookup(&self, path: &str) -> Option<Node> {
        self.nodes.get(path).copied()
    }

    pub fn expect_dir(&self, path: &str) -> FsResult<()> {
        match self.lookup(path) {
            Some(Node::Dir) => Ok(()),
            Some(Node::File(_)) => Err(FsError::NotADirectory { path: path.into() }),
            None => Err(FsError::NotFound { path: path.into() }),
        }
    }

    pub fn expect_file(&self, path: &str) -> FsResult<FileId> {
        match self.lookup(path) {
            Some(Node::File(id)) => Ok(id),
            Some(Node::Dir) => Err(FsError::NotAFile { path: path.into() }),
            None => Err(FsError::NotFound { path: path.into() }),
        }
    }

    /// Bind `path` to a file, checking the parent exists.
    pub fn create_file(&mut self, path: &str, id: FileId) -> FsResult<()> {
        self.expect_dir(&parent_of(path))?;
        if self.nodes.contains_key(path) {
            return Err(FsError::AlreadyExists { path: path.into() });
        }
        self.nodes.insert(path.to_string(), Node::File(id));
        Ok(())
    }

    pub fn mkdir(&mut self, path: &str) -> FsResult<()> {
        if path == "/" {
            return Err(FsError::AlreadyExists { path: path.into() });
        }
        self.expect_dir(&parent_of(path))?;
        if self.nodes.contains_key(path) {
            return Err(FsError::AlreadyExists { path: path.into() });
        }
        self.nodes.insert(path.to_string(), Node::Dir);
        Ok(())
    }

    fn children<'a>(&'a self, dir: &'a str) -> impl Iterator<Item = (&'a String, &'a Node)> + 'a {
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        let plen = prefix.len();
        self.nodes
            .range(prefix.clone()..)
            .take_while(move |(k, _)| k.starts_with(&prefix))
            .filter(move |(k, _)| k.len() > plen && !k[plen..].contains('/'))
    }

    pub fn rmdir(&mut self, path: &str) -> FsResult<()> {
        self.expect_dir(path)?;
        if path == "/" {
            return Err(FsError::Denied {
                detail: "cannot remove /".into(),
            });
        }
        if self.children(path).next().is_some() {
            return Err(FsError::NotEmpty { path: path.into() });
        }
        self.nodes.remove(path);
        Ok(())
    }

    /// Unlink a file binding; the file's data lives until the caller drops
    /// it (inode table keeps it, like an open-unlinked POSIX file).
    pub fn unlink(&mut self, path: &str) -> FsResult<FileId> {
        let id = self.expect_file(path)?;
        self.nodes.remove(path);
        Ok(id)
    }

    /// Rename a file (directories are not movable in this model).
    pub fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let id = self.expect_file(from)?;
        self.expect_dir(&parent_of(to))?;
        if let Some(Node::Dir) = self.lookup(to) {
            return Err(FsError::NotAFile { path: to.into() });
        }
        self.nodes.remove(from);
        self.nodes.insert(to.to_string(), Node::File(id));
        Ok(())
    }

    pub fn list(&self, dir: &str) -> FsResult<Vec<DirEntry>> {
        self.expect_dir(dir)?;
        let prefix_len = if dir == "/" { 1 } else { dir.len() + 1 };
        Ok(self
            .children(dir)
            .map(|(k, n)| DirEntry {
                name: k[prefix_len..].to_string(),
                is_dir: matches!(n, Node::Dir),
            })
            .collect())
    }

    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/", "/a/b").unwrap(), "/a/b");
        assert_eq!(normalize("/", "a/b/").unwrap(), "/a/b");
        assert_eq!(normalize("/x", "y").unwrap(), "/x/y");
        assert_eq!(normalize("/x", "./y/../z").unwrap(), "/x/z");
        assert_eq!(normalize("/", "/").unwrap(), "/");
        assert!(normalize("/", "").is_err());
    }

    #[test]
    fn parent_computation() {
        assert_eq!(parent_of("/a/b"), "/a");
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(parent_of("/"), "/");
    }

    #[test]
    fn create_requires_parent() {
        let mut ns = Namespace::new();
        assert!(matches!(
            ns.create_file("/d/f", FileId(0)),
            Err(FsError::NotFound { .. })
        ));
        ns.mkdir("/d").unwrap();
        ns.create_file("/d/f", FileId(0)).unwrap();
        assert!(matches!(
            ns.create_file("/d/f", FileId(1)),
            Err(FsError::AlreadyExists { .. })
        ));
    }

    #[test]
    fn rmdir_refuses_nonempty() {
        let mut ns = Namespace::new();
        ns.mkdir("/d").unwrap();
        ns.create_file("/d/f", FileId(0)).unwrap();
        assert!(matches!(ns.rmdir("/d"), Err(FsError::NotEmpty { .. })));
        ns.unlink("/d/f").unwrap();
        ns.rmdir("/d").unwrap();
        assert!(!ns.exists("/d"));
    }

    #[test]
    fn listing_is_immediate_children_only() {
        let mut ns = Namespace::new();
        ns.mkdir("/d").unwrap();
        ns.mkdir("/d/sub").unwrap();
        ns.create_file("/d/f", FileId(0)).unwrap();
        ns.create_file("/d/sub/g", FileId(1)).unwrap();
        let mut names: Vec<String> = ns.list("/d").unwrap().into_iter().map(|e| e.name).collect();
        names.sort();
        assert_eq!(names, vec!["f", "sub"]);
        let root: Vec<String> = ns.list("/").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(root, vec!["d"]);
    }

    #[test]
    fn rename_moves_binding() {
        let mut ns = Namespace::new();
        ns.create_file("/a", FileId(7)).unwrap();
        ns.rename("/a", "/b").unwrap();
        assert!(!ns.exists("/a"));
        assert_eq!(ns.expect_file("/b").unwrap(), FileId(7));
    }
}
