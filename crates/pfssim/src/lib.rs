//! # pfssim — a parallel file system simulator with pluggable consistency
//!
//! The paper's applications ran on Lustre (strong POSIX consistency) and the
//! analysis *predicts* which of them would still be correct on PFSs with
//! commit, session, or eventual consistency (§3). This crate substitutes a
//! simulated PFS so those predictions can be both *generated* (it produces
//! POSIX-level operations with correct offset/flag semantics for tracing)
//! and *tested* (each run can execute under any of the four consistency
//! engines, and per-byte write provenance makes stale reads observable).
//!
//! ## Consistency engines (§3 of the paper)
//!
//! * [`SemanticsModel::Strong`] — writes are globally visible on return
//!   (sequential consistency under the happens-before order); every data
//!   operation passes through the extent lock manager, whose traffic
//!   statistics feed the motivation benchmarks.
//! * [`SemanticsModel::Commit`] — writes are buffered per process and become
//!   globally visible when the writer *commits* (`fsync`, `fdatasync`,
//!   `close`, or `laminate`) — the UnifyFS/BurstFS/SymphonyFS model.
//! * [`SemanticsModel::Session`] — writes become visible to processes that
//!   `open` the file *after* the writer `close`d it (close-to-open, the
//!   NFS/Gfarm-BB/IME model). `fsync` persists but does not publish.
//! * [`SemanticsModel::Eventual`] — writes propagate after a configurable
//!   delay regardless of commits (the PLFS/echofs model).
//!
//! Every engine provides read-your-writes for a single process (the paper
//! notes BurstFS as the lone exception).
//!
//! ## Provenance
//!
//! Every written byte carries a [`WriteTag`] (writer rank + global write
//! sequence number). Reads can return the tags they observed, and every
//! client keeps an *observation log*; running the identical deterministic
//! program under two engines and diffing the logs reveals exactly which
//! reads returned stale data — the experiment behind the report's
//! `semantics-matrix`.

mod client;
mod config;
mod engine;
mod error;
mod flags;
mod image;
mod namespace;
mod state;
mod stats;
mod tag;

pub use client::{Observation, PfsClient, ReadOut, StatInfo, WriteOut};
pub use config::{PfsConfig, SemanticsModel};
pub use error::{FsError, FsResult};
pub use flags::{OpenFlags, Whence};
pub use image::FileImage;
pub use namespace::DirEntry;
pub use state::{FileId, Pfs};
pub use stats::{MetaOp, PfsStats};
pub use tag::{SegMap, TagRun, WriteTag};
