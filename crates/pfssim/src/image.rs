//! The immutable file image: contents plus per-byte provenance.
//!
//! Published file state is an [`FileImage`] behind an `Arc`. Session-semantics
//! opens snapshot the `Arc` (O(1)); publishing clones on write via
//! `Arc::make_mut`, so snapshot holders keep their view while the published
//! image moves on — copy-on-publish.

use crate::tag::{SegMap, TagRun, WriteTag};

/// A consistent point-in-time view of one file: contents, provenance, and
/// size. Holes (never-written bytes within the size) read as zeros with
/// `None` provenance, like a sparse POSIX file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileImage {
    data: Vec<u8>,
    tags: SegMap,
    size: u64,
}

impl FileImage {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn size(&self) -> u64 {
        self.size
    }

    /// Apply one write extent.
    pub fn apply(&mut self, offset: u64, bytes: &[u8], tag: WriteTag) {
        if bytes.is_empty() {
            return;
        }
        let end = offset + bytes.len() as u64;
        if self.data.len() < end as usize {
            self.data.resize(end as usize, 0);
        }
        self.data[offset as usize..end as usize].copy_from_slice(bytes);
        self.tags.insert(offset, end, tag);
        self.size = self.size.max(end);
    }

    /// Read `[offset, offset+len)`, clamped to the current size. Bytes
    /// beyond EOF are not returned (short read), matching POSIX.
    pub fn read(&self, offset: u64, len: u64) -> Vec<u8> {
        if offset >= self.size {
            return Vec::new();
        }
        let end = (offset + len).min(self.size);
        let mut out = vec![0u8; (end - offset) as usize];
        let avail = self.data.len() as u64;
        if offset < avail {
            let copy_end = end.min(avail);
            out[..(copy_end - offset) as usize]
                .copy_from_slice(&self.data[offset as usize..copy_end as usize]);
        }
        out
    }

    /// Provenance of `[offset, offset+len)` clamped to size.
    pub fn provenance(&self, offset: u64, len: u64) -> Vec<TagRun> {
        if offset >= self.size {
            return Vec::new();
        }
        let end = (offset + len).min(self.size);
        self.tags.query(offset, end)
    }

    /// Provenance digest over the clamped range (see [`SegMap::digest`]).
    pub fn digest(&self, offset: u64, len: u64) -> u64 {
        if offset >= self.size {
            return SegMap::new().digest(0, 0) ^ 0x5a5a;
        }
        let end = (offset + len).min(self.size);
        self.tags.digest(offset, end)
    }

    /// Truncate (or extend with a hole) to `len`.
    pub fn truncate(&mut self, len: u64) {
        if len < self.size {
            self.data.truncate(len as usize);
            // Re-insert a dummy query barrier: easiest correct approach is
            // rebuilding the tag map restricted to [0, len).
            let mut tags = SegMap::new();
            for (s, e, t) in self.tags.iter() {
                if s < len {
                    tags.insert(s, e.min(len), t);
                }
            }
            self.tags = tags;
        }
        self.size = len;
    }

    pub fn tag_segments(&self) -> usize {
        self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(rank: u32, seq: u64) -> WriteTag {
        WriteTag { rank, seq }
    }

    #[test]
    fn write_then_read_back() {
        let mut f = FileImage::new();
        f.apply(10, b"hello", tag(0, 1));
        assert_eq!(f.size(), 15);
        assert_eq!(f.read(10, 5), b"hello");
        // Hole before the write reads as zeros.
        assert_eq!(f.read(0, 10), vec![0u8; 10]);
    }

    #[test]
    fn short_read_at_eof() {
        let mut f = FileImage::new();
        f.apply(0, b"abc", tag(0, 1));
        assert_eq!(f.read(1, 100), b"bc");
        assert_eq!(f.read(3, 10), b"");
        assert_eq!(f.read(100, 10), b"");
    }

    #[test]
    fn provenance_tracks_overwrites() {
        let mut f = FileImage::new();
        f.apply(0, &[1; 10], tag(1, 1));
        f.apply(5, &[2; 10], tag(2, 2));
        let runs = f.provenance(0, 15);
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            TagRun {
                len: 5,
                tag: Some(tag(1, 1))
            }
        );
        assert_eq!(
            runs[1],
            TagRun {
                len: 10,
                tag: Some(tag(2, 2))
            }
        );
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut f = FileImage::new();
        f.apply(0, &[7; 20], tag(0, 1));
        f.truncate(5);
        assert_eq!(f.size(), 5);
        assert_eq!(f.read(0, 20), vec![7; 5]);
        assert!(f.provenance(0, 20).iter().all(|r| r.len <= 5));
        f.truncate(10);
        assert_eq!(f.size(), 10);
        assert_eq!(f.read(0, 10), [vec![7; 5], vec![0; 5]].concat());
    }

    #[test]
    fn digest_distinguishes_writers() {
        let mut a = FileImage::new();
        a.apply(0, b"xxxx", tag(1, 10));
        let mut b = FileImage::new();
        b.apply(0, b"xxxx", tag(2, 11));
        assert_ne!(a.digest(0, 4), b.digest(0, 4));
    }
}
