//! Global PFS state: the inode table, pending-write buffers, and the
//! top-level [`Pfs`] handle.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use std::sync::Mutex;

use crate::client::PfsClient;
use crate::config::{PfsConfig, SemanticsModel};
use crate::error::FsResult;
use crate::image::FileImage;
use crate::namespace::Namespace;
use crate::stats::PfsStats;
use crate::tag::WriteTag;

/// Opaque file identity (inode number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub(crate) u32);

impl FileId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A buffered write that is not yet globally visible.
#[derive(Debug, Clone)]
pub(crate) struct PendingExtent {
    pub off: u64,
    pub data: Vec<u8>,
    pub tag: WriteTag,
}

/// An eventual-semantics write waiting out its propagation delay.
#[derive(Debug, Clone)]
pub(crate) struct DelayedExtent {
    pub mature_at: u64,
    /// Owning client instance (see `PfsState::next_client_id`).
    pub owner: u64,
    pub off: u64,
    pub data: Vec<u8>,
    pub tag: WriteTag,
}

/// One file's server-side state.
#[derive(Debug)]
pub(crate) struct FileNode {
    /// The globally visible image. `Arc` so session opens can snapshot it
    /// in O(1); publishing clones on demand (`Arc::make_mut`).
    pub published: Arc<FileImage>,
    /// Bumped on every publish; session opens record it (diagnostics).
    pub publish_version: u64,
    /// Laminated (UnifyFS): permanently read-only.
    pub laminated: bool,
    /// Buffered writes per *client instance* (commit / session engines),
    /// in write order. Keyed by client id, not rank: two jobs of a
    /// workflow may reuse rank numbers, and one job's buffered writes must
    /// not become another process's "own" data.
    pub pending: HashMap<u64, Vec<PendingExtent>>,
    /// Delay queue (eventual engine), FIFO in global write order.
    pub delayed: VecDeque<DelayedExtent>,
    /// Strong engine only: which rank last held the write lock on each
    /// extent (rank stands in for the client node, as Lustre grants locks
    /// per client). Used to count revocations.
    pub write_locks: crate::tag::SegMap,
}

impl FileNode {
    pub fn new() -> Self {
        FileNode {
            published: Arc::new(FileImage::new()),
            publish_version: 0,
            laminated: false,
            pending: HashMap::new(),
            delayed: VecDeque::new(),
            write_locks: crate::tag::SegMap::new(),
        }
    }
}

pub(crate) struct PfsState {
    pub files: Vec<FileNode>,
    pub ns: Namespace,
    pub stats: PfsStats,
    /// Per-rank write sequence counters. Per-rank (not global) so that a
    /// write's tag depends only on the issuing rank's program order —
    /// identical logical writes get identical tags regardless of how the
    /// scheduler interleaved the engines' differing latencies.
    pub next_write_seq: std::collections::HashMap<u32, u64>,
    /// Client-instance id allocator (a POSIX process identity: every
    /// `Pfs::client` call creates a new one).
    pub next_client_id: u64,
}

/// Poison-tolerant lock acquisition. A simulated rank that fail-stops
/// (controlled unwind) may hold this lock's poison flag; the shared state
/// itself is still consistent — every mutation completes before the guard
/// drops — so survivors keep going instead of cascading panics.
pub(crate) fn lock_state(m: &Mutex<PfsState>) -> std::sync::MutexGuard<'_, PfsState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl PfsState {
    pub fn file(&self, id: FileId) -> &FileNode {
        &self.files[id.index()]
    }

    pub fn file_mut(&mut self, id: FileId) -> &mut FileNode {
        &mut self.files[id.index()]
    }

    pub fn alloc_file(&mut self) -> FileId {
        self.files.push(FileNode::new());
        FileId((self.files.len() - 1) as u32)
    }
}

/// A simulated parallel file system instance. Cheap to clone handles from
/// ([`Pfs::client`]); all state is shared — cloning the `Pfs` itself
/// yields another handle to the *same* file system (jobs of a workflow
/// share one instance).
pub struct Pfs {
    pub(crate) state: Arc<Mutex<PfsState>>,
    pub(crate) cfg: PfsConfig,
}

impl Clone for Pfs {
    fn clone(&self) -> Self {
        Pfs {
            state: Arc::clone(&self.state),
            cfg: self.cfg.clone(),
        }
    }
}

impl Pfs {
    pub fn new(cfg: PfsConfig) -> Self {
        let stats = PfsStats::new(cfg.data_servers);
        Pfs {
            state: Arc::new(Mutex::new(PfsState {
                files: Vec::new(),
                ns: Namespace::new(),
                stats,
                next_write_seq: HashMap::new(),
                next_client_id: 0,
            })),
            cfg,
        }
    }

    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    pub fn semantics(&self) -> SemanticsModel {
        self.cfg.semantics
    }

    /// A client handle for `rank`. Each simulated process owns one.
    pub fn client(&self, rank: u32) -> PfsClient {
        PfsClient::new(Arc::clone(&self.state), self.cfg.clone(), rank)
    }

    /// Snapshot of the server statistics.
    pub fn stats(&self) -> PfsStats {
        lock_state(&self.state).stats.clone()
    }

    /// Force-propagate everything: mature all delayed writes and publish all
    /// pending buffers, in global write order. Used at end of run so the
    /// final on-disk state can be inspected regardless of engine.
    pub fn quiesce(&self) {
        let _span = obs::span("pfssim", "quiesce");
        let mut st = lock_state(&self.state);
        let cfg = self.cfg.clone();
        for idx in 0..st.files.len() {
            crate::engine::mature_delayed(&mut st, &cfg, FileId(idx as u32), u64::MAX);
            let owners: Vec<u64> = st.files[idx].pending.keys().copied().collect();
            for o in owners {
                crate::engine::publish_client(&mut st, &cfg, FileId(idx as u32), o);
            }
        }
        // Mirror this instance's counters into the shared registry: once
        // per run, after the final propagation, so the global totals are
        // deterministic. Reports keep reading the per-instance stats.
        if obs::metrics_enabled() {
            st.stats.publish_to(obs::metrics());
        }
    }

    /// The published image of `path` (call [`Pfs::quiesce`] first if the
    /// run used a buffering engine and you want the final state).
    pub fn published_image(&self, path: &str) -> FsResult<FileImage> {
        let st = lock_state(&self.state);
        let norm = crate::namespace::normalize("/", path)?;
        let id = st.ns.expect_file(&norm)?;
        Ok((*st.file(id).published).clone())
    }

    /// All file paths currently bound in the namespace, sorted.
    pub fn list_files(&self) -> Vec<String> {
        let st = lock_state(&self.state);
        let mut out = Vec::new();
        let mut stack = vec!["/".to_string()];
        while let Some(dir) = stack.pop() {
            if let Ok(entries) = st.ns.list(&dir) {
                for e in entries {
                    let full = if dir == "/" {
                        format!("/{}", e.name)
                    } else {
                        format!("{}/{}", dir, e.name)
                    };
                    if e.is_dir {
                        stack.push(full);
                    } else {
                        out.push(full);
                    }
                }
            }
        }
        out.sort();
        out
    }
}
