//! Per-byte write provenance: tags and the interval map that stores them.

use std::collections::BTreeMap;

/// Identity of a write: who wrote the byte and the global write sequence
/// number of the operation. Tags let a reader (or the analysis) decide
/// whether it observed the most recent happens-before write or a stale one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WriteTag {
    /// Writer rank.
    pub rank: u32,
    /// Per-rank write sequence number: the position of this write in the
    /// issuing rank's program order. Per-rank (not global) so that a tag
    /// depends only on program order, never on scheduler interleaving —
    /// which is what makes tags comparable across consistency engines.
    pub seq: u64,
}

/// A run of `len` bytes that all carry the same provenance. `None` means
/// the bytes were never written (file holes read as zeros).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagRun {
    pub len: u64,
    pub tag: Option<WriteTag>,
}

/// An interval map from byte ranges to [`WriteTag`]s.
///
/// Invariants: segments are disjoint, non-empty, and sorted by start offset.
/// Adjacent segments with equal tags are coalesced.
///
/// ```
/// use pfssim::{SegMap, WriteTag};
/// let mut m = SegMap::new();
/// m.insert(0, 10, WriteTag { rank: 1, seq: 0 });
/// m.insert(5, 8, WriteTag { rank: 2, seq: 0 });
/// let runs = m.query(0, 10);
/// assert_eq!(runs.len(), 3); // [0,5) rank 1 | [5,8) rank 2 | [8,10) rank 1
/// assert_eq!(runs[1].tag.unwrap().rank, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegMap {
    /// start → (end, tag); `end` is exclusive.
    segs: BTreeMap<u64, (u64, WriteTag)>,
}

impl SegMap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Number of stored segments (after coalescing).
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Record that `[start, end)` was written with `tag`, overwriting any
    /// previous provenance in that range.
    pub fn insert(&mut self, start: u64, end: u64, tag: WriteTag) {
        assert!(start <= end, "invalid range");
        if start == end {
            return;
        }
        // Find every segment overlapping [start, end) — plus the one that
        // may begin before `start` — split the edges, remove the middle.
        let mut to_reinsert: Vec<(u64, u64, WriteTag)> = Vec::new();
        let mut to_remove: Vec<u64> = Vec::new();

        // Segment starting before `start` that may overlap.
        if let Some((&s, &(e, t))) = self.segs.range(..start).next_back() {
            if e > start {
                to_remove.push(s);
                to_reinsert.push((s, start, t));
                if e > end {
                    to_reinsert.push((end, e, t));
                }
            }
        }
        // Segments starting within [start, end).
        for (&s, &(e, t)) in self.segs.range(start..end) {
            to_remove.push(s);
            if e > end {
                to_reinsert.push((end, e, t));
            }
        }
        for s in to_remove {
            self.segs.remove(&s);
        }
        for (s, e, t) in to_reinsert {
            if s < e {
                self.segs.insert(s, (e, t));
            }
        }
        self.segs.insert(start, (end, tag));
        self.coalesce_around(start, end);
    }

    /// Merge equal-tag neighbours around the freshly inserted range.
    fn coalesce_around(&mut self, start: u64, end: u64) {
        // Merge with predecessor.
        let mut cur_start = start;
        if let Some((&ps, &(pe, pt))) = self.segs.range(..cur_start).next_back() {
            let (ce, ct) = self.segs[&cur_start];
            if pe == cur_start && pt == ct {
                self.segs.remove(&cur_start);
                self.segs.insert(ps, (ce, ct));
                cur_start = ps;
            }
        }
        // Merge with successor.
        let (ce, ct) = self.segs[&cur_start];
        debug_assert!(ce >= end);
        if let Some((&ns, &(ne, nt))) = self.segs.range(cur_start + 1..).next() {
            if ns == ce && nt == ct {
                self.segs.remove(&ns);
                self.segs.insert(cur_start, (ne, ct));
            }
        }
    }

    /// The provenance of `[start, end)` as a sequence of runs covering the
    /// whole range (holes yield `tag: None`).
    pub fn query(&self, start: u64, end: u64) -> Vec<TagRun> {
        let mut runs = Vec::new();
        if start >= end {
            return runs;
        }
        let mut pos = start;
        // The segment possibly covering `start`.
        let mut iter: Vec<(u64, u64, WriteTag)> = Vec::new();
        if let Some((&s, &(e, t))) = self.segs.range(..=start).next_back() {
            if e > start {
                iter.push((s.max(start), e, t));
            }
        }
        for (&s, &(e, t)) in self.segs.range(start + 1..end) {
            iter.push((s, e, t));
        }
        for (s, e, t) in iter {
            if s > pos {
                runs.push(TagRun {
                    len: s - pos,
                    tag: None,
                });
            }
            let run_end = e.min(end);
            runs.push(TagRun {
                len: run_end - pos.max(s),
                tag: Some(t),
            });
            pos = run_end;
            if pos >= end {
                break;
            }
        }
        if pos < end {
            runs.push(TagRun {
                len: end - pos,
                tag: None,
            });
        }
        runs
    }

    /// Iterate all segments as `(start, end, tag)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, WriteTag)> + '_ {
        self.segs.iter().map(|(&s, &(e, t))| (s, e, t))
    }

    /// A 64-bit FNV-1a digest of the provenance of `[start, end)` — used by
    /// the observation log to compare what reads saw across engines without
    /// storing full runs.
    pub fn digest(&self, start: u64, end: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for run in self.query(start, end) {
            mix(run.len);
            match run.tag {
                Some(t) => {
                    mix(t.rank as u64 + 1);
                    mix(t.seq + 1);
                }
                None => mix(0),
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(rank: u32, seq: u64) -> WriteTag {
        WriteTag { rank, seq }
    }

    fn runs(m: &SegMap, s: u64, e: u64) -> Vec<(u64, Option<(u32, u64)>)> {
        m.query(s, e)
            .into_iter()
            .map(|r| (r.len, r.tag.map(|t| (t.rank, t.seq))))
            .collect()
    }

    #[test]
    fn empty_map_is_all_holes() {
        let m = SegMap::new();
        assert_eq!(runs(&m, 0, 10), vec![(10, None)]);
        assert!(m.query(5, 5).is_empty());
    }

    #[test]
    fn single_insert() {
        let mut m = SegMap::new();
        m.insert(10, 20, tag(1, 1));
        assert_eq!(
            runs(&m, 0, 30),
            vec![(10, None), (10, Some((1, 1))), (10, None)]
        );
    }

    #[test]
    fn overwrite_middle_splits() {
        let mut m = SegMap::new();
        m.insert(0, 30, tag(1, 1));
        m.insert(10, 20, tag(2, 2));
        assert_eq!(
            runs(&m, 0, 30),
            vec![(10, Some((1, 1))), (10, Some((2, 2))), (10, Some((1, 1)))]
        );
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn overwrite_covering_removes_inner() {
        let mut m = SegMap::new();
        m.insert(5, 10, tag(1, 1));
        m.insert(12, 15, tag(1, 2));
        m.insert(0, 20, tag(3, 3));
        assert_eq!(runs(&m, 0, 20), vec![(20, Some((3, 3)))]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn partial_overlap_left_and_right() {
        let mut m = SegMap::new();
        m.insert(0, 10, tag(1, 1));
        m.insert(20, 30, tag(2, 2));
        m.insert(5, 25, tag(3, 3));
        assert_eq!(
            runs(&m, 0, 30),
            vec![(5, Some((1, 1))), (20, Some((3, 3))), (5, Some((2, 2)))]
        );
    }

    #[test]
    fn coalesces_equal_adjacent_tags() {
        let mut m = SegMap::new();
        m.insert(0, 10, tag(1, 1));
        m.insert(10, 20, tag(1, 1));
        assert_eq!(m.len(), 1);
        assert_eq!(runs(&m, 0, 20), vec![(20, Some((1, 1)))]);
    }

    #[test]
    fn digest_changes_with_provenance() {
        let mut a = SegMap::new();
        a.insert(0, 10, tag(1, 1));
        let mut b = SegMap::new();
        b.insert(0, 10, tag(1, 2));
        assert_ne!(a.digest(0, 10), b.digest(0, 10));
        assert_eq!(a.digest(0, 10), a.clone().digest(0, 10));
        // Outside the written range the digest is the hole digest.
        let empty = SegMap::new();
        assert_eq!(a.digest(20, 30), empty.digest(20, 30));
    }

    #[test]
    fn query_is_exact_at_boundaries() {
        let mut m = SegMap::new();
        m.insert(10, 20, tag(1, 1));
        assert_eq!(runs(&m, 10, 20), vec![(10, Some((1, 1)))]);
        assert_eq!(runs(&m, 9, 10), vec![(1, None)]);
        assert_eq!(runs(&m, 20, 21), vec![(1, None)]);
        assert_eq!(runs(&m, 15, 16), vec![(1, Some((1, 1)))]);
    }
}
