//! Server-side statistics: metadata operation counters, lock-manager and
//! data-server traffic. These feed the motivation benchmarks (strong
//! consistency ⇒ lock/metadata-server bottleneck, §3.1) and the per-server
//! load reports.

use std::collections::BTreeMap;

/// Every POSIX metadata / utility operation the paper's study monitored
/// (footnote 3 of §6.4). The simulator counts all of them; the ones with
/// real behaviour in `pfssim` are implemented in the client, the rest are
/// counted no-ops so the Figure 3 census has the full vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum MetaOp {
    Mmap,
    Mmap64,
    Msync,
    Stat,
    Stat64,
    Lstat,
    Lstat64,
    Fstat,
    Fstat64,
    Getcwd,
    Mkdir,
    Rmdir,
    Chdir,
    Link,
    Linkat,
    Unlink,
    Symlink,
    Symlinkat,
    Readlink,
    Readlinkat,
    Rename,
    Chmod,
    Chown,
    Lchown,
    Utime,
    Opendir,
    Readdir,
    Closedir,
    Rewinddir,
    Mknod,
    Mknodat,
    Fcntl,
    Dup,
    Dup2,
    Pipe,
    Mkfifo,
    Umask,
    Fileno,
    Access,
    Faccessat,
    Tmpfile,
    Remove,
    Truncate,
    Ftruncate,
}

impl MetaOp {
    /// The POSIX function name, for reports and trace export.
    pub fn name(self) -> &'static str {
        use MetaOp::*;
        match self {
            Mmap => "mmap",
            Mmap64 => "mmap64",
            Msync => "msync",
            Stat => "stat",
            Stat64 => "stat64",
            Lstat => "lstat",
            Lstat64 => "lstat64",
            Fstat => "fstat",
            Fstat64 => "fstat64",
            Getcwd => "getcwd",
            Mkdir => "mkdir",
            Rmdir => "rmdir",
            Chdir => "chdir",
            Link => "link",
            Linkat => "linkat",
            Unlink => "unlink",
            Symlink => "symlink",
            Symlinkat => "symlinkat",
            Readlink => "readlink",
            Readlinkat => "readlinkat",
            Rename => "rename",
            Chmod => "chmod",
            Chown => "chown",
            Lchown => "lchown",
            Utime => "utime",
            Opendir => "opendir",
            Readdir => "readdir",
            Closedir => "closedir",
            Rewinddir => "rewinddir",
            Mknod => "mknod",
            Mknodat => "mknodat",
            Fcntl => "fcntl",
            Dup => "dup",
            Dup2 => "dup2",
            Pipe => "pipe",
            Mkfifo => "mkfifo",
            Umask => "umask",
            Fileno => "fileno",
            Access => "access",
            Faccessat => "faccessat",
            Tmpfile => "tmpfile",
            Remove => "remove",
            Truncate => "truncate",
            Ftruncate => "ftruncate",
        }
    }

    pub const ALL: [MetaOp; 44] = [
        MetaOp::Mmap,
        MetaOp::Mmap64,
        MetaOp::Msync,
        MetaOp::Stat,
        MetaOp::Stat64,
        MetaOp::Lstat,
        MetaOp::Lstat64,
        MetaOp::Fstat,
        MetaOp::Fstat64,
        MetaOp::Getcwd,
        MetaOp::Mkdir,
        MetaOp::Rmdir,
        MetaOp::Chdir,
        MetaOp::Link,
        MetaOp::Linkat,
        MetaOp::Unlink,
        MetaOp::Symlink,
        MetaOp::Symlinkat,
        MetaOp::Readlink,
        MetaOp::Readlinkat,
        MetaOp::Rename,
        MetaOp::Chmod,
        MetaOp::Chown,
        MetaOp::Lchown,
        MetaOp::Utime,
        MetaOp::Opendir,
        MetaOp::Readdir,
        MetaOp::Closedir,
        MetaOp::Rewinddir,
        MetaOp::Mknod,
        MetaOp::Mknodat,
        MetaOp::Fcntl,
        MetaOp::Dup,
        MetaOp::Dup2,
        MetaOp::Pipe,
        MetaOp::Mkfifo,
        MetaOp::Umask,
        MetaOp::Fileno,
        MetaOp::Access,
        MetaOp::Faccessat,
        MetaOp::Tmpfile,
        MetaOp::Remove,
        MetaOp::Truncate,
        MetaOp::Ftruncate,
    ];
}

/// Aggregate server-side statistics of one PFS instance.
#[derive(Debug, Clone, Default)]
pub struct PfsStats {
    /// Total write calls that reached the file system.
    pub writes: u64,
    /// Total read calls.
    pub reads: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    /// Extent locks acquired (strong semantics only) — the lock-manager
    /// traffic the paper blames for the metadata-server bottleneck.
    pub locks_acquired: u64,
    /// Lock revocations: a client touched an extent whose write lock was
    /// last held by a *different* client (the Lustre-style callback storm
    /// that makes shared-file strong consistency expensive).
    pub lock_revocations: u64,
    /// open / close round trips to the metadata server.
    pub opens: u64,
    pub closes: u64,
    /// Explicit commits (fsync / fdatasync / laminate).
    pub commits: u64,
    /// Publish events (pending extents becoming globally visible).
    pub publishes: u64,
    /// Extents currently buffered (pending, not yet visible).
    pub pending_extents: u64,
    /// Metadata operation counts.
    pub meta_ops: BTreeMap<MetaOp, u64>,
    /// Per-data-server bytes written, indexed by server (striped layout).
    pub server_bytes_written: Vec<u64>,
    /// Per-data-server bytes read.
    pub server_bytes_read: Vec<u64>,
}

impl PfsStats {
    pub fn new(data_servers: u32) -> Self {
        PfsStats {
            server_bytes_written: vec![0; data_servers as usize],
            server_bytes_read: vec![0; data_servers as usize],
            ..Default::default()
        }
    }

    pub fn count_meta(&mut self, op: MetaOp) {
        *self.meta_ops.entry(op).or_insert(0) += 1;
    }

    /// Mirror this instance's counters into a shared [`obs::Registry`]
    /// under `pfssim.*` names. Called once per run at quiesce time, so
    /// the global totals accumulate deterministically across configs and
    /// thread counts while reports keep reading per-instance stats.
    pub fn publish_to(&self, reg: &obs::Registry) {
        reg.add("pfssim.writes", self.writes);
        reg.add("pfssim.reads", self.reads);
        reg.add("pfssim.bytes_written", self.bytes_written);
        reg.add("pfssim.bytes_read", self.bytes_read);
        reg.add("pfssim.locks_acquired", self.locks_acquired);
        reg.add("pfssim.lock_revocations", self.lock_revocations);
        reg.add("pfssim.opens", self.opens);
        reg.add("pfssim.closes", self.closes);
        reg.add("pfssim.commits", self.commits);
        reg.add("pfssim.publishes", self.publishes);
        for (op, n) in &self.meta_ops {
            reg.add(&format!("pfssim.meta.{}", op.name()), *n);
        }
        for (s, b) in self.server_bytes_written.iter().enumerate() {
            if *b > 0 {
                reg.add(&format!("pfssim.server{s}.bytes_written"), *b);
            }
        }
        for (s, b) in self.server_bytes_read.iter().enumerate() {
            if *b > 0 {
                reg.add(&format!("pfssim.server{s}.bytes_read"), *b);
            }
        }
    }

    pub fn meta_total(&self) -> u64 {
        self.meta_ops.values().sum()
    }

    /// Attribute `len` bytes at `offset` to data servers under a
    /// round-robin stripe layout.
    pub fn stripe_account(&mut self, offset: u64, len: u64, stripe: u64, write: bool) {
        let n = self.server_bytes_written.len() as u64;
        if n == 0 || len == 0 {
            return;
        }
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe_idx = pos / stripe;
            let server = (stripe_idx % n) as usize;
            let stripe_end = (stripe_idx + 1) * stripe;
            let chunk = stripe_end.min(end) - pos;
            if write {
                self.server_bytes_written[server] += chunk;
            } else {
                self.server_bytes_read[server] += chunk;
            }
            pos += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_accounting_round_robin() {
        let mut s = PfsStats::new(4);
        // 10 bytes at offset 0 with stripe 4 → servers 0,1,2 get 4,4,2.
        s.stripe_account(0, 10, 4, true);
        assert_eq!(s.server_bytes_written, vec![4, 4, 2, 0]);
        // Offset 4 → starts at server 1.
        s.stripe_account(4, 4, 4, false);
        assert_eq!(s.server_bytes_read, vec![0, 4, 0, 0]);
    }

    #[test]
    fn meta_counting() {
        let mut s = PfsStats::new(1);
        s.count_meta(MetaOp::Stat);
        s.count_meta(MetaOp::Stat);
        s.count_meta(MetaOp::Unlink);
        assert_eq!(s.meta_ops[&MetaOp::Stat], 2);
        assert_eq!(s.meta_total(), 3);
    }

    #[test]
    fn all_ops_have_unique_names() {
        let mut names: Vec<&str> = MetaOp::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MetaOp::ALL.len());
    }
}
