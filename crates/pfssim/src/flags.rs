//! POSIX-style open flags and seek whence values.
//!
//! The offset-resolution step of the paper's algorithm (§5.1) must interpret
//! exactly these flags: "For metadata operations like `open` and `seek`, we
//! update the offset according to the open flag (e.g., `O_CREAT`, `O_TRUNC`,
//! or `O_APPEND`) and the seek flag (e.g., `SEEK_CUR`, `SEEK_END`, or
//! `SEEK_SET`)".

/// Subset of POSIX `open(2)` flags that affect data semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenFlags {
    pub read: bool,
    pub write: bool,
    /// Create the file if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// Every write positions at the current end of file.
    pub append: bool,
    /// Fail if `create` and the file already exists.
    pub excl: bool,
    /// `O_LAZY` (the PDL POSIX HPC-extensions proposal, §2.2 of the
    /// paper): on a strong-consistency PFS, writes through this
    /// descriptor are buffered and become globally visible only at an
    /// explicit flush (`fsync`) or `close` — per-file *tunable*
    /// consistency. No effect on already-relaxed file systems.
    pub lazy: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const fn rdonly() -> Self {
        OpenFlags {
            read: true,
            write: false,
            create: false,
            truncate: false,
            append: false,
            excl: false,
            lazy: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the common "write a fresh file".
    pub const fn wronly_create_trunc() -> Self {
        OpenFlags {
            read: false,
            write: true,
            create: true,
            truncate: true,
            append: false,
            excl: false,
            lazy: false,
        }
    }

    /// `O_RDWR | O_CREAT`.
    pub const fn rdwr_create() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: true,
            truncate: false,
            append: false,
            excl: false,
            lazy: false,
        }
    }

    /// `O_RDWR`.
    pub const fn rdwr() -> Self {
        OpenFlags {
            read: true,
            write: true,
            create: false,
            truncate: false,
            append: false,
            excl: false,
            lazy: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_APPEND` — log-style appends.
    pub const fn append_create() -> Self {
        OpenFlags {
            read: false,
            write: true,
            create: true,
            truncate: false,
            append: true,
            excl: false,
            lazy: false,
        }
    }

    pub const fn with_excl(mut self) -> Self {
        self.excl = true;
        self
    }

    /// Add `O_LAZY`.
    pub const fn with_lazy(mut self) -> Self {
        self.lazy = true;
        self
    }

    /// Encode into a compact bitset for trace records.
    pub fn to_bits(self) -> u32 {
        (self.read as u32)
            | (self.write as u32) << 1
            | (self.create as u32) << 2
            | (self.truncate as u32) << 3
            | (self.append as u32) << 4
            | (self.excl as u32) << 5
            | (self.lazy as u32) << 6
    }

    pub fn from_bits(bits: u32) -> Self {
        OpenFlags {
            read: bits & 1 != 0,
            write: bits & 2 != 0,
            create: bits & 4 != 0,
            truncate: bits & 8 != 0,
            append: bits & 16 != 0,
            excl: bits & 32 != 0,
            lazy: bits & 64 != 0,
        }
    }
}

/// `lseek(2)` whence values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Whence {
    /// `SEEK_SET`: absolute offset.
    Set,
    /// `SEEK_CUR`: relative to the current cursor.
    Cur,
    /// `SEEK_END`: relative to the end of file.
    End,
}

impl Whence {
    pub fn to_u8(self) -> u8 {
        match self {
            Whence::Set => 0,
            Whence::Cur => 1,
            Whence::End => 2,
        }
    }

    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => Whence::Set,
            1 => Whence::Cur,
            2 => Whence::End,
            _ => panic!("invalid whence {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_roundtrip_bits() {
        for f in [
            OpenFlags::rdonly(),
            OpenFlags::wronly_create_trunc(),
            OpenFlags::rdwr_create(),
            OpenFlags::rdwr(),
            OpenFlags::append_create(),
            OpenFlags::rdwr_create().with_excl(),
            OpenFlags::rdwr_create().with_lazy(),
        ] {
            assert_eq!(OpenFlags::from_bits(f.to_bits()), f);
        }
    }

    #[test]
    fn whence_roundtrip() {
        for w in [Whence::Set, Whence::Cur, Whence::End] {
            assert_eq!(Whence::from_u8(w.to_u8()), w);
        }
    }
}
