//! PFS configuration and the consistency-model selector.

/// The four consistency-semantics categories the paper defines in §3,
/// ordered from strongest to weakest. The analysis side defines the same
/// lattice (in `semantics-core`); this copy selects the *execution engine*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SemanticsModel {
    /// POSIX sequential consistency: a write is visible to every subsequent
    /// (happens-before ordered) read as soon as it returns. §3.1.
    Strong,
    /// Writes become globally visible when the writing process commits
    /// (`fsync`/`fdatasync`/`close`/laminate). §3.2.
    Commit,
    /// Close-to-open: writes become visible to processes that open the file
    /// after the writer closed it. §3.3.
    Session,
    /// Writes propagate after an unspecified delay, with no commit
    /// operation required (and commits do not accelerate visibility). §3.4.
    Eventual,
}

impl std::fmt::Display for SemanticsModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl SemanticsModel {
    pub const ALL: [SemanticsModel; 4] = [
        SemanticsModel::Strong,
        SemanticsModel::Commit,
        SemanticsModel::Session,
        SemanticsModel::Eventual,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SemanticsModel::Strong => "strong",
            SemanticsModel::Commit => "commit",
            SemanticsModel::Session => "session",
            SemanticsModel::Eventual => "eventual",
        }
    }

    /// True if this model is at least as strong as `other`
    /// (strong ≥ commit ≥ session ≥ eventual).
    pub fn at_least(self, other: SemanticsModel) -> bool {
        self <= other
    }
}

/// Static configuration of a simulated PFS instance.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Which consistency engine executes data operations.
    pub semantics: SemanticsModel,
    /// Stripe size in bytes (data is striped round-robin over the data
    /// servers, as on Lustre).
    pub stripe_size: u64,
    /// Number of data servers (OSTs).
    pub data_servers: u32,
    /// Propagation delay for [`SemanticsModel::Eventual`], in simulated
    /// nanoseconds.
    pub eventual_delay_ns: u64,
    /// Lock granularity in bytes for the strong engine's extent locks
    /// (Lustre-style). Each data operation acquires
    /// ceil(len / lock_granularity) locks, all counted by the lock manager.
    pub lock_granularity: u64,
    /// If false, two writes by the *same* process to the same bytes may be
    /// published out of order (the BurstFS anomaly discussed in §3.5).
    /// Defaults to true: same-process ordering is preserved.
    pub same_process_ordering: bool,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            semantics: SemanticsModel::Strong,
            stripe_size: 1 << 20, // 1 MiB, Lustre default
            data_servers: 8,
            eventual_delay_ns: 50_000_000, // 50 ms
            lock_granularity: 1 << 20,
            same_process_ordering: true,
        }
    }
}

impl PfsConfig {
    pub fn with_semantics(mut self, semantics: SemanticsModel) -> Self {
        self.semantics = semantics;
        self
    }

    pub fn with_eventual_delay_ns(mut self, ns: u64) -> Self {
        self.eventual_delay_ns = ns;
        self
    }

    pub fn with_burstfs_reordering(mut self) -> Self {
        self.same_process_ordering = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        use SemanticsModel::*;
        assert!(Strong.at_least(Commit));
        assert!(Commit.at_least(Session));
        assert!(Session.at_least(Eventual));
        assert!(Strong.at_least(Strong));
        assert!(!Eventual.at_least(Session));
        assert!(!Session.at_least(Commit));
    }
}
