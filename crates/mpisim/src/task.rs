//! Stackful coroutine tasks for the event-driven world executor.
//!
//! Each simulated rank becomes a *task*: the unchanged rank closure runs on
//! its own heap-allocated stack, and every point where the thread executor
//! would block on a condvar (turn wait, park, burst-continuation wait)
//! instead switches back to the scheduler's native stack. One OS thread
//! drives thousands of ranks; a switch is a handful of instructions (save
//! callee-saved registers, swap stack pointers) instead of a futex round
//! trip through the kernel.
//!
//! The context switch is hand-rolled `global_asm!` for x86_64 System V:
//! callee-saved integer registers are pushed on the outgoing stack, the
//! stack pointers are swapped, and the incoming side pops and returns. No
//! floating-point control state is saved — neither the simulator nor the
//! rank programs modify `mxcsr`/x87 control words, and both sides of every
//! switch run on the same thread. Panics never unwind across a switch:
//! the task entry wraps the closure in `catch_unwind`, so an unwinding
//! rank (fail-stop `SimAbort`, deadlock observation, genuine bug) is
//! caught while still entirely on the task's own stack.
//!
//! On architectures without a switch implementation the executor falls
//! back to thread-per-rank; [`supported`] reports which world you get.
//!
//! Safety invariants, enforced by the `world::run_tasks` driver:
//! * a task is resumed only while suspended (initial state or parked in
//!   [`yield_now`]) and never after [`Task::finished`];
//! * tasks are driven to completion before the driver returns, so borrows
//!   captured by the closure outlive every frame on the task stack;
//! * all switches happen on the driver's thread ([`CURRENT`] is
//!   thread-local, so concurrent worlds on different threads don't mix).

use std::alloc::{alloc, dealloc, Layout};
use std::cell::Cell;
use std::ptr;

/// Whether this build carries a context-switch implementation (and the
/// event-driven executor is therefore available).
pub const fn supported() -> bool {
    cfg!(target_arch = "x86_64")
}

/// Default task stack size: 1 MiB of *virtual* space. Pages are committed
/// on first touch, so idle ranks cost a few KiB of resident memory; deep
/// I/O-library call chains have headroom. Overridable per world via
/// `MPISIM_TASK_STACK_KIB` (clamped to at least [`MIN_STACK_BYTES`]).
pub const DEFAULT_STACK_BYTES: usize = 1 << 20;

/// Floor for configured stack sizes; below this even the harness's
/// startup barrier would risk the canary.
pub const MIN_STACK_BYTES: usize = 64 * 1024;

/// Sentinel written at the low end of every task stack and checked on
/// every switch back to the scheduler: a clobbered canary means the task
/// overflowed its stack and the process must stop before the corruption
/// spreads.
const STACK_CANARY: u64 = 0xdead_c0de_5afe_57ac;

/// The per-task stack-size knob, resolved once per world.
pub fn stack_bytes_from_env() -> usize {
    match std::env::var("MPISIM_TASK_STACK_KIB") {
        Ok(v) => match v.parse::<usize>() {
            Ok(kib) => (kib * 1024).max(MIN_STACK_BYTES),
            Err(_) => DEFAULT_STACK_BYTES,
        },
        Err(_) => DEFAULT_STACK_BYTES,
    }
}

thread_local! {
    /// The task currently executing on this thread, if any. Set around
    /// every resume; [`yield_now`] and [`in_task`] read it. A raw pointer
    /// is fine: the pointee is a heap box owned by the driver, which
    /// outlives the resume window.
    static CURRENT: Cell<*mut TaskInner> = const { Cell::new(ptr::null_mut()) };
}

/// Whether the calling code is running inside a task (as opposed to a
/// plain rank thread or the driver itself). The world's wait paths use
/// this to choose yield-to-scheduler over condvar wait.
#[inline]
pub(crate) fn in_task() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// Switch from the running task back to the scheduler. The task stays
/// suspended exactly here until the next [`Task::resume`].
///
/// # Panics
/// Panics if called outside a task.
pub(crate) fn yield_now() {
    let p = CURRENT.with(|c| c.get());
    assert!(!p.is_null(), "yield_now outside a task");
    unsafe {
        let inner = &mut *p;
        coro_switch(&mut inner.task_sp, inner.sched_sp);
    }
}

/// Heap stack for one task. Allocated unzeroed so untouched pages are
/// never committed.
struct Stack {
    base: *mut u8,
    layout: Layout,
}

impl Stack {
    fn new(size: usize) -> Stack {
        let size = size.max(MIN_STACK_BYTES) & !15usize;
        let layout = Layout::from_size_align(size, 16).expect("stack layout");
        // SAFETY: layout has nonzero size.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "task stack allocation failed ({size} B)");
        // SAFETY: base..base+8 is inside the allocation.
        unsafe { (base as *mut u64).write(STACK_CANARY) };
        Stack { base, layout }
    }

    /// One-past-the-end, 16-byte aligned (alloc alignment + masked size).
    fn top(&self) -> *mut u8 {
        // SAFETY: offset stays within the allocation bounds (one past end).
        unsafe { self.base.add(self.layout.size()) }
    }

    fn canary_intact(&self) -> bool {
        // SAFETY: the canary word was written at construction.
        unsafe { (self.base as *const u64).read() == STACK_CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: base/layout are exactly what alloc returned.
        unsafe { dealloc(self.base, self.layout) };
    }
}

/// The switch target state of one task plus its entry closure. Boxed by
/// [`Task`] so the pointer handed to the trampoline stays stable.
struct TaskInner {
    /// Saved stack pointer of the suspended task (initially the crafted
    /// bootstrap frame).
    task_sp: *mut u8,
    /// Saved stack pointer of the scheduler while the task runs; the
    /// task's [`yield_now`] switches back to it.
    sched_sp: *mut u8,
    /// The rank closure; taken exactly once by the entry shim. The
    /// lifetime is erased (see [`Task::new`]) — the driver guarantees the
    /// task completes before captured borrows expire.
    entry: Option<Box<dyn FnOnce()>>,
    finished: bool,
    stack: Stack,
}

/// One resumable task.
pub(crate) struct Task {
    inner: Box<TaskInner>,
}

impl Task {
    /// Create a suspended task that will run `entry` on its own
    /// `stack_bytes`-sized stack when first resumed.
    ///
    /// # Safety
    /// The closure's captured borrows must outlive the task, and the task
    /// must be driven to completion (or never resumed again after a
    /// partial run is abandoned) before they expire. `run_tasks` upholds
    /// this by joining every task before returning.
    pub(crate) unsafe fn new<'a>(stack_bytes: usize, entry: Box<dyn FnOnce() + 'a>) -> Task {
        let stack = Stack::new(stack_bytes);
        // Erase the closure lifetime; see the safety contract above.
        let entry: Box<dyn FnOnce() + 'static> =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + 'a>, Box<dyn FnOnce()>>(entry) };
        let mut inner = Box::new(TaskInner {
            task_sp: ptr::null_mut(),
            sched_sp: ptr::null_mut(),
            entry: Some(entry),
            finished: false,
            stack,
        });
        inner.task_sp = bootstrap_frame(inner.stack.top(), &mut *inner as *mut TaskInner);
        Task { inner }
    }

    pub(crate) fn finished(&self) -> bool {
        self.inner.finished
    }

    /// Run the task until it yields or finishes. Must not be called on a
    /// finished task.
    pub(crate) fn resume(&mut self) {
        assert!(!self.inner.finished, "resumed a finished task");
        let inner: *mut TaskInner = &mut *self.inner;
        let prev = CURRENT.with(|c| c.replace(inner));
        // SAFETY: task_sp points at a valid suspended context (bootstrap
        // frame or a yield_now switch-out) on the task's own live stack.
        unsafe {
            coro_switch(&mut (*inner).sched_sp, (*inner).task_sp);
        }
        CURRENT.with(|c| c.set(prev));
        assert!(
            self.inner.stack.canary_intact(),
            "task stack overflow detected (canary clobbered); \
             raise MPISIM_TASK_STACK_KIB"
        );
    }
}

/// Entry shim running on the task stack: consume the closure, mark the
/// task finished, and switch back to the scheduler for good. Extern "C"
/// so an unwind escaping the closure's own `catch_unwind` aborts loudly
/// instead of unwinding off the bootstrap frame (undefined).
#[no_mangle]
extern "C" fn mpisim_task_entry(inner: *mut TaskInner) -> ! {
    // SAFETY: the trampoline passes the TaskInner pointer stashed by
    // bootstrap_frame; the box outlives the task.
    let inner = unsafe { &mut *inner };
    let entry = inner.entry.take().expect("task entered twice");
    entry();
    inner.finished = true;
    loop {
        // Final switch out. A bug that resumed a finished task would come
        // back here; looping (instead of falling off the frame) keeps
        // that a hang with a clear stack rather than memory corruption —
        // and `Task::resume` asserts against it first.
        // SAFETY: sched_sp was saved by the resume that ran us.
        unsafe { coro_switch(&mut inner.task_sp, inner.sched_sp) };
    }
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::TaskInner;

    // The context switch and the bootstrap trampoline, System V AMD64.
    //
    // mpisim_coro_switch(save: *mut *mut u8 [rdi], to: *mut u8 [rsi]):
    // push the callee-saved integer registers, store rsp through `save`,
    // adopt `to`, pop, return — "returning" on the other context's stack.
    // The bootstrap frame fakes the popped registers and a return address
    // pointing at the trampoline, which moves the TaskInner pointer
    // (stashed in the r12 slot) into rdi and calls the entry shim with
    // the stack 16-byte aligned at the call, as the ABI requires.
    core::arch::global_asm!(
        ".text",
        ".globl mpisim_coro_switch",
        ".type mpisim_coro_switch,@function",
        "mpisim_coro_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".size mpisim_coro_switch, . - mpisim_coro_switch",
        ".globl mpisim_task_trampoline",
        ".type mpisim_task_trampoline,@function",
        "mpisim_task_trampoline:",
        "mov rdi, r12",
        "call mpisim_task_entry",
        "ud2",
        ".size mpisim_task_trampoline, . - mpisim_task_trampoline",
    );

    unsafe extern "C" {
        pub(super) unsafe fn mpisim_coro_switch(save: *mut *mut u8, to: *mut u8);
        pub(super) unsafe fn mpisim_task_trampoline();
    }

    /// Craft the initial switch frame at `top` (16-byte aligned, one past
    /// the stack's end): six callee-saved slots and a return address, so
    /// the first switch into the task pops them and "returns" into the
    /// trampoline with rsp back at `top`.
    pub(super) unsafe fn bootstrap_frame(top: *mut u8, inner: *mut TaskInner) -> *mut u8 {
        debug_assert_eq!(top as usize % 16, 0);
        let sp = unsafe { (top as *mut u64).sub(7) };
        unsafe {
            sp.add(0).write(0); // r15
            sp.add(1).write(0); // r14
            sp.add(2).write(0); // r13
            sp.add(3).write(inner as u64); // r12 → rdi in the trampoline
            sp.add(4).write(0); // rbx
            sp.add(5).write(0); // rbp: terminate frame-pointer walks
            sp.add(6)
                .write(mpisim_task_trampoline as *const () as usize as u64);
        }
        sp as *mut u8
    }
}

#[cfg(target_arch = "x86_64")]
use arch::bootstrap_frame;

/// Perform one context switch: save the current stack pointer through
/// `save`, adopt `to`.
///
/// # Safety
/// `to` must be a stack pointer previously produced by this function or
/// [`bootstrap_frame`], on a live stack.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn coro_switch(save: &mut *mut u8, to: *mut u8) {
    unsafe { arch::mpisim_coro_switch(save as *mut *mut u8 as *mut *mut u8, to) }
}

// Unsupported architectures: the executor never constructs tasks (it
// falls back to threads), but the module must still compile.
#[cfg(not(target_arch = "x86_64"))]
unsafe fn coro_switch(_save: &mut *mut u8, _to: *mut u8) {
    unreachable!("task executor unsupported on this architecture")
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn bootstrap_frame(_top: *mut u8, _inner: *mut TaskInner) -> *mut u8 {
    unreachable!("task executor unsupported on this architecture")
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let log = std::cell::RefCell::new(Vec::new());
        let mut t = unsafe {
            Task::new(
                MIN_STACK_BYTES,
                Box::new(|| {
                    log.borrow_mut().push("a");
                    yield_now();
                    log.borrow_mut().push("b");
                    yield_now();
                    log.borrow_mut().push("c");
                }),
            )
        };
        assert!(!t.finished());
        t.resume();
        assert_eq!(*log.borrow(), ["a"]);
        assert!(!t.finished());
        t.resume();
        assert_eq!(*log.borrow(), ["a", "b"]);
        t.resume();
        assert_eq!(*log.borrow(), ["a", "b", "c"]);
        assert!(t.finished());
    }

    #[test]
    fn interleaves_many_tasks() {
        const N: usize = 64;
        let order = std::cell::RefCell::new(Vec::new());
        let order_ref = &order;
        let mut tasks: Vec<Task> = (0..N)
            .map(|i| unsafe {
                Task::new(
                    MIN_STACK_BYTES,
                    Box::new(move || {
                        order_ref.borrow_mut().push(i);
                        yield_now();
                        order_ref.borrow_mut().push(i + N);
                    }),
                )
            })
            .collect();
        for t in tasks.iter_mut() {
            t.resume();
        }
        for t in tasks.iter_mut() {
            t.resume();
            assert!(t.finished());
        }
        let want: Vec<usize> = (0..2 * N).collect();
        assert_eq!(*order.borrow(), want);
    }

    #[test]
    fn panic_is_caught_on_task_stack() {
        let caught = std::cell::Cell::new(false);
        let mut t = unsafe {
            Task::new(
                MIN_STACK_BYTES,
                Box::new(|| {
                    let r = std::panic::catch_unwind(|| panic!("boom"));
                    caught.set(r.is_err());
                }),
            )
        };
        t.resume();
        assert!(t.finished());
        assert!(caught.get());
    }

    #[test]
    fn in_task_reflects_context() {
        assert!(!in_task());
        let seen = std::cell::Cell::new(false);
        let mut t = unsafe {
            Task::new(
                MIN_STACK_BYTES,
                Box::new(|| {
                    seen.set(in_task());
                }),
            )
        };
        t.resume();
        assert!(!in_task());
        assert!(seen.get());
    }
}
