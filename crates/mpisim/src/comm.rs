//! Communication primitives: barrier, point-to-point, and collectives.
//!
//! All collectives are built from buffered sends and blocking receives on a
//! reserved tag, so every collective leaves point-to-point happens-before
//! edges in the event log — the same edges §5.2 of the paper reconstructs
//! ("we matched sends to receives and collective function invocations").

use crate::clock::OpClass;
use crate::event::{EventKind, MpiEvent};
use crate::sched::BlockReason;
use crate::world::Rank;

/// Tag reserved for collective traffic. User tags must stay below this.
pub const COLLECTIVE_TAG: u32 = u32::MAX;

/// What a barrier participation looked like, in true simulated time.
/// Every participant of one epoch observes the same `t_exit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierInfo {
    pub epoch: u64,
    pub t_enter: u64,
    pub t_exit: u64,
}

/// Completion record of a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendInfo {
    pub seq: u64,
    pub t_start: u64,
    pub t_end: u64,
}

/// Completion record of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvInfo {
    pub src: u32,
    pub tag: u32,
    pub seq: u64,
    pub t_start: u64,
    pub t_end: u64,
}

impl Rank {
    /// Block until every *live* rank has entered the barrier. All
    /// participants of one epoch observe the same exit time: a barrier
    /// starts at every rank before it completes at any rank. A crashed
    /// rank counts as departed (ULFM-style), so survivors still release;
    /// a rank crashing while peers wait triggers the same release from
    /// `SimState::crash_rank`.
    pub fn barrier(&self) -> BarrierInfo {
        let me = self.rank as usize;
        let mut st = self.turn_begin();
        let t_enter = st.clock_ns;
        let epoch = st.barrier_epoch;
        let barrier_ns = self.shared().cost.barrier_ns;
        st.advance_clock(barrier_ns);
        st.barrier_count += 1;
        st.release_barrier_if_complete();
        if st.barrier_epoch > epoch {
            // We were the last live arrival: the epoch released.
            let t_exit = st.barrier_release[epoch as usize];
            st.events[me].push(MpiEvent {
                rank: self.rank,
                t_start: t_enter,
                t_end: t_exit,
                kind: EventKind::Barrier { epoch },
            });
            self.turn_end(st);
            BarrierInfo {
                epoch,
                t_enter,
                t_exit,
            }
        } else {
            let mut st = self.park(st, BlockReason::Barrier { epoch });
            let t_exit = st.barrier_release[epoch as usize];
            st.events[me].push(MpiEvent {
                rank: self.rank,
                t_start: t_enter,
                t_end: t_exit,
                kind: EventKind::Barrier { epoch },
            });
            drop(st);
            BarrierInfo {
                epoch,
                t_enter,
                t_exit,
            }
        }
    }

    /// Post a buffered message; completes locally without waiting for the
    /// matching receive (standard-mode send with eager buffering).
    pub fn send(&self, dst: u32, tag: u32, payload: Vec<u8>) -> SendInfo {
        assert!(dst < self.nranks(), "send to invalid rank {dst}");
        let me = self.rank as usize;
        let len = payload.len() as u64;
        let mut st = self.turn_begin();
        let t_start = st.clock_ns;
        let send_ns = self.shared().cost.cost(OpClass::Send, len);
        st.advance_clock(send_ns);
        let t_end = st.clock_ns;
        let seq = st.put_msg(self.rank, dst, tag, payload);
        st.events[me].push(MpiEvent {
            rank: self.rank,
            t_start,
            t_end,
            kind: EventKind::Send { dst, tag, seq },
        });
        self.turn_end(st);
        SendInfo {
            seq,
            t_start,
            t_end,
        }
    }

    /// Block until a message from `src` with `tag` is available, then
    /// consume it. Matching is FIFO per `(src, dst, tag)` channel, like MPI's
    /// non-overtaking rule. If `src` has crashed and the channel is drained,
    /// no message can ever arrive: this rank fail-stops with
    /// [`crate::SimError::PeerCrashed`] (cascading job death — survivors'
    /// partial traces are salvaged by the layers above).
    pub fn recv(&self, src: u32, tag: u32) -> (Vec<u8>, RecvInfo) {
        assert!(src < self.nranks(), "recv from invalid rank {src}");
        let me = self.rank as usize;
        loop {
            let mut st = self.turn_begin();
            let t_start = st.clock_ns;
            if let Some(msg) = st.take_msg(src, self.rank, tag) {
                let len = msg.payload.len() as u64;
                let recv_ns = self.shared().cost.cost(OpClass::Recv, len);
                st.advance_clock(recv_ns);
                let t_end = st.clock_ns;
                st.events[me].push(MpiEvent {
                    rank: self.rank,
                    t_start,
                    t_end,
                    kind: EventKind::Recv {
                        src,
                        tag,
                        seq: msg.seq,
                    },
                });
                self.turn_end(st);
                return (
                    msg.payload,
                    RecvInfo {
                        src,
                        tag,
                        seq: msg.seq,
                        t_start,
                        t_end,
                    },
                );
            }
            if st.is_crashed(src) && !st.has_pending_msg(src, self.rank, tag) {
                let err = crate::error::SimError::PeerCrashed {
                    rank: self.rank,
                    peer: src,
                };
                self.abort_with(st, err);
            }
            let st = self.park(st, BlockReason::Recv);
            drop(st); // woken by a send or a peer crash: loop and re-check
        }
    }

    /// Broadcast `data` from `root` to every rank; returns the payload on
    /// all ranks.
    pub fn bcast(&self, root: u32, data: &[u8]) -> Vec<u8> {
        if self.rank == root {
            for dst in 0..self.nranks() {
                if dst != root {
                    self.send(dst, COLLECTIVE_TAG, data.to_vec());
                }
            }
            data.to_vec()
        } else {
            self.recv(root, COLLECTIVE_TAG).0
        }
    }

    /// Gather each rank's buffer at `root`. Returns `Some(buffers)` indexed
    /// by rank at the root, `None` elsewhere.
    pub fn gather(&self, root: u32, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        if self.rank == root {
            let mut out = vec![Vec::new(); self.nranks() as usize];
            out[root as usize] = mine.to_vec();
            for src in 0..self.nranks() {
                if src != root {
                    out[src as usize] = self.recv(src, COLLECTIVE_TAG).0;
                }
            }
            Some(out)
        } else {
            self.send(root, COLLECTIVE_TAG, mine.to_vec());
            None
        }
    }

    /// Gather everyone's buffer on every rank (gather at 0, then one framed
    /// broadcast — Θ(n) messages, not Θ(n²)).
    pub fn allgather(&self, mine: &[u8]) -> Vec<Vec<u8>> {
        let gathered = self.gather(0, mine);
        if self.rank == 0 {
            let parts = gathered.expect("root gather");
            let framed = frame(&parts);
            self.bcast(0, &framed);
            parts
        } else {
            let framed = self.bcast(0, &[]);
            unframe(&framed)
        }
    }

    /// Reduce each rank's `u64` at rank 0 with `combine`, then broadcast
    /// the 8-byte result — the skeleton under every scalar all-reduce.
    ///
    /// Same message count as an `allgather`-based formulation (a gather
    /// leg plus a broadcast leg, `n-1` messages each), but Θ(n) payload
    /// bytes instead of Θ(n²): the broadcast carries one scalar, not the
    /// framed concatenation of every contribution. At thousands of ranks
    /// the framed variant dominated entire runs — each of `n` receivers
    /// got its own clone of an `n`-entry blob.
    fn allreduce_u64(&self, mine: u64, combine: impl Fn(u64, u64) -> u64) -> u64 {
        let gathered = self.gather(0, &mine.to_le_bytes());
        if self.rank == 0 {
            let total = gathered
                .expect("root gather")
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload")))
                .fold(None, |acc: Option<u64>, v| {
                    Some(acc.map_or(v, |a| combine(a, v)))
                })
                .unwrap_or(0);
            self.bcast(0, &total.to_le_bytes());
            total
        } else {
            let b = self.bcast(0, &[]);
            u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload"))
        }
    }

    /// Sum-reduce a `u64` across all ranks; result on every rank.
    pub fn allreduce_sum_u64(&self, mine: u64) -> u64 {
        self.allreduce_u64(mine, |a, b| a.wrapping_add(b))
    }

    /// Max-reduce a `u64` across all ranks; result on every rank.
    pub fn allreduce_max_u64(&self, mine: u64) -> u64 {
        self.allreduce_u64(mine, std::cmp::max)
    }

    /// Exclusive prefix sum: rank r receives the sum over ranks < r.
    /// Scalar gather + scalar scatter — Θ(n) payload bytes, the same
    /// message count as the gather+broadcast shape above.
    pub fn exscan_sum_u64(&self, mine: u64) -> u64 {
        let gathered = self.gather(0, &mine.to_le_bytes());
        if self.rank == 0 {
            let vals: Vec<u64> = gathered
                .expect("root gather")
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload")))
                .collect();
            let mut acc = 0u64;
            let prefixes: Vec<Vec<u8>> = vals
                .iter()
                .map(|&v| {
                    let p = acc.to_le_bytes().to_vec();
                    acc = acc.wrapping_add(v);
                    p
                })
                .collect();
            let mine_out = self.scatter(0, Some(&prefixes));
            u64::from_le_bytes(mine_out.as_slice().try_into().expect("u64 payload"))
        } else {
            let b = self.scatter(0, None);
            u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload"))
        }
    }

    /// Scatter: rank `root`'s `parts[d]` is delivered to rank `d`.
    pub fn scatter(&self, root: u32, parts: Option<&[Vec<u8>]>) -> Vec<u8> {
        if self.rank == root {
            let parts = parts.expect("root must supply the parts");
            assert_eq!(parts.len(), self.nranks() as usize);
            for (dst, buf) in parts.iter().enumerate() {
                if dst as u32 != root {
                    self.send(dst as u32, COLLECTIVE_TAG, buf.clone());
                }
            }
            parts[root as usize].clone()
        } else {
            self.recv(root, COLLECTIVE_TAG).0
        }
    }

    /// Sum-reduce a `u64` to `root` only (cheaper than the all-variant:
    /// Θ(n) messages, no broadcast leg).
    pub fn reduce_sum_u64(&self, root: u32, mine: u64) -> Option<u64> {
        self.gather(root, &mine.to_le_bytes()).map(|parts| {
            parts
                .iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("u64 payload")))
                .sum()
        })
    }

    /// Combined send+receive with one partner each way (`MPI_Sendrecv`):
    /// posts the send first (buffered), then blocks on the receive, so
    /// symmetric exchanges cannot deadlock.
    pub fn sendrecv(
        &self,
        dst: u32,
        send_tag: u32,
        payload: Vec<u8>,
        src: u32,
        recv_tag: u32,
    ) -> Vec<u8> {
        self.send(dst, send_tag, payload);
        self.recv(src, recv_tag).0
    }

    /// Personalized all-to-all: `outgoing[d]` goes to rank `d`; returns the
    /// buffers received, indexed by source. Θ(n²) messages — fine at the 64
    /// ranks the paper focuses on; the MPI-IO layer uses targeted sends to
    /// aggregators instead at scale.
    pub fn alltoallv(&self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(outgoing.len(), self.nranks() as usize);
        let mut incoming = vec![Vec::new(); self.nranks() as usize];
        for (dst, buf) in outgoing.into_iter().enumerate() {
            if dst as u32 == self.rank {
                incoming[dst] = buf;
            } else {
                self.send(dst as u32, COLLECTIVE_TAG, buf);
            }
        }
        for src in 0..self.nranks() {
            if src != self.rank {
                incoming[src as usize] = self.recv(src, COLLECTIVE_TAG).0;
            }
        }
        incoming
    }

    fn shared(&self) -> &crate::world::Shared {
        &self.shared
    }
}

/// Length-prefix framing for allgather's broadcast leg.
fn frame(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| 4 + p.len()).sum();
    let mut out = Vec::with_capacity(4 + total);
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(p);
    }
    out
}

fn unframe(buf: &[u8]) -> Vec<Vec<u8>> {
    let n = u32::from_le_bytes(buf[0..4].try_into().expect("frame count")) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 4;
    for _ in 0..n {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("frame len")) as usize;
        pos += 4;
        out.push(buf[pos..pos + len].to_vec());
        pos += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let parts = vec![vec![1u8, 2, 3], vec![], vec![9u8; 100]];
        assert_eq!(unframe(&frame(&parts)), parts);
    }
}
