//! World construction, rank handles and the turn protocol.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use simrng::SimRng;

use crate::clock::{apply_skew, CostModel, OpClass};
use crate::error::SimError;
use crate::event::MpiEvent;
use crate::sched::{RankStatus, SchedMode, SimState};

/// Configuration for a simulated world.
#[derive(Debug, Clone)]
pub struct WorldCfg {
    /// Number of MPI ranks (threads).
    pub nranks: u32,
    /// Seed controlling both the deterministic scheduler and the per-rank
    /// clock skew.
    pub seed: u64,
    /// Scheduling discipline.
    pub mode: SchedMode,
    /// Maximum absolute per-rank clock skew, nanoseconds. The paper measured
    /// < 20 µs on Quartz; the default matches that bound.
    pub max_skew_ns: u64,
    /// Latency model.
    pub cost: CostModel,
    /// Initial simulated time. Jobs of a workflow chain their clocks by
    /// starting each world where the previous one ended.
    pub start_ns: u64,
}

impl WorldCfg {
    /// A deterministic world of `nranks` ranks with the paper-calibrated
    /// defaults.
    pub fn new(nranks: u32, seed: u64) -> Self {
        WorldCfg {
            nranks,
            seed,
            mode: SchedMode::Deterministic,
            max_skew_ns: 20_000, // 20 µs, the bound observed in §5.2
            cost: CostModel::default(),
            start_ns: 0,
        }
    }

    pub fn free_running(mut self) -> Self {
        self.mode = SchedMode::Free;
        self
    }

    pub fn with_max_skew_ns(mut self, ns: u64) -> Self {
        self.max_skew_ns = ns;
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

pub(crate) struct Shared {
    pub state: Mutex<SimState>,
    /// One condvar per rank. A rank only ever waits on its own entry; state
    /// mutations record which ranks must wake in `SimState::pending_wakes`
    /// and exactly those are signaled. With a single shared condvar every
    /// status transition woke all parked ranks (at n ranks, ~n wakeups per
    /// simulated op just to have n−1 go back to sleep), which dominated
    /// simulation wall time.
    pub cvs: Vec<Condvar>,
    pub nranks: u32,
    pub cost: CostModel,
    /// Immutable per-rank clock skew offsets (signed ns).
    pub skews: Vec<i64>,
}

/// A handle to one simulated world. Create with [`World::new`], obtain one
/// [`Rank`] per thread with [`World::rank`], or use [`World::run`] to drive
/// a closure on every rank.
pub struct World {
    pub(crate) shared: Arc<Shared>,
}

/// Everything a world run produces besides the per-rank return values:
/// the happens-before event log, the final simulated time, and the skew
/// offsets that were applied to recorded timestamps.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values of the rank closure, indexed by rank.
    pub results: Vec<T>,
    /// Per-rank communication event logs (true, unskewed timestamps).
    pub events: Vec<Vec<MpiEvent>>,
    /// Simulated time at the end of the run.
    pub final_time_ns: u64,
    /// The per-rank skew that was applied to recorded timestamps.
    pub skews_ns: Vec<i64>,
}

impl World {
    pub fn new(cfg: &WorldCfg) -> Self {
        assert!(cfg.nranks > 0, "world must have at least one rank");
        let mut skew_rng = SimRng::seed_from_u64(cfg.seed ^ 0x0c10_c0c1_0c0c_105e);
        let skews = (0..cfg.nranks)
            .map(|_| {
                if cfg.max_skew_ns == 0 {
                    0
                } else {
                    skew_rng.range_i64_inclusive(-(cfg.max_skew_ns as i64), cfg.max_skew_ns as i64)
                }
            })
            .collect();
        World {
            shared: Arc::new(Shared {
                state: Mutex::new(SimState::new(cfg.nranks, cfg.seed, cfg.mode, cfg.start_ns)),
                cvs: (0..cfg.nranks).map(|_| Condvar::new()).collect(),
                nranks: cfg.nranks,
                cost: cfg.cost.clone(),
                skews,
            }),
        }
    }

    /// The rank handle for `rank`; each thread must use exactly one.
    pub fn rank(&self, rank: u32) -> Rank {
        assert!(
            rank < self.shared.nranks,
            "{}",
            SimError::InvalidRank {
                rank,
                nranks: self.shared.nranks
            }
        );
        Rank {
            shared: Arc::clone(&self.shared),
            rank,
        }
    }

    /// Spawn one thread per rank running `f`, wait for all of them, and
    /// collect results plus the event log.
    ///
    /// # Panics
    /// Panics (propagating from rank threads) if the simulated program
    /// deadlocks or a rank panics.
    pub fn run<T, F>(cfg: &WorldCfg, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(Rank) -> T + Sync,
    {
        let world = World::new(cfg);
        let results: Vec<T> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.nranks)
                .map(|r| {
                    let rank = world.rank(r);
                    let f = &f;
                    s.spawn(move || {
                        let out = f(rank.clone_handle());
                        rank.finish();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        });
        let mut st = world.shared.state.lock().unwrap();
        RunOutput {
            results,
            events: std::mem::take(&mut st.events),
            final_time_ns: st.clock_ns,
            skews_ns: world.shared.skews.clone(),
        }
    }
}

/// One simulated MPI rank. Owned by the thread that plays that rank.
/// Cloning yields another handle to the same rank (useful for layered
/// wrappers); all handles of one rank must stay on that rank's thread.
pub struct Rank {
    pub(crate) shared: Arc<Shared>,
    pub(crate) rank: u32,
}

impl Clone for Rank {
    fn clone(&self) -> Self {
        self.clone_handle()
    }
}

impl Rank {
    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn nranks(&self) -> u32 {
        self.shared.nranks
    }

    /// The skew offset applied to this rank's recorded timestamps.
    pub fn skew_ns(&self) -> i64 {
        self.shared.skews[self.rank as usize]
    }

    /// Convert a true simulated timestamp into this rank's skewed local
    /// clock reading — what the tracer records.
    pub fn local_clock(&self, true_ns: u64) -> u64 {
        apply_skew(true_ns, self.skew_ns())
    }

    /// Current true simulated time. Takes the world lock; mainly for tests
    /// and reporting.
    pub fn now(&self) -> u64 {
        self.shared.state.lock().unwrap().clock_ns
    }

    pub(crate) fn clone_handle(&self) -> Rank {
        Rank {
            shared: Arc::clone(&self.shared),
            rank: self.rank,
        }
    }

    /// Signal every rank queued in `pending_wakes` (except ourselves: the
    /// caller re-checks its own predicate before sleeping). Must run before
    /// the mutating thread sleeps or releases the lock, so no wake is lost.
    fn drain_wakes(&self, st: &mut SimState) {
        while let Some(r) = st.pending_wakes.pop() {
            if r != self.rank {
                self.shared.cvs[r as usize].notify_one();
            }
        }
    }

    /// Acquire the scheduler turn. Returns with the world lock held and
    /// this rank's status set to `Granted`.
    pub(crate) fn turn_begin(&self) -> MutexGuard<'_, SimState> {
        let mut st = self.shared.state.lock().unwrap();
        let me = self.rank as usize;
        st.status[me] = RankStatus::Requesting;
        st.try_dispatch();
        self.drain_wakes(&mut st);
        loop {
            if st.deadlocked {
                let blocked = st.blocked_ranks();
                drop(st);
                panic!("{}", SimError::Deadlock { blocked });
            }
            if st.status[me] == RankStatus::Granted {
                return st;
            }
            st = self.shared.cvs[me].wait(st).unwrap();
        }
    }

    /// Release the turn acquired by [`Rank::turn_begin`].
    pub(crate) fn turn_end(&self, mut st: MutexGuard<'_, SimState>) {
        let me = self.rank as usize;
        st.status[me] = RankStatus::Computing;
        st.try_dispatch();
        self.drain_wakes(&mut st);
    }

    /// Park this rank with `reason` (caller holds the turn), and return when
    /// some other rank wakes it. The returned guard holds the world lock;
    /// the rank is back in `Computing` and must re-request the turn for its
    /// next operation.
    pub(crate) fn park<'a>(
        &'a self,
        mut st: MutexGuard<'a, SimState>,
        reason: crate::sched::BlockReason,
    ) -> MutexGuard<'a, SimState> {
        let me = self.rank as usize;
        st.status[me] = RankStatus::Blocked(reason);
        st.try_dispatch();
        self.drain_wakes(&mut st);
        loop {
            if st.deadlocked {
                let blocked = st.blocked_ranks();
                drop(st);
                panic!("{}", SimError::Deadlock { blocked });
            }
            if !matches!(st.status[me], RankStatus::Blocked(_)) {
                return st;
            }
            st = self.shared.cvs[me].wait(st).unwrap();
        }
    }

    /// Execute `f` while holding the turn, after advancing the simulated
    /// clock by the cost of `(class, bytes)`. `f` receives the operation's
    /// start time and runs with exclusive access to all shared simulation
    /// state — this is the hook the file-system layer uses. Returns
    /// `(t_start, t_end, f(t_start))` in true simulated time.
    pub fn timed_op<R>(
        &self,
        class: OpClass,
        bytes: u64,
        f: impl FnOnce(u64) -> R,
    ) -> (u64, u64, R) {
        let mut st = self.turn_begin();
        let t0 = st.clock_ns;
        st.clock_ns += self.shared.cost.cost(class, bytes);
        let t1 = st.clock_ns;
        let r = f(t0);
        self.turn_end(st);
        (t0, t1, r)
    }

    /// Advance the clock by `ns` of pure computation.
    pub fn compute(&self, ns: u64) {
        let (_, _, ()) = self.timed_op(OpClass::Compute, ns, |_| {});
    }

    /// Mark this rank finished. Called automatically by [`World::run`].
    pub fn finish(&self) {
        let mut st = self.shared.state.lock().unwrap();
        st.status[self.rank as usize] = RankStatus::Finished;
        st.try_dispatch();
        self.drain_wakes(&mut st);
    }
}
