//! World construction, rank handles and the turn protocol.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use simrng::SimRng;

use crate::clock::{apply_skew, CostModel, OpClass};
use crate::error::{SimAbort, SimError};
use crate::event::MpiEvent;
use crate::fault::{FaultPlan, IoFault};
use crate::sched::{RankStatus, SchedMode, SimState};
use crate::sink::EpochSinkHandle;

/// Upper bound on the rank count of one world. The task executor commits
/// stack pages lazily, so the real ceiling is address space and patience,
/// not memory — but a rank count beyond this is always a typo or a unit
/// error, and front ends reject it before allocating anything.
pub const MAX_RANKS: u32 = 65_536;

/// How rank programs are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// Every rank is a resumable stackful task; one OS thread drives all of
    /// them on a discrete-event loop, switching at exactly the points where
    /// the scheduler would have parked a thread. The default where
    /// supported: byte-identical traces to [`ExecModel::Threads`] under the
    /// deterministic scheduler modes, at a fraction of the wall-clock and
    /// memory. See `DESIGN.md` §14.
    Tasks,
    /// One OS thread per rank — the original executor, kept as the oracle
    /// the task engine is regression-tested against, and as the fallback on
    /// architectures without a context-switch implementation.
    Threads,
}

impl ExecModel {
    /// [`ExecModel::Tasks`] where the coroutine engine exists for this
    /// architecture, [`ExecModel::Threads`] otherwise.
    pub fn default_for_host() -> Self {
        if crate::task::supported() {
            ExecModel::Tasks
        } else {
            ExecModel::Threads
        }
    }
}

/// Configuration for a simulated world.
#[derive(Debug, Clone)]
pub struct WorldCfg {
    /// Number of MPI ranks (tasks or threads, per [`WorldCfg::exec`]).
    pub nranks: u32,
    /// Seed controlling both the deterministic scheduler and the per-rank
    /// clock skew.
    pub seed: u64,
    /// Scheduling discipline.
    pub mode: SchedMode,
    /// Maximum absolute per-rank clock skew, nanoseconds. The paper measured
    /// < 20 µs on Quartz; the default matches that bound.
    pub max_skew_ns: u64,
    /// Latency model.
    pub cost: CostModel,
    /// Initial simulated time. Jobs of a workflow chain their clocks by
    /// starting each world where the previous one ended.
    pub start_ns: u64,
    /// Pre-committed fault schedule; [`FaultPlan::none`] for a clean run.
    pub faults: FaultPlan,
    /// Human-readable label naming this world's rank timelines in exported
    /// traces (e.g. the report config name). Empty is fine; it only
    /// affects observability output, never simulation behaviour.
    pub label: String,
    /// Optional streaming sink notified of epoch commits and rank stops
    /// (see [`crate::sink`]); `None` costs nothing.
    pub epoch_sink: Option<EpochSinkHandle>,
    /// Rank execution engine. [`ExecModel::Tasks`] (the host default) and
    /// [`ExecModel::Threads`] produce byte-identical traces under the
    /// deterministic scheduler modes.
    pub exec: ExecModel,
}

impl WorldCfg {
    /// A deterministic world of `nranks` ranks with the paper-calibrated
    /// defaults.
    pub fn new(nranks: u32, seed: u64) -> Self {
        WorldCfg {
            nranks,
            seed,
            mode: SchedMode::Deterministic,
            max_skew_ns: 20_000, // 20 µs, the bound observed in §5.2
            cost: CostModel::default(),
            start_ns: 0,
            faults: FaultPlan::none(),
            label: String::new(),
            epoch_sink: None,
            exec: ExecModel::default_for_host(),
        }
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    pub fn free_running(mut self) -> Self {
        self.mode = SchedMode::Free;
        self
    }

    /// Use per-operation lockstep instead of the default burst grants.
    pub fn per_op_lockstep(mut self) -> Self {
        self.mode = SchedMode::DeterministicPerOp;
        self
    }

    pub fn with_max_skew_ns(mut self, ns: u64) -> Self {
        self.max_skew_ns = ns;
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a streaming epoch sink (see [`crate::sink`]).
    pub fn with_epoch_sink(mut self, sink: EpochSinkHandle) -> Self {
        self.epoch_sink = Some(sink);
        self
    }

    /// Select the rank execution engine explicitly.
    pub fn with_exec(mut self, exec: ExecModel) -> Self {
        self.exec = exec;
        self
    }

    /// Run ranks as OS threads (the pre-task oracle executor).
    pub fn threaded_ranks(mut self) -> Self {
        self.exec = ExecModel::Threads;
        self
    }
}

pub(crate) struct Shared {
    pub state: Mutex<SimState>,
    /// One condvar per rank. A rank only ever waits on its own entry; state
    /// mutations record which ranks must wake in `SimState::pending_wakes`
    /// and exactly those are signaled. With a single shared condvar every
    /// status transition woke all parked ranks (at n ranks, ~n wakeups per
    /// simulated op just to have n−1 go back to sleep), which dominated
    /// simulation wall time.
    pub cvs: Vec<Condvar>,
    pub nranks: u32,
    pub cost: CostModel,
    /// Immutable per-rank clock skew offsets (signed ns).
    pub skews: Vec<i64>,
    /// Whether the fault plan contains any I/O faults at all; lets the
    /// harness skip the per-op fault probe (a lock acquisition) entirely
    /// on clean runs.
    pub has_io_faults: bool,
    /// Whether ranks run as tasks on the event loop (true) or as OS
    /// threads (false). Decides how a rank suspends: yield to the driving
    /// loop vs. condvar wait. Fixed at world creation.
    pub task_mode: bool,
}

/// A caught panic payload, carried from the rank that raised it to the
/// driving thread, which re-panics with it after the world drains.
type Payload = Box<dyn std::any::Any + Send>;

/// Lock a poisonable mutex, tolerating poison: a rank thread that panicked
/// while holding the lock must not cascade panics into every other rank —
/// graceful degradation means the survivors keep draining their state.
pub(crate) fn lock_state(m: &Mutex<SimState>) -> MutexGuard<'_, SimState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Suppress the default "thread panicked" stderr noise for the controlled
/// [`SimAbort`] unwinds; every other panic goes to the previous hook
/// untouched. Installed once per process, delegating.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Best-effort human-readable message from a caught panic payload, for
/// the fault record of a rank that died to a genuine bug.
fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string payload".to_string()
    }
}

/// A handle to one simulated world. Create with [`World::new`], obtain one
/// [`Rank`] per thread with [`World::rank`], or use [`World::run`] to drive
/// a closure on every rank.
pub struct World {
    pub(crate) shared: Arc<Shared>,
}

/// Everything a world run produces besides the per-rank return values:
/// the happens-before event log, the final simulated time, and the skew
/// offsets that were applied to recorded timestamps.
#[derive(Debug)]
pub struct RunOutput<T> {
    /// Per-rank return values of the rank closure, indexed by rank.
    /// `None` for a rank whose closure was cut short by a fail-stop abort
    /// it did not catch (layers that salvage partial state catch the
    /// [`SimAbort`] unwind inside the closure and still return a value).
    pub results: Vec<Option<T>>,
    /// Terminal fault of each rank, if any, indexed by rank. A run with
    /// injected crashes completes `Ok` and reports them here.
    pub faults: Vec<Option<SimError>>,
    /// Per-rank communication event logs (true, unskewed timestamps).
    pub events: Vec<Vec<MpiEvent>>,
    /// Simulated time at the end of the run.
    pub final_time_ns: u64,
    /// The per-rank skew that was applied to recorded timestamps.
    pub skews_ns: Vec<i64>,
}

impl<T> RunOutput<T> {
    /// The per-rank results of a run expected to be fault-free.
    ///
    /// # Panics
    /// Panics if any rank failed to produce a value.
    pub fn expect_results(self) -> Vec<T> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(r, v)| v.unwrap_or_else(|| panic!("rank {r} produced no result")))
            .collect()
    }
}

impl World {
    /// A world whose ranks are driven by caller-owned threads (one per
    /// rank, via [`World::rank`]). [`World::run`] constructs its own world
    /// and honours [`WorldCfg::exec`] instead.
    pub fn new(cfg: &WorldCfg) -> Self {
        Self::new_internal(cfg, false)
    }

    fn new_internal(cfg: &WorldCfg, task_mode: bool) -> Self {
        assert!(cfg.nranks > 0, "world must have at least one rank");
        assert!(
            cfg.nranks <= MAX_RANKS,
            "world of {} ranks exceeds MAX_RANKS ({MAX_RANKS})",
            cfg.nranks
        );
        let mut skew_rng = SimRng::seed_from_u64(cfg.seed ^ 0x0c10_c0c1_0c0c_105e);
        let skews = (0..cfg.nranks)
            .map(|_| {
                if cfg.max_skew_ns == 0 {
                    0
                } else {
                    skew_rng.range_i64_inclusive(-(cfg.max_skew_ns as i64), cfg.max_skew_ns as i64)
                }
            })
            .collect();
        let has_io_faults = cfg
            .faults
            .sites()
            .iter()
            .any(|s| matches!(s.kind, crate::fault::FaultKind::Io(_)));
        let mut state = SimState::new(cfg.nranks, cfg.seed, cfg.mode, cfg.start_ns, &cfg.faults);
        state.epoch_sink = cfg.epoch_sink.clone();
        if let Some(base) = state.trace_pid_base {
            let label = if cfg.label.is_empty() {
                "world"
            } else {
                &cfg.label
            };
            for r in 0..cfg.nranks {
                obs::process_name(base + r as u64, format!("{label} rank {r} (sim)"));
            }
        }
        World {
            shared: Arc::new(Shared {
                state: Mutex::new(state),
                cvs: (0..cfg.nranks).map(|_| Condvar::new()).collect(),
                nranks: cfg.nranks,
                cost: cfg.cost.clone(),
                skews,
                has_io_faults,
                task_mode,
            }),
        }
    }

    /// The rank handle for `rank`; each thread must use exactly one.
    pub fn rank(&self, rank: u32) -> Rank {
        assert!(
            rank < self.shared.nranks,
            "{}",
            SimError::InvalidRank {
                rank,
                nranks: self.shared.nranks
            }
        );
        Rank {
            shared: Arc::clone(&self.shared),
            rank,
        }
    }

    /// Run `f` on every rank — tasks on one event loop or one OS thread
    /// per rank, per [`WorldCfg::exec`] — wait for all of them, and
    /// collect results plus the event log.
    ///
    /// Runtime failures are reported, not panicked: a deadlock (every live
    /// rank blocked — an application bug) fails the whole run with `Err`,
    /// while per-rank fail-stops (injected crashes, cascaded peer crashes,
    /// unrecoverable I/O) leave the run `Ok` with the affected ranks'
    /// entries in [`RunOutput::faults`] set and their results possibly
    /// `None`. A genuine panic in application code still propagates —
    /// but only after the panicking rank is marked crashed in the
    /// scheduler, so surviving ranks drain (finish or cascade-abort)
    /// instead of waiting forever on a dead rank's token.
    pub fn run<T, F>(cfg: &WorldCfg, f: F) -> Result<RunOutput<T>, SimError>
    where
        T: Send,
        F: Fn(Rank) -> T + Sync,
    {
        install_quiet_abort_hook();
        let task_mode = cfg.exec == ExecModel::Tasks && crate::task::supported();
        let world = World::new_internal(cfg, task_mode);
        let (results, panicked) = if task_mode {
            Self::run_tasks(&world, cfg, &f)
        } else {
            Self::run_threads(&world, cfg, &f)
        };
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        let mut st = lock_state(&world.shared.state);
        // Observability flush: one aggregate pass per world, never per op —
        // the per-op fast path stays untouched so instrumented runs hold
        // the <2% overhead budget.
        if let Some(base) = st.trace_pid_base {
            for r in 0..cfg.nranks as usize {
                let dur = st.clock_ns.saturating_sub(cfg.start_ns);
                let args = vec![
                    ("rank", obs::Arg::U(r as u64)),
                    ("ops", obs::Arg::U(st.op_index[r])),
                    ("crashed", obs::Arg::U(st.faults[r].is_some() as u64)),
                ];
                st.buf_span(base + r as u64, "run", cfg.start_ns, dur, args);
            }
            obs::span::push_bulk(&mut st.trace_buf);
        }
        if obs::metrics_enabled() {
            let m = obs::metrics();
            m.add("mpisim.worlds", 1);
            m.add("mpisim.ops", st.op_index.iter().sum());
            m.add("mpisim.messages", st.next_msg_seq);
            m.add("mpisim.barrier_epochs", st.barrier_epoch);
            m.add("mpisim.crashes", st.faults.iter().flatten().count() as u64);
            if st.deadlocked {
                m.add("mpisim.deadlocks", 1);
            }
        }
        if st.deadlocked {
            return Err(SimError::Deadlock {
                blocked: st.blocked_ranks(),
            });
        }
        Ok(RunOutput {
            results,
            faults: std::mem::take(&mut st.faults),
            events: std::mem::take(&mut st.events),
            final_time_ns: st.clock_ns,
            skews_ns: world.shared.skews.clone(),
        })
    }

    /// The thread-per-rank executor (the oracle path).
    fn run_threads<T, F>(world: &World, cfg: &WorldCfg, f: &F) -> (Vec<Option<T>>, Option<Payload>)
    where
        T: Send,
        F: Fn(Rank) -> T + Sync,
    {
        let mut panicked: Option<Payload> = None;
        let results: Vec<Option<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.nranks)
                .map(|r| {
                    let rank = world.rank(r);
                    s.spawn(move || -> Result<Option<T>, Payload> {
                        match std::panic::catch_unwind(AssertUnwindSafe(|| f(rank.clone_handle())))
                        {
                            Ok(out) => {
                                rank.finish();
                                Ok(Some(out))
                            }
                            Err(payload) => {
                                if payload.downcast_ref::<SimAbort>().is_some() {
                                    // Controlled fail-stop; the aborting path
                                    // already recorded the fault in SimState.
                                    Ok(None)
                                } else {
                                    // A bug escaped the rank closure. Crash
                                    // the rank in the scheduler first so the
                                    // world can drain, then hand the payload
                                    // to the caller's thread to re-panic.
                                    rank.poison(format!(
                                        "panic: {}",
                                        panic_payload_message(&payload)
                                    ));
                                    Err(payload)
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(v)) => v,
                    Ok(Err(payload)) => {
                        panicked.get_or_insert(payload);
                        None
                    }
                    Err(payload) => {
                        panicked.get_or_insert(payload);
                        None
                    }
                })
                .collect()
        });
        (results, panicked)
    }

    /// The event-loop executor: every rank is a stackful task; this (the
    /// caller's thread) is the scheduler, resuming one task at a time.
    ///
    /// The loop is wake-driven. A running task that changes another rank's
    /// status queues it in `SimState::pending_wakes` exactly as under
    /// threads — but with `Shared::task_mode` set, `Rank::drain_wakes`
    /// leaves the queue alone instead of signaling condvars, and the loop
    /// transfers it into its run queue after every resume. Resumes can be
    /// spurious (a queued rank may have been woken for a predicate that no
    /// longer holds); that is safe because every suspension site is a
    /// predicate-recheck loop, identical to a spurious condvar wakeup.
    ///
    /// Determinism: under the lockstep scheduler modes the grant sequence
    /// is a pure function of `(seed, program, faults)` — an RNG draw only
    /// happens once every live rank has declared itself, and the pick is
    /// by rank index over the requester set, not by arrival order — so
    /// driving ranks from this loop instead of OS threads reproduces the
    /// thread executor's traces byte for byte (see `sched_equivalence.rs`).
    fn run_tasks<T, F>(world: &World, cfg: &WorldCfg, f: &F) -> (Vec<Option<T>>, Option<Payload>)
    where
        T: Send,
        F: Fn(Rank) -> T + Sync,
    {
        use std::cell::RefCell;
        use std::collections::VecDeque;

        let n = cfg.nranks as usize;
        let stack_bytes = crate::task::stack_bytes_from_env();
        let results: Vec<RefCell<Option<T>>> = (0..n).map(|_| RefCell::new(None)).collect();
        let panicked: RefCell<Option<Payload>> = RefCell::new(None);
        let mut tasks: Vec<crate::task::Task> = (0..cfg.nranks)
            .map(|r| {
                let rank = world.rank(r);
                let slot = &results[r as usize];
                let panicked = &panicked;
                // SAFETY: every task is resumed to completion below before
                // `results`, `panicked` and `f` go out of scope, and all
                // resumes happen on this thread.
                unsafe {
                    crate::task::Task::new(
                        stack_bytes,
                        Box::new(move || {
                            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                f(rank.clone_handle())
                            })) {
                                Ok(out) => {
                                    rank.finish();
                                    *slot.borrow_mut() = Some(out);
                                }
                                Err(payload) => {
                                    if payload.downcast_ref::<SimAbort>().is_some() {
                                        // Controlled fail-stop; the aborting
                                        // path already recorded the fault.
                                    } else {
                                        // A bug escaped the rank closure.
                                        // Crash the rank so the world drains,
                                        // then save the payload for the
                                        // driver to re-panic with.
                                        rank.poison(format!(
                                            "panic: {}",
                                            panic_payload_message(&payload)
                                        ));
                                        panicked.borrow_mut().get_or_insert(payload);
                                    }
                                }
                            }
                        }),
                    )
                }
            })
            .collect();

        let mut runq: VecDeque<u32> = VecDeque::with_capacity(n);
        let mut queued = vec![false; n];
        let mut switches: u64 = 0;
        let drain = |runq: &mut VecDeque<u32>, queued: &mut Vec<bool>| {
            let mut st = lock_state(&world.shared.state);
            while let Some(r) = st.pending_wakes.pop() {
                if !queued[r as usize] {
                    queued[r as usize] = true;
                    runq.push_back(r);
                }
            }
        };
        // Start every rank once, in rank order. Under lockstep no grant can
        // fire before the last rank has declared itself, so the start order
        // cannot influence the schedule; fixing it anyway keeps even Free
        // mode repeatable on this executor.
        for t in tasks.iter_mut() {
            t.resume();
            switches += 1;
            drain(&mut runq, &mut queued);
        }
        while let Some(r) = runq.pop_front() {
            queued[r as usize] = false;
            let t = &mut tasks[r as usize];
            if t.finished() {
                // Deadlock declaration (and some crash paths) wake every
                // rank, including ones already done.
                continue;
            }
            t.resume();
            switches += 1;
            drain(&mut runq, &mut queued);
        }
        if let Some(stuck) = tasks.iter().position(|t| !t.finished()) {
            // Unreachable by construction: an empty run queue with an
            // unfinished task would mean a suspension site that nobody ever
            // wakes — every such site is covered by pending_wakes (grants,
            // unparks, deadlock declaration). Abandoning a suspended task
            // would leak its stack frames, so fail loudly instead.
            let st = lock_state(&world.shared.state);
            panic!(
                "event loop stalled: rank {stuck} never finished \
                 (status {:?}, deadlocked={})",
                st.status[stuck], st.deadlocked
            );
        }
        if obs::metrics_enabled() {
            let m = obs::metrics();
            m.add("mpisim.task_switches", switches);
            m.set_max("sim.live_tasks", n as u64);
            m.set_max("sim.task_mem_peak_bytes", (n * stack_bytes) as u64);
        }
        (
            results.into_iter().map(|c| c.into_inner()).collect(),
            panicked.into_inner(),
        )
    }
}

/// One simulated MPI rank. Owned by the thread that plays that rank.
/// Cloning yields another handle to the same rank (useful for layered
/// wrappers); all handles of one rank must stay on that rank's thread.
pub struct Rank {
    pub(crate) shared: Arc<Shared>,
    pub(crate) rank: u32,
}

impl Clone for Rank {
    fn clone(&self) -> Self {
        self.clone_handle()
    }
}

impl Rank {
    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn nranks(&self) -> u32 {
        self.shared.nranks
    }

    /// The skew offset applied to this rank's recorded timestamps.
    pub fn skew_ns(&self) -> i64 {
        self.shared.skews[self.rank as usize]
    }

    /// Convert a true simulated timestamp into this rank's skewed local
    /// clock reading — what the tracer records.
    pub fn local_clock(&self, true_ns: u64) -> u64 {
        apply_skew(true_ns, self.skew_ns())
    }

    /// Current true simulated time. Takes the world lock; mainly for tests
    /// and reporting.
    pub fn now(&self) -> u64 {
        lock_state(&self.shared.state).clock_ns
    }

    pub(crate) fn clone_handle(&self) -> Rank {
        Rank {
            shared: Arc::clone(&self.shared),
            rank: self.rank,
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, SimState> {
        lock_state(&self.shared.state)
    }

    /// Signal every rank queued in `pending_wakes` (except ourselves: the
    /// caller re-checks its own predicate before sleeping). Must run before
    /// the mutating thread sleeps or releases the lock, so no wake is lost.
    ///
    /// Under the task executor this is a no-op: the event loop transfers
    /// `pending_wakes` into its run queue after every task switch, and no
    /// wake can be missed because nothing else runs until this rank yields
    /// back to the loop.
    fn drain_wakes(&self, st: &mut SimState) {
        if self.shared.task_mode {
            return;
        }
        while let Some(r) = st.pending_wakes.pop() {
            if r != self.rank {
                self.shared.cvs[r as usize].notify_one();
            }
        }
    }

    /// Suspend this rank until its status may have changed: a condvar wait
    /// under the thread executor, a yield back to the event loop under the
    /// task executor. Either way the world lock is released while
    /// suspended and re-held on return, and the return may be spurious —
    /// every caller sits in a predicate-recheck loop.
    fn await_wake<'a>(&'a self, st: MutexGuard<'a, SimState>) -> MutexGuard<'a, SimState> {
        if self.shared.task_mode {
            debug_assert!(
                crate::task::in_task(),
                "task-mode world driven from outside the event loop"
            );
            drop(st);
            crate::task::yield_now();
            self.lock_state()
        } else {
            self.shared.cvs[self.rank as usize]
                .wait(st)
                .unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Fail-stop this rank: record the fault, let the world adapt (barrier
    /// departure, receiver wakeups), and unwind the rank thread with the
    /// [`SimAbort`] payload. Never returns.
    pub(crate) fn abort_with(&self, mut st: MutexGuard<'_, SimState>, err: SimError) -> ! {
        st.crash_rank(self.rank, err.clone());
        self.drain_wakes(&mut st);
        drop(st);
        std::panic::panic_any(SimAbort(err));
    }

    /// Fail-stop this rank from a layer above the runtime (e.g. the I/O
    /// harness after exhausting retries). Unwinds with [`SimAbort`];
    /// callers salvage partial state by catching it inside the rank
    /// closure. Never returns.
    pub fn fail_stop(&self, cause: String) -> ! {
        let mut st = self.lock_state();
        let at_op = st.op_index[self.rank as usize];
        let err = SimError::RankCrashed {
            rank: self.rank,
            at_op,
            cause,
        };
        st.crash_rank(self.rank, err.clone());
        self.drain_wakes(&mut st);
        drop(st);
        std::panic::panic_any(SimAbort(err));
    }

    /// Crash this rank in the scheduler without unwinding — the cleanup
    /// half of [`Rank::fail_stop`], for when the thread is *already*
    /// unwinding with a genuine panic. Records the fault and wakes every
    /// waiter so the world drains instead of hanging on a dead thread.
    pub(crate) fn poison(&self, cause: String) {
        let mut st = self.lock_state();
        if st.is_crashed(self.rank) {
            return;
        }
        let at_op = st.op_index[self.rank as usize];
        let err = SimError::RankCrashed {
            rank: self.rank,
            at_op,
            cause,
        };
        st.crash_rank(self.rank, err);
        self.drain_wakes(&mut st);
    }

    /// Consume this rank's next due I/O fault, if the world's fault plan
    /// scheduled one at or before the rank's current op index. The probe is
    /// free when the plan holds no I/O faults.
    pub fn take_io_fault(&self) -> Option<IoFault> {
        if !self.shared.has_io_faults {
            return None;
        }
        let mut st = self.lock_state();
        st.take_io_fault(self.rank)
    }

    /// Acquire the scheduler turn. Returns with the world lock held and
    /// this rank's status set to `Granted`. Increments the rank's op index
    /// and fires a planned crash scheduled for it.
    pub(crate) fn turn_begin(&self) -> MutexGuard<'_, SimState> {
        let mut st = self.lock_state();
        let me = self.rank as usize;
        let op = st.op_index[me];
        st.op_index[me] = op + 1;
        if st.take_crash(self.rank, op) {
            let err = SimError::RankCrashed {
                rank: self.rank,
                at_op: op,
                cause: "injected crash".to_string(),
            };
            self.abort_with(st, err);
        }
        if st.status[me] == RankStatus::Granted {
            // Burst mode: we kept the token across the previous
            // `turn_end`, so this operation proceeds without a re-draw —
            // but not before every other rank has stopped computing.
            // Grants already enforce that rule; burst continuations must
            // too, or the clock would advance while a computing rank can
            // observe it (`Rank::now` reads in layer code are taken
            // between operations), breaking schedule determinism.
            while st.any_computing() {
                // Declare the park so the transition that zeroes
                // `n_computing` wakes us (`SimState::holder_waiting`);
                // undeclared, no status change targets the holder. Set
                // under the same lock the transition takes — no lost wake.
                st.holder_waiting = true;
                st = self.await_wake(st);
            }
            st.holder_waiting = false;
            return st;
        }
        st.set_status(me, RankStatus::Requesting);
        st.try_dispatch();
        self.drain_wakes(&mut st);
        loop {
            if st.deadlocked {
                let blocked = st.blocked_ranks();
                drop(st);
                std::panic::panic_any(SimAbort(SimError::Deadlock { blocked }));
            }
            if st.status[me] == RankStatus::Granted {
                return st;
            }
            st = self.await_wake(st);
        }
    }

    /// Release the turn acquired by [`Rank::turn_begin`]. Under burst
    /// grants ([`SchedMode::Deterministic`]) the rank *keeps* the token —
    /// it is released at the next park, finish, or crash, the only points
    /// where the rank cannot proceed anyway — so consecutive operations of
    /// one rank cost no condvar handoff. Wakes queued by the operation
    /// (e.g. a receiver unblocked by `put_msg`) are still signaled.
    pub(crate) fn turn_end(&self, mut st: MutexGuard<'_, SimState>) {
        if st.mode == SchedMode::Deterministic {
            self.drain_wakes(&mut st);
            return;
        }
        let me = self.rank as usize;
        st.set_status(me, RankStatus::Computing);
        st.try_dispatch();
        self.drain_wakes(&mut st);
    }

    /// Park this rank with `reason` (caller holds the turn), and return when
    /// some other rank wakes it. The returned guard holds the world lock;
    /// the rank is back in `Computing` and must re-request the turn for its
    /// next operation.
    pub(crate) fn park<'a>(
        &'a self,
        mut st: MutexGuard<'a, SimState>,
        reason: crate::sched::BlockReason,
    ) -> MutexGuard<'a, SimState> {
        let me = self.rank as usize;
        let blocked_from_ns = st.clock_ns;
        st.set_status(me, RankStatus::Blocked(reason));
        st.try_dispatch();
        self.drain_wakes(&mut st);
        loop {
            if st.deadlocked {
                let blocked = st.blocked_ranks();
                drop(st);
                std::panic::panic_any(SimAbort(SimError::Deadlock { blocked }));
            }
            if !matches!(st.status[me], RankStatus::Blocked(_)) {
                if let Some(base) = st.trace_pid_base {
                    let name = match reason {
                        crate::sched::BlockReason::Recv => "blocked:recv",
                        crate::sched::BlockReason::Barrier { .. } => "blocked:barrier",
                    };
                    // No args: the pid names the rank, and an empty Vec
                    // does not allocate — this is the scheduler's hottest
                    // instrumentation site.
                    let dur = st.clock_ns.saturating_sub(blocked_from_ns);
                    st.buf_span(
                        base + self.rank as u64,
                        name,
                        blocked_from_ns,
                        dur,
                        Vec::new(),
                    );
                }
                return st;
            }
            st = self.await_wake(st);
        }
    }

    /// Execute `f` while holding the turn, after advancing the simulated
    /// clock by the cost of `(class, bytes)`. `f` receives the operation's
    /// start time and runs with exclusive access to all shared simulation
    /// state — this is the hook the file-system layer uses. Returns
    /// `(t_start, t_end, f(t_start))` in true simulated time.
    pub fn timed_op<R>(
        &self,
        class: OpClass,
        bytes: u64,
        f: impl FnOnce(u64) -> R,
    ) -> (u64, u64, R) {
        let mut st = self.turn_begin();
        let t0 = st.clock_ns;
        st.advance_clock(self.shared.cost.cost(class, bytes));
        let t1 = st.clock_ns;
        let r = f(t0);
        self.turn_end(st);
        (t0, t1, r)
    }

    /// Advance the clock by `ns` of pure computation.
    pub fn compute(&self, ns: u64) {
        let (_, _, ()) = self.timed_op(OpClass::Compute, ns, |_| {});
    }

    /// Mark this rank finished. Called automatically by [`World::run`].
    /// A no-op for a crashed rank (the crash is its terminal state).
    pub fn finish(&self) {
        let mut st = self.lock_state();
        if st.status[self.rank as usize] != RankStatus::Crashed {
            st.set_status(self.rank as usize, RankStatus::Finished);
        }
        st.try_dispatch();
        self.drain_wakes(&mut st);
    }
}
