//! The lockstep token scheduler and the shared simulator state.
//!
//! All mutable simulator state lives in one [`SimState`] behind a single
//! mutex; per-rank condvars coordinate rank threads (a mutation queues the
//! affected ranks in [`SimState::pending_wakes`] and only those are
//! signaled). A rank performs a simulated operation by acquiring the *turn*:
//!
//! * it marks itself `Requesting` and waits until dispatched;
//! * dispatch (deterministic mode) waits until **every** live rank is either
//!   requesting, blocked, or finished — i.e. no rank is still computing —
//!   then grants the turn to a seeded-RNG choice among the requesters;
//! * the granted rank advances the simulated clock and mutates shared state
//!   (mailboxes, barrier, the attached file system) while holding the lock,
//!   then releases the turn.
//!
//! Because only the turn holder touches shared state, a `(seed, program)`
//! pair fully determines the interleaving, the clock, and therefore every
//! recorded trace — which is what makes the paper's experiments reproducible
//! here. In [`SchedMode::Free`] dispatch grants the first requester without
//! waiting for lockstep, trading determinism for speed.
//!
//! Fault handling extends the same state machine: a crashed rank enters the
//! terminal [`RankStatus::Crashed`] and counts as departed — barriers
//! release once every *live* rank has arrived, receivers blocked on a dead
//! peer with a drained channel are woken to fail-stop themselves, and a
//! delayed message ([`Msg::visible_at`]) makes the scheduler advance the
//! clock to its delivery time instead of declaring a deadlock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::collections::VecDeque;

use simrng::SimRng;

use crate::error::SimError;
use crate::event::MpiEvent;
use crate::fault::{FaultKind, FaultPlan, IoFault};

/// Scheduling discipline for the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Lockstep token protocol with *burst* grants (the default): the next
    /// token holder is chosen by an RNG seeded from the world seed, and it
    /// keeps the token until it parks (barrier, empty receive), finishes,
    /// or crashes. Identical seeds ⇒ identical traces, at a fraction of
    /// the context switches of per-operation re-granting — the token only
    /// changes hands at points where the holder cannot proceed anyway.
    Deterministic,
    /// Lockstep token protocol re-drawing the token after *every*
    /// operation — maximal cross-rank interleaving. Roughly 3× slower than
    /// burst grants (one condvar handoff per simulated op); kept as the
    /// schedule-robustness oracle: analysis verdicts must not depend on
    /// which deterministic interleaving produced the trace.
    DeterministicPerOp,
    /// Grant whichever rank requests first. Faster, not reproducible.
    Free,
}

impl SchedMode {
    /// Whether this mode drives the seeded lockstep protocol (as opposed
    /// to free-running grants).
    pub fn is_deterministic(self) -> bool {
        matches!(
            self,
            SchedMode::Deterministic | SchedMode::DeterministicPerOp
        )
    }
}

/// Why a rank is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockReason {
    /// Waiting for a matching message.
    Recv,
    /// Waiting inside barrier `epoch`.
    Barrier { epoch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RankStatus {
    /// Running application code between simulated operations.
    Computing,
    /// Waiting to be granted the turn.
    Requesting,
    /// Holds the turn.
    Granted,
    /// Parked inside a blocking primitive.
    Blocked(BlockReason),
    /// Returned from its program.
    Finished,
    /// Fail-stopped (injected crash, cascaded peer crash, or unrecoverable
    /// I/O failure). Terminal; the rank never acts again.
    Crashed,
}

/// Fenwick (binary-indexed) tree over rank indices with 0/1 membership:
/// O(log n) point update, O(log n) *k-th member* selection. Backing store
/// for the requester set — dispatch draws the k-th requester in rank-index
/// order, and at thousands of ranks a status-vector `.nth(k)` scan per
/// grant (plus a `.position()` scan per op for the token holder) turns the
/// whole simulation Θ(n²), drowning everything else.
pub(crate) struct RankSelect {
    /// 1-based Fenwick array; `tree[i]` covers `i & -i` membership bits.
    tree: Vec<u32>,
    n: usize,
}

impl RankSelect {
    fn new(n: usize) -> Self {
        RankSelect {
            tree: vec![0; n + 1],
            n,
        }
    }

    #[inline]
    fn update(&mut self, rank: usize, delta: i32) {
        let mut i = rank + 1;
        while i <= self.n {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// 0-based rank index of the k-th (0-based) member, in increasing
    /// index order. Caller guarantees `k < membership count`.
    fn select(&self, k: usize) -> usize {
        let mut pos = 0usize; // 1-based prefix position accumulator
        let mut rem = (k + 1) as u32;
        let mut step = self.n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= self.n && self.tree[next] < rem {
                rem -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos
    }
}

/// A buffered point-to-point message.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub seq: u64,
    pub payload: Vec<u8>,
    /// Earliest simulated time the receiver may consume it. `0` for
    /// undelayed traffic; a message-delay fault sets it into the future.
    pub visible_at: u64,
}

/// The whole mutable world: scheduler bookkeeping, clock, mailboxes, barrier
/// state, fault schedule, and the happens-before event log.
pub(crate) struct SimState {
    pub mode: SchedMode,
    pub rng: SimRng,
    pub status: Vec<RankStatus>,
    /// Ranks currently `Computing` / `Requesting` / `Granted` /
    /// `Blocked(_)`, and ranks not yet `Crashed`. Maintained by
    /// [`SimState::set_status`] so the dispatch decision — taken on every
    /// status transition — is O(1) instead of a status-vector scan plus a
    /// requester-list allocation. All writes to `status` must go through
    /// `set_status` or the counters drift.
    n_computing: usize,
    n_requesting: usize,
    n_granted: usize,
    n_blocked: usize,
    n_live: usize,
    /// The requester set as an order-statistics structure; dispatch picks
    /// the k-th requesting rank in index order without scanning `status`.
    requesting: RankSelect,
    /// The current token holder, if any (there is at most one). Tracked so
    /// the per-op clock-freeze wake needs no `status` scan.
    granted_rank: Option<u32>,
    /// Whether the token holder is parked in `turn_begin`'s clock-freeze
    /// wait (some rank still computing). Only then does a status change
    /// need to wake it — pushing the holder on *every* transition queued a
    /// spurious wake per simulated op, a full resume round-trip each in
    /// task mode. Set under the lock by the holder before it waits, so
    /// the transition that zeroes `n_computing` cannot miss it.
    pub holder_waiting: bool,
    pub deadlocked: bool,
    /// Blocked set captured at the moment deadlock was declared. The
    /// parked ranks unwind (and leave `Blocked`) as they observe the
    /// deadlock, so a later status scan would come up empty.
    deadlock_blocked: Vec<u32>,
    /// Global simulated time, nanoseconds.
    pub clock_ns: u64,
    /// FIFO mailboxes keyed by (src, dst, tag).
    pub mailboxes: HashMap<(u32, u32, u32), VecDeque<Msg>>,
    pub next_msg_seq: u64,
    /// Barrier: number of ranks arrived in the current epoch.
    pub barrier_count: u32,
    pub barrier_epoch: u64,
    /// Release time of each completed barrier epoch, indexed by epoch.
    pub barrier_release: Vec<u64>,
    /// Per-rank happens-before event log.
    pub events: Vec<Vec<MpiEvent>>,
    /// Ranks whose status just changed in a way their thread must observe
    /// (granted the turn, unparked, or deadlock declared). The mutating
    /// thread drains this queue and signals exactly those ranks' condvars
    /// before releasing the lock — see `Rank::drain_wakes`.
    pub pending_wakes: Vec<u32>,
    /// Per-rank count of simulated operations performed so far; the index
    /// the fault plan is keyed by. Incremented on every turn acquisition.
    pub op_index: Vec<u64>,
    /// Exact-index crash sites from the fault plan, consumed when they fire.
    crash_at: Vec<Vec<u64>>,
    /// Per-rank pending I/O faults, sorted by op index; the harness consumes
    /// the front entry at the first file-system call at or after its index.
    io_faults: Vec<VecDeque<(u64, IoFault)>>,
    /// Per-rank pending send delays `(at_op, delay_ns)`, sorted by op index;
    /// consumed by the first send at or after the index.
    msg_delays: Vec<VecDeque<(u64, u64)>>,
    /// Count of delayed messages currently buffered and not yet visible —
    /// guards the (rare) delivery-time scans so fault-free runs pay nothing.
    delayed_in_flight: usize,
    /// Pending delayed-delivery times `(visible_at, dst)`, min-first. Every
    /// clock advance drains the due prefix and wakes receivers parked in a
    /// recv — without this, a receiver that parked while its message was in
    /// flight is never re-checked once the clock passes the delivery time
    /// (the sender woke it at send time, it saw an invisible front and
    /// re-parked; no later event touches it).
    delivery_due: BinaryHeap<Reverse<(u64, u32)>>,
    /// Recv-parked ranks with newly deliverable mail, woken *lazily* under
    /// burst grants: an eager wake would flip the receiver to `Computing`
    /// and stall the sending token holder's next operation on the
    /// clock-freeze invariant — two context switches per message. Instead
    /// the receiver stays parked until no rank can otherwise run (holder
    /// parked, no requester), and the whole set is released at once.
    /// Dispatch order afterwards is the usual seeded draw, so the schedule
    /// stays a pure function of `(seed, program)`.
    deferred_unblocks: Vec<u32>,
    /// Terminal fault of each rank, if any, for the run report.
    pub faults: Vec<Option<SimError>>,
    /// Trace pseudo-pid of rank 0 (rank r draws under `base + r`), or
    /// `None` when tracing was off at world creation. Checking an
    /// already-loaded `Option` under the already-held world lock makes
    /// every instrumentation site in the scheduler free when disabled.
    pub trace_pid_base: Option<u64>,
    /// World-local trace event buffer. Scheduler sites run under the world
    /// lock, so they push here (a plain `Vec` push) instead of taking the
    /// global collector's shard lock per event; `World::run` bulk-flushes
    /// the whole buffer once at the end of the run.
    pub trace_buf: Vec<obs::TraceEvent>,
    /// Streaming sink notified of epoch commits / rank stops. Invoked
    /// under the state lock — see [`crate::sink`] for the re-entrancy
    /// contract.
    pub epoch_sink: Option<crate::sink::EpochSinkHandle>,
}

impl SimState {
    pub fn new(nranks: u32, seed: u64, mode: SchedMode, start_ns: u64, plan: &FaultPlan) -> Self {
        let n = nranks as usize;
        let mut crash_at = vec![Vec::new(); n];
        let mut io_faults = vec![VecDeque::new(); n];
        let mut msg_delays = vec![VecDeque::new(); n];
        for site in plan.sites() {
            let r = (site.rank as usize).min(n.saturating_sub(1));
            match site.kind {
                FaultKind::Crash => crash_at[r].push(site.at_op),
                FaultKind::Io(k) => io_faults[r].push_back((site.at_op, k)),
                FaultKind::MsgDelay { delay_ns } => msg_delays[r].push_back((site.at_op, delay_ns)),
            }
        }
        for q in io_faults.iter_mut() {
            q.make_contiguous().sort_by_key(|&(op, _)| op);
        }
        for q in msg_delays.iter_mut() {
            q.make_contiguous().sort_by_key(|&(op, _)| op);
        }
        SimState {
            mode,
            rng: SimRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed),
            status: vec![RankStatus::Computing; n],
            n_computing: n,
            n_requesting: 0,
            n_granted: 0,
            n_blocked: 0,
            n_live: n,
            requesting: RankSelect::new(n),
            granted_rank: None,
            holder_waiting: false,
            deadlocked: false,
            deadlock_blocked: Vec::new(),
            clock_ns: start_ns,
            mailboxes: HashMap::new(),
            next_msg_seq: 0,
            barrier_count: 0,
            barrier_epoch: 0,
            barrier_release: Vec::new(),
            events: (0..n).map(|_| Vec::new()).collect(),
            pending_wakes: Vec::new(),
            op_index: vec![0; n],
            crash_at,
            io_faults,
            msg_delays,
            delayed_in_flight: 0,
            delivery_due: BinaryHeap::new(),
            deferred_unblocks: Vec::new(),
            faults: vec![None; n],
            trace_pid_base: obs::tracing_enabled().then(|| obs::alloc_sim_pids(nranks)),
            trace_buf: Vec::new(),
            epoch_sink: None,
        }
    }

    /// Buffer an instant event on a simulated rank's timeline (only called
    /// when `trace_pid_base` is `Some`; see [`SimState::trace_buf`]).
    pub(crate) fn buf_instant(
        &mut self,
        pid: u64,
        name: &'static str,
        ts_ns: u64,
        args: Vec<(&'static str, obs::Arg)>,
    ) {
        self.trace_buf.push(obs::TraceEvent {
            name: std::borrow::Cow::Borrowed(name),
            cat: "mpisim",
            ph: obs::Phase::Instant,
            ts_ns,
            dur_ns: 0,
            pid,
            tid: 0,
            args,
        });
    }

    /// Buffer a complete span on a simulated rank's timeline.
    pub(crate) fn buf_span(
        &mut self,
        pid: u64,
        name: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        args: Vec<(&'static str, obs::Arg)>,
    ) {
        self.trace_buf.push(obs::TraceEvent {
            name: std::borrow::Cow::Borrowed(name),
            cat: "mpisim",
            ph: obs::Phase::Complete,
            ts_ns,
            dur_ns,
            pid,
            tid: 0,
            args,
        });
    }

    /// Which maintained counter a status contributes to, if any (`Finished`
    /// and `Crashed` are only tracked through `n_live`).
    #[inline]
    fn counter_for(&mut self, s: RankStatus) -> Option<&mut usize> {
        match s {
            RankStatus::Computing => Some(&mut self.n_computing),
            RankStatus::Requesting => Some(&mut self.n_requesting),
            RankStatus::Granted => Some(&mut self.n_granted),
            RankStatus::Blocked(_) => Some(&mut self.n_blocked),
            RankStatus::Finished | RankStatus::Crashed => None,
        }
    }

    /// The single write path for rank status: keeps the dispatch counters
    /// in sync with the status vector.
    #[inline]
    pub fn set_status(&mut self, r: usize, s: RankStatus) {
        let old = self.status[r];
        self.status[r] = s;
        if let Some(c) = self.counter_for(old) {
            *c -= 1;
        }
        if let Some(c) = self.counter_for(s) {
            *c += 1;
        }
        if old == RankStatus::Requesting {
            self.requesting.update(r, -1);
        }
        if s == RankStatus::Requesting {
            self.requesting.update(r, 1);
        }
        if old == RankStatus::Granted {
            self.granted_rank = None;
            self.holder_waiting = false;
        }
        if s == RankStatus::Granted {
            self.granted_rank = Some(r as u32);
        }
        if s == RankStatus::Crashed && old != RankStatus::Crashed {
            self.n_live -= 1;
        }
    }

    /// Grant the turn to some requesting rank if the dispatch rule allows it.
    /// Must be called after every status change; callers then notify the
    /// condvar. Runs on every simulated operation (twice: request and
    /// release), so the decision is taken from the maintained counters —
    /// no scan, no allocation — and only the actual grant walks the status
    /// vector to find the picked rank.
    pub fn try_dispatch(&mut self) {
        if self.deadlocked {
            return;
        }
        if self.n_granted > 0 {
            // Burst grants: the token holder gates each operation on the
            // clock-freeze invariant (no rank still computing — see
            // `Rank::turn_begin`). The status transition that zeroed
            // `n_computing` must wake it.
            if self.mode == SchedMode::Deterministic && self.n_computing == 0 && self.holder_waiting
            {
                if let Some(holder) = self.granted_rank {
                    self.holder_waiting = false;
                    self.pending_wakes.push(holder);
                }
            }
            return;
        }
        if self.mode.is_deterministic() && self.n_computing > 0 {
            // Lockstep: wait until every live rank has declared itself.
            return;
        }
        if self.n_requesting == 0 {
            // No requester and no granted rank: everyone is computing,
            // blocked, finished, or crashed.
            let all_parked = self.n_computing == 0;
            let any_blocked = self.n_blocked > 0;
            if all_parked && any_blocked {
                // First release every lazily-deferred receiver (burst
                // grants buffer message wakes — see `deferred_unblocks`).
                if self.release_deferred_unblocks() {
                    return;
                }
                // Before declaring deadlock: a delayed message may still be
                // on the wire. Advance the clock to its delivery time and
                // wake the receivers — discrete-event time advance.
                if self.advance_to_next_delivery() {
                    return;
                }
                self.deadlocked = true;
                self.deadlock_blocked = self.scan_blocked();
                obs::debug!(
                    "deadlock: status={:?} delayed_in_flight={} clock={}",
                    self.status,
                    self.delayed_in_flight,
                    self.clock_ns
                );
                if obs::log::enabled(obs::Level::Debug) {
                    for (&(src, dst, tag), q) in self.mailboxes.iter() {
                        if let Some(m) = q.front() {
                            obs::debug!(
                                "  mbox {}->{} tag {} front visible_at={} len={}",
                                src,
                                dst,
                                tag,
                                m.visible_at,
                                q.len()
                            );
                        }
                    }
                }
                // Every parked rank must wake up to observe the deadlock.
                self.pending_wakes.extend(0..self.status.len() as u32);
            }
            return;
        }
        // The RNG draw is over the requester *count*, exactly as the old
        // requester-list formulation drew over its length — the consumed
        // stream (and therefore every schedule) is bit-identical.
        let k = match self.mode {
            SchedMode::Deterministic | SchedMode::DeterministicPerOp => {
                self.rng.range_usize(0, self.n_requesting)
            }
            SchedMode::Free => 0,
        };
        // O(log n) order-statistics pick: the k-th requester in rank-index
        // order, exactly the rank the old `.filter(Requesting).nth(k)`
        // status scan produced — schedules are bit-identical.
        let pick = self.requesting.select(k);
        debug_assert_eq!(
            self.status[pick],
            RankStatus::Requesting,
            "requester Fenwick tree out of sync with status vector"
        );
        self.set_status(pick, RankStatus::Granted);
        self.pending_wakes.push(pick as u32);
    }

    /// Wake every lazily-deferred receiver that is still recv-parked (it
    /// may have been crashed or eagerly woken since being queued). Returns
    /// whether any rank was released. Draining the whole set at a single
    /// deterministic point (no runnable rank left) keeps the schedule a
    /// function of `(seed, program)`.
    fn release_deferred_unblocks(&mut self) -> bool {
        let mut woke = false;
        while let Some(dst) = self.deferred_unblocks.pop() {
            if self.status[dst as usize] == RankStatus::Blocked(BlockReason::Recv) {
                self.set_status(dst as usize, RankStatus::Computing);
                self.pending_wakes.push(dst);
                woke = true;
            }
        }
        woke
    }

    /// Advance the simulated clock by `delta` and deliver any delayed
    /// messages whose time has come. All clock movement funnels through
    /// here so a receiver parked on an in-flight message is woken the
    /// moment the clock passes its delivery time; fault-free runs pay one
    /// emptiness check.
    pub fn advance_clock(&mut self, delta: u64) {
        self.clock_ns += delta;
        self.wake_due_deliveries();
    }

    /// Pop every pending delivery with `visible_at <= clock` and wake its
    /// receiver if it is parked in a receive. Each heap entry is consumed
    /// exactly once, so spurious wakes (receiver waiting on a different
    /// channel, or message already taken) are bounded — no livelock.
    fn wake_due_deliveries(&mut self) {
        while let Some(&Reverse((t, dst))) = self.delivery_due.peek() {
            if t > self.clock_ns {
                break;
            }
            self.delivery_due.pop();
            if let Some(base) = self.trace_pid_base {
                self.buf_instant(
                    base + dst as u64,
                    "delayed-delivery",
                    t,
                    vec![("dst", obs::Arg::U(dst as u64))],
                );
            }
            if self.status[dst as usize] == RankStatus::Blocked(BlockReason::Recv) {
                self.set_status(dst as usize, RankStatus::Computing);
                self.pending_wakes.push(dst);
            }
        }
    }

    /// Every live rank is parked but delayed messages are still on the
    /// wire: advance the clock to successive delivery times until some
    /// receiver wakes. Returns whether any rank was woken (if not, the
    /// deadlock is real — no pending delivery can unblock anyone). Each
    /// iteration consumes at least one heap entry, so the loop is bounded;
    /// the clock target is a deterministic minimum.
    fn advance_to_next_delivery(&mut self) -> bool {
        loop {
            let before = self.pending_wakes.len();
            self.wake_due_deliveries();
            if self.pending_wakes.len() > before {
                return true;
            }
            match self.delivery_due.peek() {
                Some(&Reverse((t, _))) => self.clock_ns = t,
                None => return false,
            }
        }
    }

    /// Pop the oldest *visible* message on channel (src → dst, tag), if any.
    /// A delayed front message blocks the channel (FIFO, non-overtaking).
    pub fn take_msg(&mut self, src: u32, dst: u32, tag: u32) -> Option<Msg> {
        let q = self.mailboxes.get_mut(&(src, dst, tag))?;
        if q.front().is_some_and(|m| m.visible_at > self.clock_ns) {
            return None;
        }
        let m = q.pop_front();
        if q.is_empty() {
            self.mailboxes.remove(&(src, dst, tag));
        }
        if let Some(msg) = &m {
            if msg.visible_at > 0 {
                self.delayed_in_flight = self.delayed_in_flight.saturating_sub(1);
            }
        }
        m
    }

    /// Whether channel (src → dst, tag) holds any buffered message, visible
    /// or not (an in-flight delayed message still counts as deliverable).
    pub fn has_pending_msg(&self, src: u32, dst: u32, tag: u32) -> bool {
        self.mailboxes
            .get(&(src, dst, tag))
            .is_some_and(|q| !q.is_empty())
    }

    /// Buffer a message and wake the destination if it is parked in a
    /// receive (it re-checks its mailbox when re-granted). Consumes a
    /// pending message-delay fault of the sender, if one is due.
    pub fn put_msg(&mut self, src: u32, dst: u32, tag: u32, payload: Vec<u8>) -> u64 {
        let seq = self.next_msg_seq;
        self.next_msg_seq += 1;
        let visible_at = match self.msg_delays[src as usize].front() {
            Some(&(at_op, delay_ns)) if at_op <= self.op_index[src as usize] => {
                self.msg_delays[src as usize].pop_front();
                self.delayed_in_flight += 1;
                let t = self.clock_ns + delay_ns;
                self.delivery_due.push(Reverse((t, dst)));
                if let Some(base) = self.trace_pid_base {
                    let now = self.clock_ns;
                    self.buf_instant(
                        base + src as u64,
                        "msg-delayed",
                        now,
                        vec![
                            ("dst", obs::Arg::U(dst as u64)),
                            ("visible_at", obs::Arg::U(t)),
                        ],
                    );
                }
                t
            }
            _ => 0,
        };
        self.mailboxes
            .entry((src, dst, tag))
            .or_default()
            .push_back(Msg {
                seq,
                payload,
                visible_at,
            });
        if self.status[dst as usize] == RankStatus::Blocked(BlockReason::Recv) {
            if self.mode == SchedMode::Deterministic {
                // Lazy wake (see `deferred_unblocks`): the sender keeps
                // bursting; the receiver is released when nothing else can
                // run.
                if !self.deferred_unblocks.contains(&dst) {
                    self.deferred_unblocks.push(dst);
                }
            } else {
                self.set_status(dst as usize, RankStatus::Computing);
                self.pending_wakes.push(dst);
            }
        }
        seq
    }

    /// Consume a planned crash of `rank` at `at_op`, if one exists.
    pub fn take_crash(&mut self, rank: u32, at_op: u64) -> bool {
        let sites = &mut self.crash_at[rank as usize];
        if let Some(i) = sites.iter().position(|&op| op == at_op) {
            sites.swap_remove(i);
            true
        } else {
            false
        }
    }

    /// Consume the front pending I/O fault of `rank` if its op index is due.
    pub fn take_io_fault(&mut self, rank: u32) -> Option<IoFault> {
        let q = &mut self.io_faults[rank as usize];
        match q.front() {
            Some(&(at_op, kind)) if at_op <= self.op_index[rank as usize] => {
                q.pop_front();
                Some(kind)
            }
            _ => None,
        }
    }

    /// Whether `rank` has fail-stopped.
    pub fn is_crashed(&self, rank: u32) -> bool {
        self.status[rank as usize] == RankStatus::Crashed
    }

    /// Whether any rank is still running application code between
    /// simulated operations. While true, the simulated clock must not
    /// move — unsynchronized `Rank::now` reads in layer code rely on it.
    pub fn any_computing(&self) -> bool {
        self.n_computing > 0
    }

    /// Ranks that can still arrive at a barrier (everything not crashed;
    /// a *finished* rank still counts, so a program that exits mid-barrier
    /// on some ranks deadlocks — an application bug, reported as one).
    pub fn live_ranks(&self) -> u32 {
        self.n_live as u32
    }

    /// Release the current barrier epoch if every live rank has arrived.
    /// Called on every arrival and on every crash (the crash may be the
    /// departure the epoch was waiting for).
    pub fn release_barrier_if_complete(&mut self) {
        if self.barrier_count == 0 || self.barrier_count < self.live_ranks() {
            return;
        }
        let epoch = self.barrier_epoch;
        self.barrier_count = 0;
        self.barrier_epoch += 1;
        debug_assert_eq!(self.barrier_release.len() as u64, epoch);
        self.barrier_release.push(self.clock_ns);
        if let Some(sink) = &self.epoch_sink {
            sink.0.epoch_released(epoch, self.clock_ns);
        }
        for r in 0..self.status.len() {
            if self.status[r] == RankStatus::Blocked(BlockReason::Barrier { epoch }) {
                self.set_status(r, RankStatus::Computing);
                self.pending_wakes.push(r as u32);
            }
        }
    }

    /// Transition `rank` into the terminal crashed state and let the rest
    /// of the world adapt: the barrier epoch it will never join may now be
    /// complete, and every receiver parked on a message must re-check its
    /// channel (it fail-stops itself if the peer is this rank and the
    /// channel is drained).
    pub fn crash_rank(&mut self, rank: u32, err: SimError) {
        self.set_status(rank as usize, RankStatus::Crashed);
        if let Some(base) = self.trace_pid_base {
            let now = self.clock_ns;
            self.buf_instant(
                base + rank as u64,
                "crash",
                now,
                vec![
                    ("rank", obs::Arg::U(rank as u64)),
                    ("error", obs::Arg::S(err.to_string())),
                ],
            );
        }
        self.faults[rank as usize] = Some(err);
        if let Some(sink) = &self.epoch_sink {
            sink.0.rank_stopped(rank, self.clock_ns);
        }
        self.release_barrier_if_complete();
        for r in 0..self.status.len() {
            if self.status[r] == RankStatus::Blocked(BlockReason::Recv) {
                self.set_status(r, RankStatus::Computing);
                self.pending_wakes.push(r as u32);
            }
        }
        self.try_dispatch();
    }

    /// Blocked ranks the deadlock error should name: the set captured at
    /// declaration time (the ranks have since unwound), falling back to a
    /// live scan if deadlock has not been declared.
    pub fn blocked_ranks(&self) -> Vec<u32> {
        if self.deadlocked {
            return self.deadlock_blocked.clone();
        }
        self.scan_blocked()
    }

    fn scan_blocked(&self) -> Vec<u32> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, RankStatus::Blocked(_)))
            .map(|(i, _)| i as u32)
            .collect()
    }
}
