//! The lockstep token scheduler and the shared simulator state.
//!
//! All mutable simulator state lives in one [`SimState`] behind a single
//! mutex; per-rank condvars coordinate rank threads (a mutation queues the
//! affected ranks in [`SimState::pending_wakes`] and only those are
//! signaled). A rank performs a simulated operation by acquiring the *turn*:
//!
//! * it marks itself `Requesting` and waits until dispatched;
//! * dispatch (deterministic mode) waits until **every** live rank is either
//!   requesting, blocked, or finished — i.e. no rank is still computing —
//!   then grants the turn to a seeded-RNG choice among the requesters;
//! * the granted rank advances the simulated clock and mutates shared state
//!   (mailboxes, barrier, the attached file system) while holding the lock,
//!   then releases the turn.
//!
//! Because only the turn holder touches shared state, a `(seed, program)`
//! pair fully determines the interleaving, the clock, and therefore every
//! recorded trace — which is what makes the paper's experiments reproducible
//! here. In [`SchedMode::Free`] dispatch grants the first requester without
//! waiting for lockstep, trading determinism for speed.

use std::collections::HashMap;
use std::collections::VecDeque;

use simrng::SimRng;

use crate::event::MpiEvent;

/// Scheduling discipline for the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Lockstep token protocol; the next rank to act is chosen by an RNG
    /// seeded from the world seed. Identical seeds ⇒ identical traces.
    Deterministic,
    /// Grant whichever rank requests first. Faster, not reproducible.
    Free,
}

/// Why a rank is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockReason {
    /// Waiting for a matching message.
    Recv,
    /// Waiting inside barrier `epoch`.
    Barrier { epoch: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RankStatus {
    /// Running application code between simulated operations.
    Computing,
    /// Waiting to be granted the turn.
    Requesting,
    /// Holds the turn.
    Granted,
    /// Parked inside a blocking primitive.
    Blocked(BlockReason),
    /// Returned from its program.
    Finished,
}

/// A buffered point-to-point message.
#[derive(Debug, Clone)]
pub(crate) struct Msg {
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// The whole mutable world: scheduler bookkeeping, clock, mailboxes, barrier
/// state, and the happens-before event log.
pub(crate) struct SimState {
    pub mode: SchedMode,
    pub rng: SimRng,
    pub status: Vec<RankStatus>,
    pub deadlocked: bool,
    /// Global simulated time, nanoseconds.
    pub clock_ns: u64,
    /// FIFO mailboxes keyed by (src, dst, tag).
    pub mailboxes: HashMap<(u32, u32, u32), VecDeque<Msg>>,
    pub next_msg_seq: u64,
    /// Barrier: number of ranks arrived in the current epoch.
    pub barrier_count: u32,
    pub barrier_epoch: u64,
    /// Release time of each completed barrier epoch, indexed by epoch.
    pub barrier_release: Vec<u64>,
    /// Per-rank happens-before event log.
    pub events: Vec<Vec<MpiEvent>>,
    /// Ranks whose status just changed in a way their thread must observe
    /// (granted the turn, unparked, or deadlock declared). The mutating
    /// thread drains this queue and signals exactly those ranks' condvars
    /// before releasing the lock — see `Rank::drain_wakes`.
    pub pending_wakes: Vec<u32>,
}

impl SimState {
    pub fn new(nranks: u32, seed: u64, mode: SchedMode, start_ns: u64) -> Self {
        SimState {
            mode,
            rng: SimRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed),
            status: vec![RankStatus::Computing; nranks as usize],
            deadlocked: false,
            clock_ns: start_ns,
            mailboxes: HashMap::new(),
            next_msg_seq: 0,
            barrier_count: 0,
            barrier_epoch: 0,
            barrier_release: Vec::new(),
            events: (0..nranks).map(|_| Vec::new()).collect(),
            pending_wakes: Vec::new(),
        }
    }

    /// Grant the turn to some requesting rank if the dispatch rule allows it.
    /// Must be called after every status change; callers then notify the
    /// condvar.
    pub fn try_dispatch(&mut self) {
        if self.deadlocked || self.status.contains(&RankStatus::Granted) {
            return;
        }
        if self.mode == SchedMode::Deterministic && self.status.contains(&RankStatus::Computing) {
            // Lockstep: wait until every live rank has declared itself.
            return;
        }
        let requesting: Vec<usize> = self
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == RankStatus::Requesting)
            .map(|(i, _)| i)
            .collect();
        if requesting.is_empty() {
            let all_parked = self
                .status
                .iter()
                .all(|s| matches!(s, RankStatus::Blocked(_) | RankStatus::Finished));
            let any_blocked = self
                .status
                .iter()
                .any(|s| matches!(s, RankStatus::Blocked(_)));
            if all_parked && any_blocked {
                self.deadlocked = true;
                // Every parked rank must wake up to observe the deadlock.
                self.pending_wakes.extend(0..self.status.len() as u32);
            }
            return;
        }
        let pick = match self.mode {
            SchedMode::Deterministic => requesting[self.rng.range_usize(0, requesting.len())],
            SchedMode::Free => requesting[0],
        };
        self.status[pick] = RankStatus::Granted;
        self.pending_wakes.push(pick as u32);
    }

    /// Pop the oldest message on channel (src → dst, tag), if any.
    pub fn take_msg(&mut self, src: u32, dst: u32, tag: u32) -> Option<Msg> {
        let q = self.mailboxes.get_mut(&(src, dst, tag))?;
        let m = q.pop_front();
        if q.is_empty() {
            self.mailboxes.remove(&(src, dst, tag));
        }
        m
    }

    /// Buffer a message and wake the destination if it is parked in a
    /// receive (it re-checks its mailbox when re-granted).
    pub fn put_msg(&mut self, src: u32, dst: u32, tag: u32, payload: Vec<u8>) -> u64 {
        let seq = self.next_msg_seq;
        self.next_msg_seq += 1;
        self.mailboxes
            .entry((src, dst, tag))
            .or_default()
            .push_back(Msg { seq, payload });
        if self.status[dst as usize] == RankStatus::Blocked(BlockReason::Recv) {
            self.status[dst as usize] = RankStatus::Computing;
            self.pending_wakes.push(dst);
        }
        seq
    }

    /// Blocked ranks the deadlock error should name.
    pub fn blocked_ranks(&self) -> Vec<u32> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, RankStatus::Blocked(_)))
            .map(|(i, _)| i as u32)
            .collect()
    }
}
