//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is part of the world configuration: it names, ahead of
//! time, which rank misbehaves at which *operation index* (the per-rank
//! count of simulated operations — every `timed_op`, send, receive and
//! barrier entry increments it). Because the scheduler is deterministic,
//! `(seed, plan, program)` fully determines when each fault fires and
//! therefore the entire trace; running the same plan twice yields
//! byte-identical artifacts.
//!
//! Four fault kinds are modelled:
//!
//! * **Crash** — the rank fail-stops at the chosen op boundary
//!   ([`crate::SimError::RankCrashed`]). Survivors keep running: barriers
//!   release once every *live* rank has arrived (ULFM-style departure),
//!   and a receive from a dead peer with a drained channel fail-stops the
//!   receiver too ([`crate::SimError::PeerCrashed`]) — a cascading job
//!   death, as on a real machine, but every rank's partial trace survives.
//! * **Transient I/O error** — `EINTR`/`EIO`/`ENOSPC`-style failures
//!   surfaced to the I/O harness at the first POSIX call at or after the
//!   chosen index. The harness absorbs them with bounded
//!   retry-with-backoff in simulated time.
//! * **Lost flush** — the next commit operation (`fsync`/`fdatasync`)
//!   at or after the chosen index reports success but never publishes the
//!   buffered writes: data that never reaches commit visibility.
//! * **Message delay** — the first point-to-point send at or after the
//!   chosen index is delivered only after `delay_ns` of simulated time;
//!   the scheduler advances the clock past the delivery time instead of
//!   declaring a deadlock.

use simrng::SimRng;

/// A transient I/O misbehaviour, in POSIX errno vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// `EINTR`: the call was interrupted; retrying succeeds.
    Eintr,
    /// `EIO`: a transient device error.
    Eio,
    /// `ENOSPC`: the target was briefly out of space.
    Enospc,
    /// The next commit op succeeds but its buffered writes are never
    /// published (a flush acknowledged by a tier that lost it).
    LostFlush,
}

impl IoFault {
    pub const TRANSIENT: [IoFault; 3] = [IoFault::Eintr, IoFault::Eio, IoFault::Enospc];

    pub fn name(self) -> &'static str {
        match self {
            IoFault::Eintr => "EINTR",
            IoFault::Eio => "EIO",
            IoFault::Enospc => "ENOSPC",
            IoFault::LostFlush => "LOST_FLUSH",
        }
    }
}

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail-stop the rank at exactly the chosen op index.
    Crash,
    /// Inject an I/O fault at the first file-system call at or after the
    /// chosen index.
    Io(IoFault),
    /// Delay delivery of the first send at or after the chosen index.
    MsgDelay { delay_ns: u64 },
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Io(IoFault::Eintr) => "io-eintr",
            FaultKind::Io(IoFault::Eio) => "io-eio",
            FaultKind::Io(IoFault::Enospc) => "io-enospc",
            FaultKind::Io(IoFault::LostFlush) => "lost-flush",
            FaultKind::MsgDelay { .. } => "msg-delay",
        }
    }
}

/// One planned fault: `kind` strikes `rank` at (or, for deferred kinds,
/// after) its `at_op`-th simulated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    pub rank: u32,
    pub at_op: u64,
    pub kind: FaultKind,
}

/// The complete, pre-committed fault schedule of one world.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    sites: Vec<FaultSite>,
}

impl FaultPlan {
    /// The empty plan: a fault-free run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Add one fault site (builder-style).
    pub fn with(mut self, rank: u32, at_op: u64, kind: FaultKind) -> Self {
        self.sites.push(FaultSite { rank, at_op, kind });
        self
    }

    pub fn with_crash(self, rank: u32, at_op: u64) -> Self {
        self.with(rank, at_op, FaultKind::Crash)
    }

    /// Draw `count` fault sites of `kind` from a seeded RNG: victim ranks
    /// uniform over the world, op indices uniform over `[1, max_op]`.
    /// The draw is part of the determinism contract — a given
    /// `(seed, nranks, kind, count, max_op)` always yields the same plan.
    pub fn seeded(seed: u64, nranks: u32, kind: FaultKind, count: usize, max_op: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ PLAN_SEED_TWEAK);
        let mut plan = FaultPlan::none();
        for _ in 0..count {
            let rank = rng.range_u32(0, nranks.max(1));
            let at_op = 1 + rng.range_u64(0, max_op.max(1));
            plan.sites.push(FaultSite { rank, at_op, kind });
        }
        plan
    }

    /// A short deterministic description, for table rows and logs.
    /// [`FaultPlan::parse`] accepts exactly this format back.
    pub fn describe(&self) -> String {
        if self.sites.is_empty() {
            return "none".to_string();
        }
        self.sites
            .iter()
            .map(|s| format!("{}@r{}:op{}", s.kind.name(), s.rank, s.at_op))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse a plan back from its [`describe`](FaultPlan::describe)
    /// rendering — `"none"`, `""`, or a comma-separated list of
    /// `kind@rN:opM` sites (`msg-delay` takes an optional `:NNns` delay
    /// suffix, default 5 ms). This is what lets a serving layer accept
    /// what-if fault plans as query parameters: the description *is* the
    /// wire format, and `(seed, parsed plan, program)` determines the
    /// trace exactly as if the plan had been built in-process.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.is_empty() || text == "none" {
            return Ok(FaultPlan::none());
        }
        let mut plan = FaultPlan::none();
        for part in text.split(',') {
            let part = part.trim();
            let (kind_name, site) = part
                .split_once('@')
                .ok_or_else(|| format!("fault site {part:?}: expected kind@rN:opM"))?;
            let mut fields = site.split(':');
            let rank_field = fields.next().unwrap_or("");
            let op_field = fields
                .next()
                .ok_or_else(|| format!("fault site {part:?}: missing :opM"))?;
            let rank: u32 = rank_field
                .strip_prefix('r')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("fault site {part:?}: bad rank {rank_field:?}"))?;
            let at_op: u64 = op_field
                .strip_prefix("op")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("fault site {part:?}: bad op index {op_field:?}"))?;
            let kind = match kind_name {
                "crash" => FaultKind::Crash,
                "io-eintr" => FaultKind::Io(IoFault::Eintr),
                "io-eio" => FaultKind::Io(IoFault::Eio),
                "io-enospc" => FaultKind::Io(IoFault::Enospc),
                "lost-flush" => FaultKind::Io(IoFault::LostFlush),
                "msg-delay" => {
                    let delay_ns = match fields.next() {
                        None => 5_000_000,
                        Some(d) => d
                            .strip_suffix("ns")
                            .and_then(|n| n.parse().ok())
                            .ok_or_else(|| format!("fault site {part:?}: bad delay {d:?}"))?,
                    };
                    FaultKind::MsgDelay { delay_ns }
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            if let Some(extra) = fields.next() {
                return Err(format!("fault site {part:?}: trailing field {extra:?}"));
            }
            plan.sites.push(FaultSite { rank, at_op, kind });
        }
        Ok(plan)
    }
}

/// Seed tweak separating the plan-generation RNG stream from the
/// scheduler and skew streams derived from the same world seed.
const PLAN_SEED_TWEAK: u64 = 0xfa17_fa17_fa17_fa17;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 8, FaultKind::Crash, 3, 100);
        let b = FaultPlan::seeded(7, 8, FaultKind::Crash, 3, 100);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 8, FaultKind::Crash, 3, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn parse_roundtrips_describe() {
        let plans = [
            FaultPlan::none(),
            FaultPlan::none().with_crash(1, 10),
            FaultPlan::none()
                .with_crash(3, 7)
                .with(2, 5, FaultKind::Io(IoFault::Eio))
                .with(0, 9, FaultKind::Io(IoFault::LostFlush)),
            FaultPlan::seeded(11, 8, FaultKind::Io(IoFault::Enospc), 4, 64),
            FaultPlan::none().with(
                1,
                4,
                FaultKind::MsgDelay {
                    delay_ns: 5_000_000,
                },
            ),
        ];
        for plan in plans {
            let parsed = FaultPlan::parse(&plan.describe()).expect("parse own description");
            assert_eq!(parsed, plan, "roundtrip of {:?}", plan.describe());
        }
    }

    #[test]
    fn parse_accepts_explicit_delay_and_none_spellings() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse(" none ").unwrap(), FaultPlan::none());
        let p = FaultPlan::parse("msg-delay@r2:op8:250000ns").unwrap();
        assert_eq!(
            p.sites(),
            &[FaultSite {
                rank: 2,
                at_op: 8,
                kind: FaultKind::MsgDelay { delay_ns: 250_000 },
            }]
        );
    }

    #[test]
    fn parse_rejects_malformed_sites() {
        for bad in [
            "crash",
            "crash@x1:op2",
            "crash@r1",
            "crash@r1:2",
            "crash@r1:op2:junk",
            "explode@r1:op2",
            "msg-delay@r1:op2:fast",
            "crash@r-1:op2",
            "crash@r1:op2,,",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn builder_accumulates_sites() {
        let p = FaultPlan::none()
            .with_crash(1, 10)
            .with(2, 5, FaultKind::Io(IoFault::Eio));
        assert_eq!(p.sites().len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.describe(), "crash@r1:op10,io-eio@r2:op5");
    }
}
