//! # mpisim — an in-process simulated MPI runtime
//!
//! The paper traces real MPI applications running on a cluster. This crate
//! substitutes an in-process runtime: every MPI *rank* is a resumable task
//! on one discrete-event loop (or, under [`ExecModel::Threads`], an OS
//! thread), and all communication (point-to-point messages, barriers,
//! collectives) happens through shared simulator state guarded by a single
//! lock. The task executor is what makes thousand-rank worlds affordable:
//! a rank switch is a userspace stack swap instead of a futex round trip,
//! and rank memory is a lazily-committed task stack instead of an OS
//! thread.
//!
//! Two properties matter for the reproduction:
//!
//! 1. **Timestamps with controllable skew.** The paper's conflict-detection
//!    algorithm (§5.2) orders operations by local-clock timestamps and argues
//!    that clock skew (< 20 µs on Quartz) is negligible relative to the gaps
//!    between synchronized conflicting operations. Simulated time is a global
//!    nanosecond counter advanced by a per-operation [`CostModel`]; a
//!    per-rank *skew offset* is applied when timestamps are recorded, so the
//!    barrier-based adjustment of §5.2 can be exercised and stress-tested.
//!
//! 2. **Happens-before edges.** Sends/receives and barriers are logged with
//!    matching sequence numbers so the analysis can rebuild the partial order
//!    imposed by communication and validate that conflicting I/O operations
//!    are synchronized (the FLASH validation of §5.2).
//!
//! The runtime offers a **deterministic mode** ([`SchedMode::Deterministic`]):
//! ranks advance in a lockstep token protocol and the next rank to act is
//! chosen by a seeded RNG, so a given `(seed, program)` pair always yields the
//! identical interleaving and the identical trace. A **free mode** dispatches
//! whichever rank asks first, which is faster and is used by throughput
//! benchmarks.
//!
//! A third property was added for the robustness experiments: **seeded
//! fault injection** ([`FaultPlan`]) with graceful degradation. Rank
//! crashes, transient I/O errors, lost flushes and message delays are
//! scheduled ahead of time by per-rank op index, so `(seed, plan, program)`
//! still fully determines the trace; [`World::run`] reports failures as
//! values ([`RunOutput::faults`], `Err(SimError)`) instead of unwinding
//! panics into caller frames.

mod clock;
mod comm;
mod error;
mod event;
mod fault;
mod sched;
mod sink;
mod task;
mod world;

pub use clock::{CostModel, OpClass};
pub use comm::{BarrierInfo, RecvInfo, SendInfo};
pub use error::{SimAbort, SimError};
pub use event::{EventKind, MpiEvent};
pub use fault::{FaultKind, FaultPlan, FaultSite, IoFault};
pub use sched::SchedMode;
pub use sink::{EpochNotify, EpochSinkHandle};
pub use world::{ExecModel, Rank, RunOutput, World, WorldCfg, MAX_RANKS};
