//! Epoch notifications for streaming consumers.
//!
//! A world configured with an [`EpochSinkHandle`] tells the sink when a
//! synchronization epoch commits (all live ranks passed a barrier) and
//! when a rank stops early (crash). Streaming analyses use the epoch
//! signal as their happens-before commit point: everything before a
//! released barrier is ordered before everything after it, so state that
//! only mattered within the epoch can be retired.
//!
//! Callbacks run on simulation threads **while the world lock is held**:
//! they must be cheap and must never call back into the world (barrier,
//! send/recv, clock reads) — doing so would self-deadlock.

use std::fmt;
use std::sync::Arc;

/// Receiver of simulation epoch signals. All methods have empty defaults
/// so sinks implement only what they need.
pub trait EpochNotify: Send + Sync {
    /// Barrier epoch `epoch` released at simulated time `t_ns` (the
    /// common exit timestamp every participant observes).
    fn epoch_released(&self, epoch: u64, t_ns: u64) {
        let _ = (epoch, t_ns);
    }

    /// `rank` terminally stopped (crash fault) at simulated time `t_ns`
    /// and will emit no further operations.
    fn rank_stopped(&self, rank: u32, t_ns: u64) {
        let _ = (rank, t_ns);
    }
}

/// Cloneable, debug-opaque handle around a shared [`EpochNotify`], so
/// configuration structs can keep their `Debug`/`Clone` derives.
#[derive(Clone)]
pub struct EpochSinkHandle(pub Arc<dyn EpochNotify>);

impl EpochSinkHandle {
    pub fn new(sink: Arc<dyn EpochNotify>) -> Self {
        EpochSinkHandle(sink)
    }
}

// The harness wraps rank bodies in `catch_unwind` (graceful degradation),
// and configs holding a sink must stay unwind-safe. Sinks are required to
// guard their state behind a lock (they are called from concurrent rank
// threads already), so a panic cannot leave observable broken invariants
// that aren't poison-handled.
impl std::panic::UnwindSafe for EpochSinkHandle {}
impl std::panic::RefUnwindSafe for EpochSinkHandle {}

impl fmt::Debug for EpochSinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EpochSinkHandle(..)")
    }
}
