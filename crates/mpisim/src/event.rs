//! The happens-before event log.
//!
//! Every communication operation is recorded with enough identity to match
//! its counterpart on the peer rank: a send and its receive share a global
//! message sequence number, and every barrier participation carries the
//! barrier epoch. §5.2 of the paper rebuilds the execution order imposed by
//! communication from exactly this information ("we matched sends to receives
//! and collective function invocations").

/// What kind of communication event occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Entered and exited barrier `epoch`. A barrier starts at all ranks
    /// before it completes at any rank, so `t_start` of every participant
    /// happens-before `t_end` of every participant.
    Barrier { epoch: u64 },
    /// Posted message `seq` to `dst` with `tag`.
    Send { dst: u32, tag: u32, seq: u64 },
    /// Consumed message `seq` from `src` with `tag`. A send starts before its
    /// matching receive completes.
    Recv { src: u32, tag: u32, seq: u64 },
}

/// One communication event on one rank, in true (unskewed) simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpiEvent {
    pub rank: u32,
    pub t_start: u64,
    pub t_end: u64,
    pub kind: EventKind,
}

impl MpiEvent {
    /// The matching key for pairing this event with its counterpart:
    /// `Some(seq)` for point-to-point events, `None` for barriers.
    pub fn message_seq(&self) -> Option<u64> {
        match self.kind {
            EventKind::Send { seq, .. } | EventKind::Recv { seq, .. } => Some(seq),
            EventKind::Barrier { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_seq_only_for_p2p() {
        let b = MpiEvent {
            rank: 0,
            t_start: 0,
            t_end: 1,
            kind: EventKind::Barrier { epoch: 3 },
        };
        assert_eq!(b.message_seq(), None);
        let s = MpiEvent {
            rank: 0,
            t_start: 0,
            t_end: 1,
            kind: EventKind::Send {
                dst: 1,
                tag: 9,
                seq: 42,
            },
        };
        assert_eq!(s.message_seq(), Some(42));
    }
}
