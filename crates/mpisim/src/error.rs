//! Error type for simulated-runtime failures.

use std::fmt;

/// Errors raised by the simulated runtime. [`crate::World::run`] returns
/// them at the world boundary: a deadlock or collective mismatch fails the
/// whole run with `Err`, while injected rank crashes are *recoverable* —
/// the run completes and reports them per rank in
/// [`crate::RunOutput::faults`].
///
/// Internally a failing rank still unwinds its own thread (its stack holds
/// application state that cannot be returned through), but the unwind
/// payload is the crate-private `SimAbort` wrapper, caught at the thread
/// boundary inside `World::run` — a `SimError` never escapes as a panic to
/// caller frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every live rank is blocked: the simulated program deadlocked.
    Deadlock { blocked: Vec<u32> },
    /// A rank index outside `0..nranks` was used.
    InvalidRank { rank: u32, nranks: u32 },
    /// A collective was invoked with inconsistent participation
    /// (e.g. a rank finished while others sat in a barrier).
    CollectiveMismatch { detail: String },
    /// The rank fail-stopped at its `at_op`-th simulated operation —
    /// either an injected crash or an unrecoverable I/O failure
    /// (`cause` says which).
    RankCrashed {
        rank: u32,
        at_op: u64,
        cause: String,
    },
    /// The rank was blocked receiving from `peer`, which crashed with the
    /// channel drained; the receiver fail-stops too (cascading job death).
    PeerCrashed { rank: u32, peer: u32 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "simulated program deadlocked; blocked ranks: {blocked:?}"
                )
            }
            SimError::InvalidRank { rank, nranks } => {
                write!(f, "rank {rank} out of range (world size {nranks})")
            }
            SimError::CollectiveMismatch { detail } => {
                write!(f, "collective participation mismatch: {detail}")
            }
            SimError::RankCrashed { rank, at_op, cause } => {
                write!(f, "rank {rank} crashed at op {at_op}: {cause}")
            }
            SimError::PeerCrashed { rank, peer } => {
                write!(f, "rank {rank} aborted: peer rank {peer} crashed")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The unwind payload a failing rank aborts its thread with. Public so
/// harness layers above `mpisim` can catch the unwind *inside* the rank
/// closure (salvaging partial per-rank state, e.g. a trace) before it
/// reaches the thread boundary; `World::run` swallows whatever is left.
#[derive(Debug, Clone)]
pub struct SimAbort(pub SimError);
