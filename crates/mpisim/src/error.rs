//! Error type for simulated-runtime misuse.

use std::fmt;

/// Errors raised by the simulated runtime. Most runtime misuse (deadlock,
/// rank exiting while peers wait in a barrier) aborts the simulation with a
/// panic carrying one of these, because the simulated program itself is
/// buggy; `SimError` is the payload used in those panics and in the few
/// recoverable APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every live rank is blocked: the simulated program deadlocked.
    Deadlock { blocked: Vec<u32> },
    /// A rank index outside `0..nranks` was used.
    InvalidRank { rank: u32, nranks: u32 },
    /// A collective was invoked with inconsistent participation
    /// (e.g. a rank finished while others sat in a barrier).
    CollectiveMismatch { detail: String },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked } => {
                write!(
                    f,
                    "simulated program deadlocked; blocked ranks: {blocked:?}"
                )
            }
            SimError::InvalidRank { rank, nranks } => {
                write!(f, "rank {rank} out of range (world size {nranks})")
            }
            SimError::CollectiveMismatch { detail } => {
                write!(f, "collective participation mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}
