//! Simulated time and the per-operation cost model.
//!
//! Simulated time is a single `u64` nanosecond counter owned by the world
//! state. In deterministic mode only the rank holding the scheduler token
//! advances it, so it is totally ordered and reproducible. Costs are crude —
//! the analysis only needs *plausible* relative magnitudes (metadata
//! operations microseconds apart, synchronized conflicting I/O tens of
//! milliseconds apart, skew ≤ 20 µs) to reproduce the paper's ordering
//! arguments.

/// Classes of simulated operations, used to look up a latency in the
/// [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Entering/participating in a barrier.
    Barrier,
    /// Posting a point-to-point message (buffered, non-blocking completion).
    Send,
    /// Completing a matching receive.
    Recv,
    /// A pure-computation delay injected by the application replica
    /// (e.g. one time step of a simulated solver).
    Compute,
    /// Opening a file (client ↔ metadata server round trip).
    FsOpen,
    /// Closing a file.
    FsClose,
    /// A data read; per-byte cost applies.
    FsRead,
    /// A data write; per-byte cost applies.
    FsWrite,
    /// Seek: purely client-side cursor update.
    FsSeek,
    /// fsync / commit: flush to the data servers.
    FsSync,
    /// A metadata operation (stat family, mkdir, unlink, …).
    FsMeta,
    /// Acquiring a distributed lock from the lock manager (strong
    /// semantics only).
    FsLock,
}

/// Latency model: `base` nanoseconds per operation plus `per_kib` nanoseconds
/// for every KiB moved by data operations.
///
/// The defaults are loosely calibrated to a burst-buffer-class PFS: µs-scale
/// metadata, and ~1 GiB/s effective single-stream bandwidth.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub barrier_ns: u64,
    pub send_base_ns: u64,
    pub recv_base_ns: u64,
    pub msg_per_kib_ns: u64,
    pub fs_open_ns: u64,
    pub fs_close_ns: u64,
    pub fs_read_base_ns: u64,
    pub fs_write_base_ns: u64,
    pub fs_io_per_kib_ns: u64,
    pub fs_seek_ns: u64,
    pub fs_sync_ns: u64,
    pub fs_meta_ns: u64,
    pub fs_lock_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            barrier_ns: 20_000,  // 20 µs
            send_base_ns: 2_000, // 2 µs
            recv_base_ns: 2_000,
            msg_per_kib_ns: 100, // ~10 GiB/s fabric
            fs_open_ns: 50_000,  // 50 µs metadata round trip
            fs_close_ns: 30_000,
            fs_read_base_ns: 10_000,
            fs_write_base_ns: 10_000,
            fs_io_per_kib_ns: 1_000, // ~1 GiB/s
            fs_seek_ns: 200,         // client-side only
            fs_sync_ns: 200_000,     // 200 µs flush
            fs_meta_ns: 40_000,      // 40 µs
            fs_lock_ns: 60_000,      // 60 µs lock manager round trip
        }
    }
}

impl CostModel {
    /// Latency of `class` moving `bytes` bytes of payload.
    pub fn cost(&self, class: OpClass, bytes: u64) -> u64 {
        let per_kib = |rate: u64| (bytes * rate) / 1024;
        match class {
            OpClass::Barrier => self.barrier_ns,
            OpClass::Send => self.send_base_ns + per_kib(self.msg_per_kib_ns),
            OpClass::Recv => self.recv_base_ns + per_kib(self.msg_per_kib_ns),
            OpClass::Compute => bytes, // caller passes the delay directly
            OpClass::FsOpen => self.fs_open_ns,
            OpClass::FsClose => self.fs_close_ns,
            OpClass::FsRead => self.fs_read_base_ns + per_kib(self.fs_io_per_kib_ns),
            OpClass::FsWrite => self.fs_write_base_ns + per_kib(self.fs_io_per_kib_ns),
            OpClass::FsSeek => self.fs_seek_ns,
            OpClass::FsSync => self.fs_sync_ns,
            OpClass::FsMeta => self.fs_meta_ns,
            OpClass::FsLock => self.fs_lock_ns,
        }
    }
}

/// Applies a signed skew offset to a true simulated timestamp, saturating at
/// zero. Recorded trace timestamps are skewed; internal ordering never is.
pub(crate) fn apply_skew(t: u64, skew: i64) -> u64 {
    if skew >= 0 {
        t.saturating_add(skew as u64)
    } else {
        t.saturating_sub(skew.unsigned_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_bytes() {
        let m = CostModel::default();
        let small = m.cost(OpClass::FsWrite, 1024);
        let large = m.cost(OpClass::FsWrite, 1024 * 1024);
        assert!(large > small);
        assert_eq!(
            large - small,
            (1024 * 1024 - 1024) / 1024 * m.fs_io_per_kib_ns
        );
    }

    #[test]
    fn compute_cost_is_identity() {
        let m = CostModel::default();
        assert_eq!(m.cost(OpClass::Compute, 12345), 12345);
    }

    #[test]
    fn skew_saturates() {
        assert_eq!(apply_skew(5, -10), 0);
        assert_eq!(apply_skew(5, 10), 15);
        assert_eq!(apply_skew(u64::MAX, 10), u64::MAX);
    }
}
