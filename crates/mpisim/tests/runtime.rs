//! Integration tests for the simulated MPI runtime: determinism, barrier
//! semantics, message matching, collectives, skew, deadlock detection,
//! and fault injection.

use mpisim::{
    EventKind, FaultKind, FaultPlan, IoFault, MpiEvent, Rank, SchedMode, SimError, World, WorldCfg,
};

/// A fault-free run's output with the per-rank results unwrapped.
struct Ran<T> {
    results: Vec<T>,
    events: Vec<Vec<MpiEvent>>,
    final_time_ns: u64,
    skews_ns: Vec<i64>,
}

fn run_cfg<T: Send>(cfg: &WorldCfg, f: impl Fn(Rank) -> T + Sync) -> Ran<T> {
    let out = World::run(cfg, f).expect("well-formed program");
    Ran {
        results: out
            .results
            .into_iter()
            .map(|v| v.expect("fault-free rank"))
            .collect(),
        events: out.events,
        final_time_ns: out.final_time_ns,
        skews_ns: out.skews_ns,
    }
}

fn run<T: Send>(nranks: u32, seed: u64, f: impl Fn(Rank) -> T + Sync) -> Ran<T> {
    run_cfg(&WorldCfg::new(nranks, seed), f)
}

#[test]
fn single_rank_trivial_program() {
    let out = run(1, 7, |r| {
        r.compute(100);
        r.rank()
    });
    assert_eq!(out.results, vec![0]);
    assert!(out.final_time_ns >= 100);
}

#[test]
fn barrier_all_ranks_same_exit_time() {
    let out = run(8, 1, |r| {
        r.compute(10 * (r.rank() as u64 + 1));
        r.barrier()
    });
    let exit = out.results[0].t_exit;
    for info in &out.results {
        assert_eq!(info.t_exit, exit, "all participants share one exit time");
        assert!(info.t_enter < exit, "barrier entered before it completes");
        assert_eq!(info.epoch, 0);
    }
}

#[test]
fn barrier_no_rank_exits_before_all_enter() {
    // Rank i enters the barrier only after computing i*1000 ns, so the last
    // entry is at >= 7000; no exit may precede that.
    let out = run(8, 3, |r| {
        r.compute(1000 * r.rank() as u64 + 1);
        r.barrier()
    });
    let max_enter = out.results.iter().map(|b| b.t_enter).max().unwrap();
    for info in &out.results {
        assert!(info.t_exit > max_enter);
    }
}

#[test]
fn consecutive_barriers_have_increasing_epochs() {
    let out = run(4, 9, |r| {
        let a = r.barrier();
        let b = r.barrier();
        let c = r.barrier();
        (a.epoch, b.epoch, c.epoch)
    });
    for &(a, b, c) in &out.results {
        assert_eq!((a, b, c), (0, 1, 2));
    }
}

#[test]
fn send_recv_delivers_payload() {
    let out = run(2, 5, |r| {
        if r.rank() == 0 {
            r.send(1, 42, vec![1, 2, 3]);
            Vec::new()
        } else {
            r.recv(0, 42).0
        }
    });
    assert_eq!(out.results[1], vec![1, 2, 3]);
}

#[test]
fn send_recv_fifo_per_channel() {
    let out = run(2, 5, |r| {
        if r.rank() == 0 {
            for i in 0..10u8 {
                r.send(1, 7, vec![i]);
            }
            Vec::new()
        } else {
            (0..10).map(|_| r.recv(0, 7).0[0]).collect()
        }
    });
    assert_eq!(out.results[1], (0..10).collect::<Vec<u8>>());
}

#[test]
fn messages_on_different_tags_do_not_cross() {
    let out = run(2, 11, |r| {
        if r.rank() == 0 {
            r.send(1, 1, vec![b'a']);
            r.send(1, 2, vec![b'b']);
            (0, 0)
        } else {
            // Receive in the opposite order of posting.
            let b = r.recv(0, 2).0[0];
            let a = r.recv(0, 1).0[0];
            (a, b)
        }
    });
    assert_eq!(out.results[1], (b'a', b'b'));
}

#[test]
fn send_happens_before_matching_recv() {
    let out = run(2, 13, |r| {
        if r.rank() == 0 {
            r.compute(500);
            r.send(1, 0, vec![0]);
        } else {
            r.recv(0, 0);
        }
    });
    let send = out.events[0]
        .iter()
        .find(|e| matches!(e.kind, EventKind::Send { .. }))
        .unwrap();
    let recv = out.events[1]
        .iter()
        .find(|e| matches!(e.kind, EventKind::Recv { .. }))
        .unwrap();
    assert_eq!(send.message_seq(), recv.message_seq());
    assert!(
        send.t_start < recv.t_end,
        "send starts before recv completes"
    );
}

#[test]
fn bcast_delivers_to_all() {
    let out = run(8, 17, |r| {
        let data = if r.rank() == 3 { vec![9, 9, 9] } else { vec![] };
        r.bcast(3, &data)
    });
    for v in &out.results {
        assert_eq!(*v, vec![9, 9, 9]);
    }
}

#[test]
fn gather_collects_in_rank_order() {
    let out = run(6, 19, |r| r.gather(2, &[r.rank() as u8]));
    for (rank, res) in out.results.iter().enumerate() {
        if rank == 2 {
            let bufs = res.as_ref().unwrap();
            for (i, b) in bufs.iter().enumerate() {
                assert_eq!(b, &vec![i as u8]);
            }
        } else {
            assert!(res.is_none());
        }
    }
}

#[test]
fn allgather_same_result_everywhere() {
    let out = run(5, 23, |r| r.allgather(&[r.rank() as u8 * 2]));
    let expected: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i * 2]).collect();
    for res in &out.results {
        assert_eq!(*res, expected);
    }
}

#[test]
fn allreduce_and_exscan() {
    let out = run(8, 29, |r| {
        let sum = r.allreduce_sum_u64(r.rank() as u64 + 1);
        let max = r.allreduce_max_u64(r.rank() as u64);
        let pre = r.exscan_sum_u64(10);
        (sum, max, pre)
    });
    for (rank, &(sum, max, pre)) in out.results.iter().enumerate() {
        assert_eq!(sum, 36);
        assert_eq!(max, 7);
        assert_eq!(pre, 10 * rank as u64);
    }
}

#[test]
fn alltoallv_personalized_exchange() {
    let n = 4u32;
    let out = run(n, 31, |r| {
        let outgoing: Vec<Vec<u8>> = (0..n).map(|d| vec![r.rank() as u8, d as u8]).collect();
        r.alltoallv(outgoing)
    });
    for (me, incoming) in out.results.iter().enumerate() {
        for (src, buf) in incoming.iter().enumerate() {
            assert_eq!(buf, &vec![src as u8, me as u8]);
        }
    }
}

#[test]
fn deterministic_mode_reproduces_event_log() {
    let program = |r: Rank| {
        for step in 0..5 {
            r.compute(100 + r.rank() as u64);
            if r.rank() != 0 {
                r.send(0, step, vec![r.rank() as u8]);
            } else {
                for src in 1..r.nranks() {
                    r.recv(src, step);
                }
            }
            r.barrier();
        }
    };
    let a = run(6, 77, program);
    let b = run(6, 77, program);
    assert_eq!(a.events, b.events, "same seed ⇒ identical event log");
    assert_eq!(a.final_time_ns, b.final_time_ns);

    let c = run(6, 78, program);
    // A different seed permutes the interleaving; the logs should differ in
    // timing even though the program is the same.
    assert_ne!(
        a.events, c.events,
        "different seed should yield a different interleaving"
    );
}

#[test]
fn free_mode_completes() {
    let cfg = WorldCfg::new(8, 7).free_running();
    assert_eq!(cfg.mode, SchedMode::Free);
    let out = run_cfg(&cfg, |r| {
        r.barrier();
        r.allreduce_sum_u64(1)
    });
    for &v in &out.results {
        assert_eq!(v, 8);
    }
}

#[test]
fn skew_bounded_and_deterministic() {
    let cfg = WorldCfg::new(16, 99).with_max_skew_ns(20_000);
    let w1 = run_cfg(&cfg, |r| r.skew_ns());
    let w2 = run_cfg(&cfg, |r| r.skew_ns());
    assert_eq!(w1.results, w2.results);
    assert!(
        w1.results.iter().any(|&s| s != 0),
        "some rank should be skewed"
    );
    for &s in &w1.results {
        assert!(s.unsigned_abs() <= 20_000);
    }
    assert_eq!(w1.skews_ns, w1.results);
}

#[test]
fn zero_skew_option() {
    let cfg = WorldCfg::new(4, 1).with_max_skew_ns(0);
    let out = run_cfg(&cfg, |r| r.skew_ns());
    assert!(out.results.iter().all(|&s| s == 0));
}

#[test]
fn local_clock_applies_skew() {
    let cfg = WorldCfg::new(2, 5).with_max_skew_ns(1000);
    let out = run_cfg(&cfg, |r| (r.skew_ns(), r.local_clock(1_000_000)));
    for &(skew, local) in &out.results {
        assert_eq!(local as i64, 1_000_000 + skew);
    }
}

#[test]
fn deadlock_is_an_error_not_a_panic() {
    // The classic abort case: rank 0 receives from a rank that never
    // sends. `World::run` must return `Err(Deadlock)` without any panic
    // unwinding through this caller frame — no catch_unwind here.
    let res = World::run(&WorldCfg::new(2, 3), |r| {
        if r.rank() == 0 {
            r.recv(1, 0); // rank 1 never sends
        }
    });
    match res {
        Err(SimError::Deadlock { blocked }) => assert_eq!(blocked, vec![0]),
        other => panic!("expected deadlock error, got {other:?}"),
    }
}

#[test]
fn deadlock_detected_when_rank_skips_barrier() {
    let res = World::run(&WorldCfg::new(3, 3), |r| {
        if r.rank() != 2 {
            r.barrier(); // rank 2 exits without participating
        }
    });
    match res {
        Err(SimError::Deadlock { blocked }) => assert_eq!(blocked, vec![0, 1]),
        other => panic!("expected deadlock error, got {other:?}"),
    }
}

#[test]
fn timed_op_advances_clock_monotonically() {
    let out = run(2, 41, |r| {
        let (a0, a1, ()) = r.timed_op(mpisim::OpClass::FsWrite, 4096, |_| {});
        let (b0, b1, ()) = r.timed_op(mpisim::OpClass::FsRead, 0, |_| {});
        (a0, a1, b0, b1)
    });
    for &(a0, a1, b0, b1) in &out.results {
        assert!(a0 < a1);
        assert!(a1 <= b0, "ops of one rank are totally ordered");
        assert!(b0 < b1);
    }
}

#[test]
fn events_are_per_rank_and_time_ordered() {
    let out = run(4, 55, |r| {
        r.barrier();
        if r.rank() == 0 {
            r.send(1, 0, vec![1]);
        } else if r.rank() == 1 {
            r.recv(0, 0);
        }
        r.barrier();
    });
    for (rank, evs) in out.events.iter().enumerate() {
        let mut last = 0;
        for e in evs {
            assert_eq!(e.rank as usize, rank);
            assert!(e.t_start >= last, "per-rank events are time ordered");
            last = e.t_start;
        }
    }
}

#[test]
fn large_world_smoke() {
    // The scale study runs 1024 ranks; make sure the runtime handles a
    // few hundred threads with barriers and a reduction.
    let out = run(256, 4, |r| {
        r.barrier();
        r.allreduce_sum_u64(1)
    });
    for &v in &out.results {
        assert_eq!(v, 256);
    }
}

#[test]
fn scatter_delivers_each_part() {
    let out = run(6, 61, |r| {
        if r.rank() == 2 {
            let parts: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i * 3]).collect();
            r.scatter(2, Some(&parts))
        } else {
            r.scatter(2, None)
        }
    });
    for (rank, part) in out.results.iter().enumerate() {
        assert_eq!(*part, vec![rank as u8 * 3]);
    }
}

#[test]
fn reduce_sum_lands_at_root_only() {
    let out = run(8, 67, |r| r.reduce_sum_u64(3, r.rank() as u64 + 1));
    for (rank, res) in out.results.iter().enumerate() {
        if rank == 3 {
            assert_eq!(*res, Some(36));
        } else {
            assert_eq!(*res, None);
        }
    }
}

#[test]
fn sendrecv_ring_exchange_does_not_deadlock() {
    // Every rank sends to its right neighbour and receives from its left —
    // the classic pattern that deadlocks with unbuffered blocking sends.
    let out = run(8, 71, |r| {
        let n = r.nranks();
        let right = (r.rank() + 1) % n;
        let left = (r.rank() + n - 1) % n;
        r.sendrecv(right, 5, vec![r.rank() as u8], left, 5)
    });
    for (rank, got) in out.results.iter().enumerate() {
        let left = (rank + 8 - 1) % 8;
        assert_eq!(*got, vec![left as u8]);
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

#[test]
fn injected_crash_is_reported_and_survivors_finish() {
    // Rank 1 crashes at its very first op; the others still complete
    // their barriers because a crashed rank counts as departed.
    let cfg = WorldCfg::new(4, 11).with_faults(FaultPlan::none().with_crash(1, 0));
    let out = World::run(&cfg, |r| {
        r.compute(50);
        r.barrier();
        r.compute(50);
        r.barrier();
        r.rank()
    })
    .expect("crashes are recoverable");
    assert!(out.results[1].is_none(), "crashed rank returns no result");
    assert!(matches!(
        out.faults[1],
        Some(SimError::RankCrashed { rank: 1, .. })
    ));
    for r in [0usize, 2, 3] {
        assert_eq!(out.results[r], Some(r as u32));
        assert!(out.faults[r].is_none());
    }
}

#[test]
fn recv_from_crashed_peer_cascades_not_deadlocks() {
    // Rank 0 waits for a message rank 1 will never send (it crashes
    // first). Without crash awareness this would be a deadlock; instead
    // rank 0 fail-stops with PeerCrashed and the run completes.
    let cfg = WorldCfg::new(2, 13).with_faults(FaultPlan::none().with_crash(1, 0));
    let out = World::run(&cfg, |r| {
        if r.rank() == 0 {
            r.recv(1, 9);
        } else {
            r.compute(10);
            r.send(0, 9, vec![1]);
        }
    })
    .expect("peer crash cascades, not deadlocks");
    assert!(matches!(
        out.faults[1],
        Some(SimError::RankCrashed { rank: 1, .. })
    ));
    assert!(matches!(
        out.faults[0],
        Some(SimError::PeerCrashed { rank: 0, peer: 1 })
    ));
}

#[test]
fn crash_while_peers_wait_in_barrier_releases_them() {
    // Ranks 0..3 arrive at the barrier; rank 3 crashes on its way there.
    // The three waiters must release rather than deadlock.
    let cfg = WorldCfg::new(4, 17).with_faults(FaultPlan::none().with_crash(3, 1));
    let out = World::run(&cfg, |r| {
        r.compute(10 * (r.rank() as u64 + 1));
        r.barrier();
        r.rank()
    })
    .expect("barrier releases once the crash departs");
    for r in 0..3usize {
        assert_eq!(out.results[r], Some(r as u32));
    }
    assert!(out.results[3].is_none());
}

#[test]
fn io_fault_is_consumed_by_probe() {
    let cfg =
        WorldCfg::new(2, 19).with_faults(FaultPlan::none().with(0, 0, FaultKind::Io(IoFault::Eio)));
    let out = World::run(&cfg, |r| {
        // The fault is armed for op index >= 0; the probe consumes it once.
        let first = r.take_io_fault();
        let second = r.take_io_fault();
        r.compute(10);
        (first, second)
    })
    .expect("io faults are surfaced, not fatal");
    assert_eq!(
        out.results[0],
        Some((Some(IoFault::Eio), None)),
        "rank 0 sees the fault exactly once"
    );
    assert_eq!(out.results[1], Some((None, None)));
}

#[test]
fn delayed_message_advances_clock_instead_of_deadlocking() {
    const DELAY: u64 = 5_000_000;
    let cfg = WorldCfg::new(2, 23).with_faults(FaultPlan::none().with(
        0,
        0,
        FaultKind::MsgDelay { delay_ns: DELAY },
    ));
    let out = World::run(&cfg, |r| {
        if r.rank() == 0 {
            r.send(1, 4, vec![7]);
            0
        } else {
            let (payload, info) = r.recv(0, 4);
            assert_eq!(payload, vec![7]);
            info.t_end
        }
    })
    .expect("delayed delivery completes");
    let recv_end = out.results[1].expect("receiver result");
    assert!(
        recv_end >= DELAY,
        "receive completed at {recv_end}, before the {DELAY}ns delivery delay"
    );
    assert!(out.final_time_ns >= DELAY);
}

#[test]
fn identical_fault_plans_reproduce_identical_runs() {
    let plan =
        FaultPlan::none()
            .with_crash(2, 7)
            .with(1, 3, FaultKind::MsgDelay { delay_ns: 1000 });
    let program = |r: Rank| {
        for step in 0..4u32 {
            r.compute(100);
            let right = (r.rank() + 1) % r.nranks();
            let left = (r.rank() + r.nranks() - 1) % r.nranks();
            r.sendrecv(right, step, vec![r.rank() as u8], left, step);
            r.barrier();
        }
        r.now()
    };
    let cfg = WorldCfg::new(4, 29).with_faults(plan);
    let a = World::run(&cfg, program).expect("run a");
    let b = World::run(&cfg, program).expect("run b");
    assert_eq!(a.events, b.events, "same (seed, plan) ⇒ identical events");
    assert_eq!(a.final_time_ns, b.final_time_ns);
    assert_eq!(
        a.faults.iter().flatten().count(),
        b.faults.iter().flatten().count()
    );
}

#[test]
fn seeded_plan_campaign_smoke_never_panics() {
    // A miniature fault campaign: every (seed, kind) cell must complete
    // without a panic escaping World::run.
    let kinds = [
        FaultKind::Crash,
        FaultKind::Io(IoFault::Eintr),
        FaultKind::Io(IoFault::Enospc),
        FaultKind::MsgDelay { delay_ns: 10_000 },
    ];
    for seed in 0..4u64 {
        for kind in kinds {
            let plan = FaultPlan::seeded(seed, 4, kind, 2, 16);
            let cfg = WorldCfg::new(4, seed).with_faults(plan);
            let res = World::run(&cfg, |r| {
                for _ in 0..6 {
                    r.compute(10);
                    let _ = r.take_io_fault();
                    r.barrier();
                }
            });
            // A cascade may fail individual ranks but the run reports it.
            let out = res.expect("fault campaign cell must not deadlock");
            for (r, f) in out.faults.iter().enumerate() {
                if let Some(e) = f {
                    assert!(
                        matches!(
                            e,
                            SimError::RankCrashed { .. } | SimError::PeerCrashed { .. }
                        ),
                        "rank {r}: unexpected fault {e}"
                    );
                }
            }
        }
    }
}

#[test]
fn genuine_panic_drains_world_then_propagates() {
    // A bug (non-SimAbort panic) in one rank must not hang the other
    // ranks on the scheduler token: the world drains, then the payload
    // re-surfaces from World::run on the caller's thread.
    let cfg = WorldCfg::new(4, 99);
    let caught = std::panic::catch_unwind(|| {
        let _ = World::run(&cfg, |r| {
            r.compute(10);
            if r.rank() == 2 {
                panic!("application bug on rank 2");
            }
            for _ in 0..4 {
                r.compute(10);
                r.barrier();
            }
        });
    });
    let payload = caught.expect_err("the bug must propagate");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("<non-str>");
    assert_eq!(msg, "application bug on rank 2");
}

#[test]
fn delayed_sender_in_gather_order_does_not_livelock() {
    // Regression: rank 0 gathers in rank order, rank 1's send is delayed.
    // Rank 2's message is already visible in rank 0's mailbox while rank 0
    // blocks on rank 1 — the scheduler must advance the clock to rank 1's
    // delivery, not re-wake rank 0 for the visible-but-wrong channel.
    let plan = FaultPlan::none().with(
        1,
        1,
        FaultKind::MsgDelay {
            delay_ns: 5_000_000,
        },
    );
    let cfg = WorldCfg::new(4, 7).with_faults(plan);
    let out = World::run(&cfg, |r| {
        if r.rank() == 0 {
            let mut total = 0usize;
            for src in 1..4 {
                let (payload, _) = r.recv(src, 9);
                total += payload.len();
            }
            total
        } else {
            // Ranks 2 and 3 send before rank 1 gets scheduled far enough
            // for its delayed send to matter; ordering is irrelevant —
            // only rank 1's message is delayed.
            r.compute(10 * r.rank() as u64);
            r.send(0, 9, vec![r.rank() as u8; r.rank() as usize]);
            0
        }
    })
    .expect("no deadlock: the delayed message must eventually deliver");
    assert_eq!(out.results[0], Some(1 + 2 + 3));
    assert!(out.final_time_ns >= 5_000_000, "clock advanced to delivery");
}

#[test]
fn receiver_wakes_when_clock_passes_delivery_time() {
    // Regression: rank 0 parks on rank 1's delayed message; rank 1 then
    // burns enough compute that the clock passes the delivery time through
    // ordinary cost accounting, long before every rank is parked. The
    // delivery must wake rank 0 then — the send-time wake already happened
    // (and found an invisible front), and rank 1 reaching the barrier
    // afterwards used to leave no future-dated front for the deadlock
    // scan, deadlocking a perfectly deliverable program.
    let plan = FaultPlan::none().with(
        1,
        1,
        FaultKind::MsgDelay {
            delay_ns: 1_000_000,
        },
    );
    let cfg = WorldCfg::new(3, 11).with_faults(plan);
    let out = World::run(&cfg, |r| {
        let info = if r.rank() == 0 {
            let (payload, _) = r.recv(1, 5);
            payload.len()
        } else {
            if r.rank() == 1 {
                r.send(0, 5, vec![0xAB; 4]);
            }
            // Both senders outlive the delay in simulated time.
            for _ in 0..64 {
                r.compute(100_000);
            }
            0
        };
        r.barrier();
        info
    })
    .expect("no deadlock: delivery time passes while peers still run");
    assert_eq!(out.results[0], Some(4));
    assert!(out.final_time_ns >= 1_000_000);
}
