//! Property tests for the simulated runtime: deterministic replay and
//! deadlock-freedom over randomized (but well-formed) SPMD programs.

use proptest::prelude::*;

use mpisim::{World, WorldCfg};

/// One step of a generated SPMD program. Every rank executes the same
/// step sequence (SPMD), so collectives always match.
#[derive(Debug, Clone, Copy)]
enum Step {
    Compute(u16),
    Barrier,
    /// Ring exchange with the given tag: rank r sends to r+1 mod n.
    Ring(u8),
    /// Gather to the given root.
    Gather(u8),
    /// All-to-one then broadcast.
    Allreduce,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u16..2000).prop_map(Step::Compute),
        Just(Step::Barrier),
        any::<u8>().prop_map(Step::Ring),
        any::<u8>().prop_map(Step::Gather),
        Just(Step::Allreduce),
    ]
}

fn execute(nranks: u32, seed: u64, steps: &[Step]) -> mpisim::RunOutput<u64> {
    World::run(&WorldCfg::new(nranks, seed), |r| {
        let mut acc = 0u64;
        for step in steps {
            match *step {
                Step::Compute(ns) => r.compute(ns as u64),
                Step::Barrier => {
                    r.barrier();
                }
                Step::Ring(tag) => {
                    let n = r.nranks();
                    let right = (r.rank() + 1) % n;
                    let left = (r.rank() + n - 1) % n;
                    let got = r.sendrecv(
                        right,
                        tag as u32,
                        vec![r.rank() as u8],
                        left,
                        tag as u32,
                    );
                    acc += got[0] as u64;
                }
                Step::Gather(root) => {
                    let root = root as u32 % r.nranks();
                    if let Some(parts) = r.gather(root, &[r.rank() as u8]) {
                        acc += parts.iter().map(|p| p[0] as u64).sum::<u64>();
                    }
                }
                Step::Allreduce => {
                    acc += r.allreduce_sum_u64(r.rank() as u64);
                }
            }
        }
        acc
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any well-formed SPMD program completes (no deadlock) and replays
    /// bit-identically under the same seed.
    #[test]
    fn deterministic_replay_of_random_programs(
        steps in prop::collection::vec(step_strategy(), 1..12),
        nranks in 2u32..6,
        seed in any::<u64>(),
    ) {
        let a = execute(nranks, seed, &steps);
        let b = execute(nranks, seed, &steps);
        prop_assert_eq!(&a.results, &b.results);
        prop_assert_eq!(&a.events, &b.events);
        prop_assert_eq!(a.final_time_ns, b.final_time_ns);
    }

    /// The computed values are interleaving-independent: a different seed
    /// permutes the schedule but every deterministic reduction result is
    /// unchanged.
    #[test]
    fn results_are_schedule_invariant(
        steps in prop::collection::vec(step_strategy(), 1..10),
        nranks in 2u32..5,
    ) {
        let a = execute(nranks, 1, &steps);
        let b = execute(nranks, 2, &steps);
        prop_assert_eq!(a.results, b.results);
    }

    /// Every send is eventually matched: the event log has equal numbers
    /// of sends and receives with a bijection on sequence numbers.
    #[test]
    fn sends_and_receives_pair_up(
        steps in prop::collection::vec(step_strategy(), 1..10),
        nranks in 2u32..5,
        seed in any::<u64>(),
    ) {
        let out = execute(nranks, seed, &steps);
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for e in out.events.iter().flatten() {
            match e.kind {
                mpisim::EventKind::Send { seq, .. } => sends.push(seq),
                mpisim::EventKind::Recv { seq, .. } => recvs.push(seq),
                mpisim::EventKind::Barrier { .. } => {}
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        prop_assert_eq!(sends, recvs);
    }
}
