//! Property-style tests for the simulated runtime: deterministic replay
//! and deadlock-freedom over randomized (but well-formed) SPMD programs,
//! generated from pinned [`simrng`] seeds.

use mpisim::{World, WorldCfg};
use simrng::SimRng;

/// One step of a generated SPMD program. Every rank executes the same
/// step sequence (SPMD), so collectives always match.
#[derive(Debug, Clone, Copy)]
enum Step {
    Compute(u16),
    Barrier,
    /// Ring exchange with the given tag: rank r sends to r+1 mod n.
    Ring(u8),
    /// Gather to the given root.
    Gather(u8),
    /// All-to-one then broadcast.
    Allreduce,
}

fn random_step(rng: &mut SimRng) -> Step {
    match rng.range_u32(0, 5) {
        0 => Step::Compute(rng.range_u64(1, 2000) as u16),
        1 => Step::Barrier,
        2 => Step::Ring(rng.next_u32() as u8),
        3 => Step::Gather(rng.next_u32() as u8),
        _ => Step::Allreduce,
    }
}

fn random_steps(rng: &mut SimRng, min: usize, max: usize) -> Vec<Step> {
    (0..rng.range_usize(min, max))
        .map(|_| random_step(rng))
        .collect()
}

fn execute(nranks: u32, seed: u64, steps: &[Step]) -> mpisim::RunOutput<u64> {
    let out = World::run(&WorldCfg::new(nranks, seed), |r| {
        let mut acc = 0u64;
        for step in steps {
            match *step {
                Step::Compute(ns) => r.compute(ns as u64),
                Step::Barrier => {
                    r.barrier();
                }
                Step::Ring(tag) => {
                    let n = r.nranks();
                    let right = (r.rank() + 1) % n;
                    let left = (r.rank() + n - 1) % n;
                    let got = r.sendrecv(right, tag as u32, vec![r.rank() as u8], left, tag as u32);
                    acc += got[0] as u64;
                }
                Step::Gather(root) => {
                    let root = root as u32 % r.nranks();
                    if let Some(parts) = r.gather(root, &[r.rank() as u8]) {
                        acc += parts.iter().map(|p| p[0] as u64).sum::<u64>();
                    }
                }
                Step::Allreduce => {
                    acc += r.allreduce_sum_u64(r.rank() as u64);
                }
            }
        }
        acc
    });
    out.expect("well-formed SPMD programs never deadlock")
}

/// Any well-formed SPMD program completes (no deadlock) and replays
/// bit-identically under the same seed.
#[test]
fn deterministic_replay_of_random_programs() {
    let mut rng = SimRng::seed_from_u64(0x51D1);
    for _ in 0..32 {
        let steps = random_steps(&mut rng, 1, 12);
        let nranks = rng.range_u32(2, 6);
        let seed = rng.next_u64();
        let a = execute(nranks, seed, &steps);
        let b = execute(nranks, seed, &steps);
        assert_eq!(a.results, b.results);
        assert_eq!(a.events, b.events);
        assert_eq!(a.final_time_ns, b.final_time_ns);
    }
}

/// The computed values are interleaving-independent: a different seed
/// permutes the schedule but every deterministic reduction result is
/// unchanged.
#[test]
fn results_are_schedule_invariant() {
    let mut rng = SimRng::seed_from_u64(0x51D2);
    for _ in 0..32 {
        let steps = random_steps(&mut rng, 1, 10);
        let nranks = rng.range_u32(2, 5);
        let a = execute(nranks, 1, &steps);
        let b = execute(nranks, 2, &steps);
        assert_eq!(a.results, b.results);
    }
}

/// Every send is eventually matched: the event log has equal numbers of
/// sends and receives with a bijection on sequence numbers.
#[test]
fn sends_and_receives_pair_up() {
    let mut rng = SimRng::seed_from_u64(0x51D3);
    for _ in 0..32 {
        let steps = random_steps(&mut rng, 1, 10);
        let nranks = rng.range_u32(2, 5);
        let seed = rng.next_u64();
        let out = execute(nranks, seed, &steps);
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for e in out.events.iter().flatten() {
            match e.kind {
                mpisim::EventKind::Send { seq, .. } => sends.push(seq),
                mpisim::EventKind::Recv { seq, .. } => recvs.push(seq),
                mpisim::EventKind::Barrier { .. } => {}
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs);
    }
}
