//! Shared workload generators for the benchmark suite, plus a minimal
//! dependency-free timing harness (`mini`) used by the `harness = false`
//! bench binaries in place of criterion.

use recorder::{AccessKind, DataAccess, Layer, PathId, ResolvedTrace, SyncEvent, SyncKind};
use simrng::SimRng;

/// Uniformly random accesses over a file span — Algorithm 1's "practice"
/// regime where the sweep is effectively linear.
pub fn random_accesses(n: usize, ranks: u32, span: u64, seed: u64) -> Vec<DataAccess> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.range_u64(64, 4096);
            let offset = rng.range_u64(0, span);
            DataAccess {
                rank: rng.range_u32(0, ranks),
                t_start: i as u64 * 10,
                t_end: i as u64 * 10 + 5,
                file: PathId(0),
                offset,
                len,
                kind: if rng.gen_bool(0.7) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                origin: Layer::App,
                fd: 3,
            }
        })
        .collect()
}

/// Worst case for Algorithm 1: every access overlaps every other
/// (quadratic pair count).
pub fn worst_case_accesses(n: usize, ranks: u32) -> Vec<DataAccess> {
    (0..n)
        .map(|i| DataAccess {
            rank: i as u32 % ranks,
            t_start: i as u64 * 10,
            t_end: i as u64 * 10 + 5,
            file: PathId(0),
            offset: 0,
            len: 1 << 20,
            kind: AccessKind::Write,
            origin: Layer::App,
            fd: 3,
        })
        .collect()
}

/// A synthetic resolved trace with opens/commits/closes sprinkled in, for
/// the conflict-detector benchmarks.
pub fn synthetic_resolved(n: usize, ranks: u32, seed: u64) -> ResolvedTrace {
    let accesses = random_accesses(n, ranks, 1 << 22, seed);
    let mut syncs = Vec::new();
    for r in 0..ranks {
        syncs.push(SyncEvent {
            rank: r,
            t: 0,
            file: PathId(0),
            kind: SyncKind::Open,
        });
        for k in 1..8u64 {
            syncs.push(SyncEvent {
                rank: r,
                t: k * (n as u64 * 10 / 8),
                file: PathId(0),
                kind: SyncKind::Commit,
            });
        }
        syncs.push(SyncEvent {
            rank: r,
            t: n as u64 * 10 + 1,
            file: PathId(0),
            kind: SyncKind::Close,
        });
    }
    syncs.sort_by_key(|s| s.t);
    ResolvedTrace {
        accesses,
        syncs,
        seek_mismatches: 0,
        short_reads: 0,
    }
}

/// Run one application replica and return its adjusted trace + resolution,
/// for end-to-end pipeline benchmarks.
pub fn app_trace(id: hpcapps::AppId, nranks: u32) -> (recorder::TraceSet, ResolvedTrace) {
    let spec = hpcapps::spec(id);
    let out = iolibs::run_app(&iolibs::RunConfig::new(nranks, 99), |ctx| spec.run(ctx));
    let adjusted = recorder::adjust::apply(&out.trace);
    let resolved = recorder::offset::resolve(&adjusted);
    (adjusted, resolved)
}

/// Minimal timing harness: warm up, then grow the batch size until a
/// sample takes long enough to be meaningful, and report the per-iteration
/// time of the final batch.
pub mod mini {
    use std::hint::black_box;
    use std::time::Instant;

    fn fmt_time(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:8.1} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:8.2} µs", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:8.2} ms", secs * 1e3)
        } else {
            format!("{secs:8.3} s ")
        }
    }

    /// Time `f` and print `group/name: <time> per iter`.
    pub fn bench<T>(group: &str, name: &str, mut f: impl FnMut() -> T) {
        black_box(f());
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt.as_millis() >= 50 || iters >= 1 << 16 {
                let per = dt.as_secs_f64() / iters as f64;
                println!(
                    "{group:<28} {name:<24} {} per iter  ({iters} iters)",
                    fmt_time(per)
                );
                return;
            }
            iters *= 4;
        }
    }
}
