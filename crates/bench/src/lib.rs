//! Shared workload generators for the benchmark suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recorder::{AccessKind, DataAccess, Layer, PathId, ResolvedTrace, SyncEvent, SyncKind};

/// Uniformly random accesses over a file span — Algorithm 1's "practice"
/// regime where the sweep is effectively linear.
pub fn random_accesses(n: usize, ranks: u32, span: u64, seed: u64) -> Vec<DataAccess> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.gen_range(64..4096u64);
            let offset = rng.gen_range(0..span);
            DataAccess {
                rank: rng.gen_range(0..ranks),
                t_start: i as u64 * 10,
                t_end: i as u64 * 10 + 5,
                file: PathId(0),
                offset,
                len,
                kind: if rng.gen_bool(0.7) { AccessKind::Write } else { AccessKind::Read },
                origin: Layer::App,
                fd: 3,
            }
        })
        .collect()
}

/// Worst case for Algorithm 1: every access overlaps every other
/// (quadratic pair count).
pub fn worst_case_accesses(n: usize, ranks: u32) -> Vec<DataAccess> {
    (0..n)
        .map(|i| DataAccess {
            rank: i as u32 % ranks,
            t_start: i as u64 * 10,
            t_end: i as u64 * 10 + 5,
            file: PathId(0),
            offset: 0,
            len: 1 << 20,
            kind: AccessKind::Write,
            origin: Layer::App,
            fd: 3,
        })
        .collect()
}

/// A synthetic resolved trace with opens/commits/closes sprinkled in, for
/// the conflict-detector benchmarks.
pub fn synthetic_resolved(n: usize, ranks: u32, seed: u64) -> ResolvedTrace {
    let accesses = random_accesses(n, ranks, 1 << 22, seed);
    let mut syncs = Vec::new();
    for r in 0..ranks {
        syncs.push(SyncEvent { rank: r, t: 0, file: PathId(0), kind: SyncKind::Open });
        for k in 1..8u64 {
            syncs.push(SyncEvent {
                rank: r,
                t: k * (n as u64 * 10 / 8),
                file: PathId(0),
                kind: SyncKind::Commit,
            });
        }
        syncs.push(SyncEvent {
            rank: r,
            t: n as u64 * 10 + 1,
            file: PathId(0),
            kind: SyncKind::Close,
        });
    }
    syncs.sort_by_key(|s| s.t);
    ResolvedTrace { accesses, syncs, seek_mismatches: 0, short_reads: 0 }
}

/// Run one application replica and return its adjusted trace + resolution,
/// for end-to-end pipeline benchmarks.
pub fn app_trace(id: hpcapps::AppId, nranks: u32) -> (recorder::TraceSet, ResolvedTrace) {
    let spec = hpcapps::spec(id);
    let out = iolibs::run_app(&iolibs::RunConfig::new(nranks, 99), |ctx| spec.run(ctx));
    let adjusted = recorder::adjust::apply(&out.trace);
    let resolved = recorder::offset::resolve(&adjusted);
    (adjusted, resolved)
}
