//! End-to-end regeneration cost, one benchmark per paper artifact: how
//! long it takes to run an application replica through the simulated
//! stack *and* produce its Table 3 / Table 4 / Figure 1 / Figure 3 rows.

use pfs_semantics_bench::mini;
use recorder::{adjust, offset};
use semantics_core::conflict::{detect_conflicts, AnalysisModel};
use semantics_core::metadata::MetadataCensus;
use semantics_core::patterns::{global_pattern, highlevel, local_pattern};

const NRANKS: u32 = 8;

fn trace_gen() {
    // Trace generation: the replica running through mpisim + iolibs +
    // pfssim with the recorder attached.
    for id in [
        hpcapps::AppId::FlashFbs,
        hpcapps::AppId::LammpsAdios,
        hpcapps::AppId::HaccIoPosix,
        hpcapps::AppId::Lbann,
    ] {
        let spec = hpcapps::spec(id);
        mini::bench("apps/trace_gen", &format!("{id:?}"), || {
            iolibs::run_app(&iolibs::RunConfig::new(NRANKS, 5), |ctx| spec.run(ctx))
        });
    }
}

fn per_artifact() {
    // Fixed trace, per-artifact analysis cost.
    let (adjusted, resolved) = pfs_semantics_bench::app_trace(hpcapps::AppId::FlashFbs, NRANKS);

    mini::bench("apps/artifacts", "table3_highlevel", || {
        highlevel::classify(&resolved, NRANKS)
    });
    mini::bench("apps/artifacts", "table4_session", || {
        detect_conflicts(&resolved, AnalysisModel::Session)
    });
    mini::bench("apps/artifacts", "table4_commit", || {
        detect_conflicts(&resolved, AnalysisModel::Commit)
    });
    mini::bench("apps/artifacts", "fig1_local", || local_pattern(&resolved));
    mini::bench("apps/artifacts", "fig1_global", || {
        global_pattern(&resolved)
    });
    mini::bench("apps/artifacts", "fig3_census", || {
        MetadataCensus::from_trace(&adjusted)
    });
}

fn full_pipeline() {
    // Everything for one configuration: run + adjust + resolve + all
    // artifacts — one Table 3/4 row's total cost.
    let spec = hpcapps::spec(hpcapps::AppId::FlashFbs);
    mini::bench("apps/full_pipeline", "flash_fbs_row", || {
        let out = iolibs::run_app(&iolibs::RunConfig::new(NRANKS, 5), |ctx| spec.run(ctx));
        let adjusted = adjust::apply(&out.trace);
        let resolved = offset::resolve(&adjusted);
        let session = detect_conflicts(&resolved, AnalysisModel::Session);
        let commit = detect_conflicts(&resolved, AnalysisModel::Commit);
        let hl = highlevel::classify(&resolved, NRANKS);
        (session.total(), commit.total(), hl.label())
    });
}

fn main() {
    trace_gen();
    per_artifact();
    full_pipeline();
}
