//! End-to-end regeneration cost, one benchmark per paper artifact: how
//! long it takes to run an application replica through the simulated
//! stack *and* produce its Table 3 / Table 4 / Figure 1 / Figure 3 rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recorder::{adjust, offset};
use semantics_core::conflict::{detect_conflicts, AnalysisModel};
use semantics_core::metadata::MetadataCensus;
use semantics_core::patterns::{global_pattern, highlevel, local_pattern};

const NRANKS: u32 = 8;

fn trace_gen(c: &mut Criterion) {
    // Trace generation: the replica running through mpisim + iolibs +
    // pfssim with the recorder attached.
    let mut g = c.benchmark_group("apps/trace_gen");
    g.sample_size(10);
    for id in [
        hpcapps::AppId::FlashFbs,
        hpcapps::AppId::LammpsAdios,
        hpcapps::AppId::HaccIoPosix,
        hpcapps::AppId::Lbann,
    ] {
        let spec = hpcapps::spec(id);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{id:?}")), &spec, |b, s| {
            b.iter(|| iolibs::run_app(&iolibs::RunConfig::new(NRANKS, 5), |ctx| s.run(ctx)))
        });
    }
    g.finish();
}

fn per_artifact(c: &mut Criterion) {
    // Fixed trace, per-artifact analysis cost.
    let (adjusted, resolved) = pfs_semantics_bench::app_trace(hpcapps::AppId::FlashFbs, NRANKS);

    let mut g = c.benchmark_group("apps/artifacts");
    g.bench_function("table3_highlevel", |b| b.iter(|| highlevel::classify(&resolved, NRANKS)));
    g.bench_function("table4_session", |b| {
        b.iter(|| detect_conflicts(&resolved, AnalysisModel::Session))
    });
    g.bench_function("table4_commit", |b| {
        b.iter(|| detect_conflicts(&resolved, AnalysisModel::Commit))
    });
    g.bench_function("fig1_local", |b| b.iter(|| local_pattern(&resolved)));
    g.bench_function("fig1_global", |b| b.iter(|| global_pattern(&resolved)));
    g.bench_function("fig3_census", |b| b.iter(|| MetadataCensus::from_trace(&adjusted)));
    g.finish();
}

fn full_pipeline(c: &mut Criterion) {
    // Everything for one configuration: run + adjust + resolve + all
    // artifacts — one Table 3/4 row's total cost.
    let spec = hpcapps::spec(hpcapps::AppId::FlashFbs);
    let mut g = c.benchmark_group("apps/full_pipeline");
    g.sample_size(10);
    g.bench_function("flash_fbs_row", |b| {
        b.iter(|| {
            let out = iolibs::run_app(&iolibs::RunConfig::new(NRANKS, 5), |ctx| spec.run(ctx));
            let adjusted = adjust::apply(&out.trace);
            let resolved = offset::resolve(&adjusted);
            let session = detect_conflicts(&resolved, AnalysisModel::Session);
            let commit = detect_conflicts(&resolved, AnalysisModel::Commit);
            let hl = highlevel::classify(&resolved, NRANKS);
            (session.total(), commit.total(), hl.label())
        })
    });
    g.finish();
}

criterion_group!(benches, trace_gen, per_artifact, full_pipeline);
criterion_main!(benches);
