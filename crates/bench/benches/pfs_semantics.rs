//! The motivation benchmark (§3.1): what relaxed consistency buys.
//!
//! Strong semantics makes every data operation pass through the extent
//! lock manager; commit/session/eventual engines buffer writes and skip
//! locking entirely. The `engine_writes` group measures raw *host-side*
//! simulator write cost per engine (buffering engines pay an extra copy
//! per publish; eventual defers publication entirely), and the printed
//! lock-traffic counters carry the semantic argument — "the metadata
//! server becomes the bottleneck" — in numbers: locks = writes under
//! strong, zero under every relaxed engine.

use pfs_semantics_bench::mini;
use pfssim::{OpenFlags, Pfs, PfsConfig, SemanticsModel};

const WRITES: u64 = 256;
const WRITE_SIZE: usize = 64 * 1024;

fn write_workload(model: SemanticsModel) -> Pfs {
    let fs = Pfs::new(PfsConfig::default().with_semantics(model));
    let mut c = fs.client(0);
    let fd = c
        .open("/bench", OpenFlags::wronly_create_trunc(), 0)
        .unwrap();
    let buf = vec![7u8; WRITE_SIZE];
    for i in 0..WRITES {
        c.pwrite(fd, i * WRITE_SIZE as u64, &buf, i).unwrap();
    }
    c.fsync(fd, WRITES).unwrap();
    c.close(fd, WRITES + 1).unwrap();
    fs
}

fn bench_engines() {
    for model in SemanticsModel::ALL {
        mini::bench("pfs/engine_writes", model.name(), || write_workload(model));
    }

    // Print the lock/publish counters once per engine — the §3.1 argument.
    for model in SemanticsModel::ALL {
        let fs = write_workload(model);
        let s = fs.stats();
        eprintln!(
            "{:>8}: locks={:<5} publishes={:<5} pending_peak~={}",
            model.name(),
            s.locks_acquired,
            s.publishes,
            WRITES
        );
    }
}

fn bench_shared_file_contention() {
    // 16 clients interleaving writes to one shared file: strong semantics
    // pays one lock per extent; the relaxed engines pay none.
    for model in [SemanticsModel::Strong, SemanticsModel::Commit] {
        mini::bench("pfs/shared_file", model.name(), || {
            let fs = Pfs::new(PfsConfig::default().with_semantics(model));
            let mut clients: Vec<_> = (0..16).map(|r| fs.client(r)).collect();
            let buf = vec![1u8; 4096];
            let mut fds = Vec::new();
            for (r, cl) in clients.iter_mut().enumerate() {
                let flags = if r == 0 {
                    OpenFlags::rdwr_create()
                } else {
                    OpenFlags::rdwr()
                };
                fds.push(cl.open("/shared", flags, r as u64).unwrap());
            }
            for step in 0..32u64 {
                for (r, cl) in clients.iter_mut().enumerate() {
                    let off = (step * 16 + r as u64) * 4096;
                    cl.pwrite(fds[r], off, &buf, step * 100 + r as u64).unwrap();
                }
            }
            for (r, mut cl) in clients.into_iter().enumerate() {
                cl.close(fds[r], 10_000 + r as u64).unwrap();
            }
            fs
        });
    }
}

fn bench_session_snapshots() {
    // Session opens snapshot the published image via Arc (O(1)); this
    // verifies snapshots stay cheap as the file grows.
    for mb in [1usize, 8] {
        let fs = Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Session));
        let mut w = fs.client(0);
        let fd = w.open("/big", OpenFlags::wronly_create_trunc(), 0).unwrap();
        w.write(fd, &vec![1u8; mb << 20], 1).unwrap();
        w.close(fd, 2).unwrap();
        mini::bench("pfs/session_open", &format!("{mb}MiB"), || {
            let mut r = fs.client(1);
            let fd = r.open("/big", OpenFlags::rdonly(), 100).unwrap();
            r.close(fd, 101).unwrap();
        });
    }
}

fn main() {
    bench_engines();
    bench_shared_file_contention();
    bench_session_snapshots();
}
