//! The motivation benchmark (§3.1): what relaxed consistency buys.
//!
//! Strong semantics makes every data operation pass through the extent
//! lock manager; commit/session/eventual engines buffer writes and skip
//! locking entirely. The `engine_writes` group measures raw *host-side*
//! simulator write cost per engine (buffering engines pay an extra copy
//! per publish; eventual defers publication entirely), and the printed
//! lock-traffic counters carry the semantic argument — "the metadata
//! server becomes the bottleneck" — in numbers: locks = writes under
//! strong, zero under every relaxed engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfssim::{OpenFlags, Pfs, PfsConfig, SemanticsModel};

const WRITES: u64 = 256;
const WRITE_SIZE: usize = 64 * 1024;

fn write_workload(model: SemanticsModel) -> Pfs {
    let fs = Pfs::new(PfsConfig::default().with_semantics(model));
    let mut c = fs.client(0);
    let fd = c.open("/bench", OpenFlags::wronly_create_trunc(), 0).unwrap();
    let buf = vec![7u8; WRITE_SIZE];
    for i in 0..WRITES {
        c.pwrite(fd, i * WRITE_SIZE as u64, &buf, i).unwrap();
    }
    c.fsync(fd, WRITES).unwrap();
    c.close(fd, WRITES + 1).unwrap();
    fs
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("pfs/engine_writes");
    g.throughput(Throughput::Bytes(WRITES * WRITE_SIZE as u64));
    for model in SemanticsModel::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(model.name()), &model, |b, &m| {
            b.iter(|| write_workload(m))
        });
    }
    g.finish();

    // Print the lock/publish counters once per engine — the §3.1 argument.
    for model in SemanticsModel::ALL {
        let fs = write_workload(model);
        let s = fs.stats();
        eprintln!(
            "{:>8}: locks={:<5} publishes={:<5} pending_peak~={}",
            model.name(),
            s.locks_acquired,
            s.publishes,
            WRITES
        );
    }
}

fn bench_shared_file_contention(c: &mut Criterion) {
    // 16 clients interleaving writes to one shared file: strong semantics
    // pays one lock per extent; the relaxed engines pay none.
    let mut g = c.benchmark_group("pfs/shared_file");
    g.sample_size(20);
    for model in [SemanticsModel::Strong, SemanticsModel::Commit] {
        g.bench_with_input(BenchmarkId::from_parameter(model.name()), &model, |b, &m| {
            b.iter(|| {
                let fs = Pfs::new(PfsConfig::default().with_semantics(m));
                let mut clients: Vec<_> = (0..16).map(|r| fs.client(r)).collect();
                let buf = vec![1u8; 4096];
                let mut fds = Vec::new();
                for (r, cl) in clients.iter_mut().enumerate() {
                    let flags = if r == 0 {
                        OpenFlags::rdwr_create()
                    } else {
                        OpenFlags::rdwr()
                    };
                    fds.push(cl.open("/shared", flags, r as u64).unwrap());
                }
                for step in 0..32u64 {
                    for (r, cl) in clients.iter_mut().enumerate() {
                        let off = (step * 16 + r as u64) * 4096;
                        cl.pwrite(fds[r], off, &buf, step * 100 + r as u64).unwrap();
                    }
                }
                for (r, mut cl) in clients.into_iter().enumerate() {
                    cl.close(fds[r], 10_000 + r as u64).unwrap();
                }
                fs
            })
        });
    }
    g.finish();
}

fn bench_session_snapshots(c: &mut Criterion) {
    // Session opens snapshot the published image via Arc (O(1)); this
    // verifies snapshots stay cheap as the file grows.
    let mut g = c.benchmark_group("pfs/session_open");
    for mb in [1usize, 8] {
        let fs = Pfs::new(PfsConfig::default().with_semantics(SemanticsModel::Session));
        let mut w = fs.client(0);
        let fd = w.open("/big", OpenFlags::wronly_create_trunc(), 0).unwrap();
        w.write(fd, &vec![1u8; mb << 20], 1).unwrap();
        w.close(fd, 2).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(format!("{mb}MiB")), &fs, |b, fs| {
            b.iter(|| {
                let mut r = fs.client(1);
                let fd = r.open("/big", OpenFlags::rdonly(), 100).unwrap();
                r.close(fd, 101).unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_shared_file_contention, bench_session_snapshots);
criterion_main!(benches);
