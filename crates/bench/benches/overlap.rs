//! Algorithm 1 scaling (§5.1): "This algorithm is quadratic in the worst
//! case … In practice, the running time (sorting excepted) is linear in
//! the number of records." The `random` series shows the practical linear
//! regime; the `worst_case` series (all accesses overlap) shows the
//! quadratic blow-up; `bruteforce` is the O(n²) reference.

use pfs_semantics_bench::{mini, random_accesses, worst_case_accesses};
use recorder::DataAccess;
use semantics_core::overlap::{detect_overlaps, detect_overlaps_bruteforce, detect_overlaps_merge};

fn bench_random() {
    for n in [1_000usize, 4_000, 16_000] {
        let accs = random_accesses(n, 64, 1 << 24, 42);
        mini::bench("overlap/random", &format!("sweep/{n}"), || {
            detect_overlaps(&accs)
        });
        if n <= 4_000 {
            mini::bench("overlap/random", &format!("bruteforce/{n}"), || {
                detect_overlaps_bruteforce(&accs)
            });
        }
    }
}

fn bench_merge_variant() {
    // The §5.1 ablation: sort-based vs merge-based ordering, on per-rank
    // pre-sorted record lists.
    for n in [4_000usize, 16_000] {
        let mut per_rank: Vec<Vec<DataAccess>> = vec![Vec::new(); 64];
        for a in random_accesses(n, 64, 1 << 24, 9) {
            per_rank[a.rank as usize].push(a);
        }
        for list in &mut per_rank {
            list.sort_by_key(|a| (a.offset, a.end()));
        }
        let flat: Vec<DataAccess> = per_rank.iter().flatten().copied().collect();
        mini::bench("overlap/merge_ablation", &format!("sort/{n}"), || {
            detect_overlaps(&flat)
        });
        mini::bench("overlap/merge_ablation", &format!("merge/{n}"), || {
            detect_overlaps_merge(&per_rank).expect("sorted")
        });
    }
}

fn bench_worst_case() {
    for n in [256usize, 512, 1024] {
        let accs = worst_case_accesses(n, 64);
        mini::bench("overlap/worst_case", &format!("sweep/{n}"), || {
            detect_overlaps(&accs)
        });
    }
}

fn main() {
    bench_random();
    bench_merge_variant();
    bench_worst_case();
}
