//! Algorithm 1 scaling (§5.1): "This algorithm is quadratic in the worst
//! case … In practice, the running time (sorting excepted) is linear in
//! the number of records." The `random` series shows the practical linear
//! regime; the `worst_case` series (all accesses overlap) shows the
//! quadratic blow-up; `bruteforce` is the O(n²) reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfs_semantics_bench::{random_accesses, worst_case_accesses};
use recorder::DataAccess;
use semantics_core::overlap::{detect_overlaps, detect_overlaps_bruteforce, detect_overlaps_merge};

fn bench_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap/random");
    for n in [1_000usize, 4_000, 16_000] {
        let accs = random_accesses(n, 64, 1 << 24, 42);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sweep", n), &accs, |b, a| {
            b.iter(|| detect_overlaps(a))
        });
        if n <= 4_000 {
            g.bench_with_input(BenchmarkId::new("bruteforce", n), &accs, |b, a| {
                b.iter(|| detect_overlaps_bruteforce(a))
            });
        }
    }
    g.finish();
}

fn bench_merge_variant(c: &mut Criterion) {
    // The §5.1 ablation: sort-based vs merge-based ordering, on per-rank
    // pre-sorted record lists.
    let mut g = c.benchmark_group("overlap/merge_ablation");
    for n in [4_000usize, 16_000] {
        let mut per_rank: Vec<Vec<DataAccess>> = vec![Vec::new(); 64];
        for a in random_accesses(n, 64, 1 << 24, 9) {
            per_rank[a.rank as usize].push(a);
        }
        for list in &mut per_rank {
            list.sort_by_key(|a| (a.offset, a.end()));
        }
        let flat: Vec<DataAccess> = per_rank.iter().flatten().copied().collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sort", n), &flat, |b, f| {
            b.iter(|| detect_overlaps(f))
        });
        g.bench_with_input(BenchmarkId::new("merge", n), &per_rank, |b, pr| {
            b.iter(|| detect_overlaps_merge(pr).expect("sorted"))
        });
    }
    g.finish();
}

fn bench_worst_case(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap/worst_case");
    g.sample_size(10);
    for n in [256usize, 512, 1024] {
        let accs = worst_case_accesses(n, 64);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sweep", n), &accs, |b, a| {
            b.iter(|| detect_overlaps(a))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_random, bench_merge_variant, bench_worst_case);
criterion_main!(benches);
