//! Conflict detection (§5.2, Table 4 regeneration cost) and the
//! implementation ablation the paper sketches: marking records by a
//! per-process scan vs binary searches in the open/commit tables ("the
//! overhead for the binary searches will be negligible").

use pfs_semantics_bench::{app_trace, mini, synthetic_resolved};
use semantics_core::conflict::{
    detect_conflicts_opt, extend_binary_search, extend_scan, AnalysisModel, ConflictOptions,
};

fn bench_models() {
    for n in [2_000usize, 8_000] {
        let trace = synthetic_resolved(n, 64, 7);
        for (name, model) in [
            ("commit", AnalysisModel::Commit),
            ("session", AnalysisModel::Session),
        ] {
            mini::bench("conflict/models", &format!("{name}/{n}"), || {
                detect_conflicts_opt(&trace, model, ConflictOptions::default())
            });
        }
    }
}

fn bench_extension_variants() {
    let trace = synthetic_resolved(8_000, 64, 7);
    mini::bench("conflict/extension", "binary_search", || {
        extend_binary_search(&trace)
    });
    mini::bench("conflict/extension", "scan", || extend_scan(&trace));
}

fn bench_table4_flash() {
    // The Table 4 row that matters: FLASH, end-to-end conflict detection
    // on a real (simulated) trace.
    let (_, resolved) = app_trace(hpcapps::AppId::FlashFbs, 8);
    mini::bench("conflict/table4_flash", "session", || {
        detect_conflicts_opt(
            &resolved,
            AnalysisModel::Session,
            ConflictOptions::default(),
        )
    });
    mini::bench("conflict/table4_flash", "commit", || {
        detect_conflicts_opt(&resolved, AnalysisModel::Commit, ConflictOptions::default())
    });
}

fn main() {
    bench_models();
    bench_extension_variants();
    bench_table4_flash();
}
