//! Conflict detection (§5.2, Table 4 regeneration cost) and the
//! implementation ablation the paper sketches: marking records by a
//! per-process scan vs binary searches in the open/commit tables ("the
//! overhead for the binary searches will be negligible").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfs_semantics_bench::{app_trace, synthetic_resolved};
use semantics_core::conflict::{
    detect_conflicts_opt, extend_binary_search, extend_scan, AnalysisModel, ConflictOptions,
};

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("conflict/models");
    for n in [2_000usize, 8_000] {
        let trace = synthetic_resolved(n, 64, 7);
        g.throughput(Throughput::Elements(n as u64));
        for (name, model) in
            [("commit", AnalysisModel::Commit), ("session", AnalysisModel::Session)]
        {
            g.bench_with_input(BenchmarkId::new(name, n), &trace, |b, t| {
                b.iter(|| detect_conflicts_opt(t, model, ConflictOptions::default()))
            });
        }
    }
    g.finish();
}

fn bench_extension_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("conflict/extension");
    let trace = synthetic_resolved(8_000, 64, 7);
    g.throughput(Throughput::Elements(8_000));
    g.bench_function("binary_search", |b| b.iter(|| extend_binary_search(&trace)));
    g.bench_function("scan", |b| b.iter(|| extend_scan(&trace)));
    g.finish();
}

fn bench_table4_flash(c: &mut Criterion) {
    // The Table 4 row that matters: FLASH, end-to-end conflict detection
    // on a real (simulated) trace.
    let (_, resolved) = app_trace(hpcapps::AppId::FlashFbs, 8);
    let mut g = c.benchmark_group("conflict/table4_flash");
    g.sample_size(20);
    g.bench_function("session", |b| {
        b.iter(|| detect_conflicts_opt(&resolved, AnalysisModel::Session, ConflictOptions::default()))
    });
    g.bench_function("commit", |b| {
        b.iter(|| detect_conflicts_opt(&resolved, AnalysisModel::Commit, ConflictOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_models, bench_extension_variants, bench_table4_flash);
criterion_main!(benches);
