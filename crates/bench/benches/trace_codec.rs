//! Trace-format cost: binary encode/decode throughput and TSV export, on
//! a real application trace. The compact codec is what makes
//! Recorder-style always-on tracing affordable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfs_semantics_bench::app_trace;
use recorder::TraceSet;

fn bench_codec(c: &mut Criterion) {
    let (trace, _) = app_trace(hpcapps::AppId::FlashFbs, 8);
    let records = trace.total_records() as u64;
    let encoded = trace.encode();

    let mut g = c.benchmark_group("trace_codec");
    g.throughput(Throughput::Elements(records));
    g.bench_function("encode", |b| b.iter(|| trace.encode()));
    g.bench_function("decode", |b| b.iter(|| TraceSet::decode(&encoded).expect("decode")));
    g.bench_function("tsv_export", |b| b.iter(|| recorder::tsv::to_tsv(&trace)));
    g.bench_function("merge_by_time", |b| b.iter(|| trace.merged_by_time()));
    g.finish();

    eprintln!(
        "trace: {} records, {} bytes encoded ({:.1} B/record)",
        records,
        encoded.len(),
        encoded.len() as f64 / records as f64
    );
}

fn bench_pipeline(c: &mut Criterion) {
    // Post-processing pipeline cost: adjust + resolve, per record.
    let (trace, _) = app_trace(hpcapps::AppId::FlashFbs, 8);
    let records = trace.total_records() as u64;
    let mut g = c.benchmark_group("trace_pipeline");
    g.throughput(Throughput::Elements(records));
    g.bench_function("adjust", |b| b.iter(|| recorder::adjust::apply(&trace)));
    let adjusted = recorder::adjust::apply(&trace);
    g.bench_function("resolve_offsets", |b| b.iter(|| recorder::offset::resolve(&adjusted)));
    g.finish();
}

criterion_group!(benches, bench_codec, bench_pipeline);
criterion_main!(benches);
