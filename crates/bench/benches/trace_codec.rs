//! Trace-format cost: binary encode/decode throughput and TSV export, on
//! a real application trace. The compact codec is what makes
//! Recorder-style always-on tracing affordable.

use pfs_semantics_bench::{app_trace, mini};
use recorder::TraceSet;

fn bench_codec() {
    let (trace, _) = app_trace(hpcapps::AppId::FlashFbs, 8);
    let records = trace.total_records() as u64;
    let encoded = trace.encode();

    mini::bench("trace_codec", "encode", || trace.encode());
    mini::bench("trace_codec", "decode", || {
        TraceSet::decode(&encoded).expect("decode")
    });
    mini::bench("trace_codec", "tsv_export", || {
        recorder::tsv::to_tsv(&trace)
    });
    mini::bench("trace_codec", "merge_by_time", || trace.merged_by_time());

    eprintln!(
        "trace: {} records, {} bytes encoded ({:.1} B/record)",
        records,
        encoded.len(),
        encoded.len() as f64 / records as f64
    );
}

fn bench_pipeline() {
    // Post-processing pipeline cost: adjust + resolve, per record.
    let (trace, _) = app_trace(hpcapps::AppId::FlashFbs, 8);
    mini::bench("trace_pipeline", "adjust", || {
        recorder::adjust::apply(&trace)
    });
    let adjusted = recorder::adjust::apply(&trace);
    mini::bench("trace_pipeline", "resolve_offsets", || {
        recorder::offset::resolve(&adjusted)
    });
}

fn main() {
    bench_codec();
    bench_pipeline();
}
