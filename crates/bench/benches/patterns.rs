//! Pattern-classification cost: the per-configuration work behind
//! Figure 1 (local/global consecutive–monotonic–random percentages) and
//! Table 3 (high-level X-Y classification).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pfs_semantics_bench::{app_trace, random_accesses};
use recorder::ResolvedTrace;
use semantics_core::patterns::{global_pattern, highlevel, local_pattern};

fn bench_lowlevel(c: &mut Criterion) {
    let mut g = c.benchmark_group("patterns/lowlevel");
    for n in [4_000usize, 16_000] {
        let resolved = ResolvedTrace {
            accesses: random_accesses(n, 64, 1 << 24, 5),
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("local", n), &resolved, |b, r| {
            b.iter(|| local_pattern(r))
        });
        g.bench_with_input(BenchmarkId::new("global", n), &resolved, |b, r| {
            b.iter(|| global_pattern(r))
        });
    }
    g.finish();
}

fn bench_highlevel_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("patterns/table3");
    g.sample_size(20);
    for id in [hpcapps::AppId::FlashFbs, hpcapps::AppId::HaccIoPosix, hpcapps::AppId::Lbann] {
        let (_, resolved) = app_trace(id, 8);
        g.bench_with_input(
            BenchmarkId::new("classify", format!("{id:?}")),
            &resolved,
            |b, r| b.iter(|| highlevel::classify(r, 8)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_lowlevel, bench_highlevel_apps);
criterion_main!(benches);
