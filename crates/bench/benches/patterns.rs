//! Pattern-classification cost: the per-configuration work behind
//! Figure 1 (local/global consecutive–monotonic–random percentages) and
//! Table 3 (high-level X-Y classification).

use pfs_semantics_bench::{app_trace, mini, random_accesses};
use recorder::ResolvedTrace;
use semantics_core::patterns::{global_pattern, highlevel, local_pattern};

fn bench_lowlevel() {
    for n in [4_000usize, 16_000] {
        let resolved = ResolvedTrace {
            accesses: random_accesses(n, 64, 1 << 24, 5),
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        mini::bench("patterns/lowlevel", &format!("local/{n}"), || {
            local_pattern(&resolved)
        });
        mini::bench("patterns/lowlevel", &format!("global/{n}"), || {
            global_pattern(&resolved)
        });
    }
}

fn bench_highlevel_apps() {
    for id in [
        hpcapps::AppId::FlashFbs,
        hpcapps::AppId::HaccIoPosix,
        hpcapps::AppId::Lbann,
    ] {
        let (_, resolved) = app_trace(id, 8);
        mini::bench("patterns/table3", &format!("classify/{id:?}"), || {
            highlevel::classify(&resolved, 8)
        });
    }
}

fn main() {
    bench_lowlevel();
    bench_highlevel_apps();
}
