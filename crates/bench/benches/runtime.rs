//! Simulated-runtime throughput: the cost of the deterministic lockstep
//! scheduler vs free-running dispatch, and of the core primitives the
//! application replicas lean on (barrier, point-to-point, allgather).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{SchedMode, World, WorldCfg};

fn cfg(nranks: u32, mode: SchedMode) -> WorldCfg {
    let mut c = WorldCfg::new(nranks, 7);
    c.mode = mode;
    c
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/barriers");
    g.sample_size(10);
    const ROUNDS: u64 = 50;
    for nranks in [8u32, 32] {
        for (name, mode) in
            [("det", SchedMode::Deterministic), ("free", SchedMode::Free)]
        {
            g.throughput(Throughput::Elements(ROUNDS * nranks as u64));
            g.bench_with_input(
                BenchmarkId::new(name, nranks),
                &cfg(nranks, mode),
                |b, cfg| {
                    b.iter(|| {
                        World::run(cfg, |r| {
                            for _ in 0..ROUNDS {
                                r.barrier();
                            }
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/ping_pong");
    g.sample_size(10);
    const ROUNDS: u32 = 200;
    for (name, mode) in [("det", SchedMode::Deterministic), ("free", SchedMode::Free)] {
        g.throughput(Throughput::Elements(ROUNDS as u64 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg(2, mode), |b, cfg| {
            b.iter(|| {
                World::run(cfg, |r| {
                    for i in 0..ROUNDS {
                        if r.rank() == 0 {
                            r.send(1, i, vec![0u8; 256]);
                            r.recv(1, i);
                        } else {
                            r.recv(0, i);
                            r.send(0, i, vec![0u8; 256]);
                        }
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_allgather(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/allgather");
    g.sample_size(10);
    for nranks in [8u32, 32] {
        g.throughput(Throughput::Bytes(nranks as u64 * 1024 * 10));
        g.bench_with_input(
            BenchmarkId::from_parameter(nranks),
            &cfg(nranks, SchedMode::Deterministic),
            |b, cfg| {
                b.iter(|| {
                    World::run(cfg, |r| {
                        for _ in 0..10 {
                            r.allgather(&vec![r.rank() as u8; 1024]);
                        }
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_barrier, bench_p2p, bench_allgather);
criterion_main!(benches);
