//! Simulated-runtime throughput: the cost of the deterministic lockstep
//! scheduler vs free-running dispatch, and of the core primitives the
//! application replicas lean on (barrier, point-to-point, allgather).

use mpisim::{SchedMode, World, WorldCfg};
use pfs_semantics_bench::mini;

fn cfg(nranks: u32, mode: SchedMode) -> WorldCfg {
    let mut c = WorldCfg::new(nranks, 7);
    c.mode = mode;
    c
}

fn bench_barrier() {
    const ROUNDS: u64 = 50;
    for nranks in [8u32, 32] {
        for (name, mode) in [("det", SchedMode::Deterministic), ("free", SchedMode::Free)] {
            let cfg = cfg(nranks, mode);
            mini::bench("runtime/barriers", &format!("{name}/{nranks}"), || {
                World::run(&cfg, |r| {
                    for _ in 0..ROUNDS {
                        r.barrier();
                    }
                })
                .expect("barrier bench never deadlocks")
            });
        }
    }
}

fn bench_p2p() {
    const ROUNDS: u32 = 200;
    for (name, mode) in [("det", SchedMode::Deterministic), ("free", SchedMode::Free)] {
        let cfg = cfg(2, mode);
        mini::bench("runtime/ping_pong", name, || {
            World::run(&cfg, |r| {
                for i in 0..ROUNDS {
                    if r.rank() == 0 {
                        r.send(1, i, vec![0u8; 256]);
                        r.recv(1, i);
                    } else {
                        r.recv(0, i);
                        r.send(0, i, vec![0u8; 256]);
                    }
                }
            })
            .expect("ping-pong bench never deadlocks")
        });
    }
}

fn bench_allgather() {
    for nranks in [8u32, 32] {
        let cfg = cfg(nranks, SchedMode::Deterministic);
        mini::bench("runtime/allgather", &format!("{nranks}"), || {
            World::run(&cfg, |r| {
                for _ in 0..10 {
                    r.allgather(&vec![r.rank() as u8; 1024]);
                }
            })
            .expect("allgather bench never deadlocks")
        });
    }
}

fn main() {
    bench_barrier();
    bench_p2p();
    bench_allgather();
}
