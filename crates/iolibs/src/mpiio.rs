//! MPI-IO model: independent (`write_at`) and collective (`write_at_all`)
//! file access with ROMIO-style two-phase collective buffering.
//!
//! The paper's FLASH analysis (§6.2.2) hinges on exactly this behaviour:
//! "when collective I/O is enabled, the MPI-IO library aggregates I/O
//! accesses and only six aggregator processes access the PFS". Collective
//! calls here shuffle each rank's contribution to a small set of aggregator
//! ranks over simulated point-to-point messages (leaving happens-before
//! edges in the trace), and only the aggregators issue POSIX I/O.

use pfssim::{FsResult, OpenFlags};
use recorder::{Func, Layer};

use crate::harness::{AppCtx, Fd};

/// Tag reserved for two-phase shuffle traffic (below `u32::MAX`, which the
/// runtime's built-in collectives use).
const SHUFFLE_TAG: u32 = u32::MAX - 1;

/// Collective-buffering buffer size: aggregators drain their file domain
/// in pieces of this size (ROMIO's `cb_buffer_size`), so one collective
/// produces a *consecutive* run of POSIX writes per aggregator.
pub const CB_BUFFER: u64 = 8 * 1024;

/// File-system hints, as MPI_Info would carry them.
#[derive(Debug, Clone, Copy)]
pub struct MpiIoHints {
    /// Number of collective-buffering aggregators (`cb_nodes`). The paper
    /// observed 6 for FLASH on 64 ranks.
    pub cb_nodes: u32,
}

impl Default for MpiIoHints {
    fn default() -> Self {
        MpiIoHints { cb_nodes: 6 }
    }
}

/// An open MPI-IO file handle (every rank of the communicator holds one).
pub struct MpiFile {
    fh: u32,
    fd: Fd,
    path: String,
    hints: MpiIoHints,
}

impl MpiFile {
    /// Collective create-or-open. Rank 0 creates (and truncates, if
    /// `truncate`), everyone else opens the existing file read-write.
    pub fn open(ctx: &mut AppCtx, path: &str, truncate: bool, hints: MpiIoHints) -> FsResult<Self> {
        let t0 = ctx.now();
        let fh = ctx.alloc_lib_id();
        let fd = ctx.with_origin(Layer::MpiIo, |ctx| {
            if ctx.rank() == 0 {
                let mut flags = OpenFlags::rdwr_create();
                flags.truncate = truncate;
                let fd = ctx.open(path, flags)?;
                ctx.barrier();
                Ok(fd)
            } else {
                ctx.barrier();
                ctx.open(path, OpenFlags::rdwr())
            }
        })?;
        let pid = ctx.intern(path);
        let t1 = ctx.now();
        ctx.record_lib(Layer::MpiIo, t0, t1, Func::MpiFileOpen { path: pid, fh });
        Ok(MpiFile {
            fh,
            fd,
            path: path.to_string(),
            hints,
        })
    }

    /// `MPI_File_open` on `MPI_COMM_SELF`: a per-rank file, no
    /// collectivity (the HACC-IO N-N configuration). Collective calls on
    /// such a handle are not meaningful; use `write_at`/`read_at`.
    pub fn open_independent(ctx: &mut AppCtx, path: &str, hints: MpiIoHints) -> FsResult<Self> {
        let t0 = ctx.now();
        let fh = ctx.alloc_lib_id();
        let fd = ctx.with_origin(Layer::MpiIo, |ctx| ctx.open(path, OpenFlags::rdwr_create()))?;
        let pid = ctx.intern(path);
        let t1 = ctx.now();
        ctx.record_lib(Layer::MpiIo, t0, t1, Func::MpiFileOpen { path: pid, fh });
        Ok(MpiFile {
            fh,
            fd,
            path: path.to_string(),
            hints,
        })
    }

    /// Non-collective close (for handles from
    /// [`MpiFile::open_independent`]).
    pub fn close_independent(self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::MpiIo, |ctx| ctx.close(self.fd))?;
        let t1 = ctx.now();
        ctx.record_lib(Layer::MpiIo, t0, t1, Func::MpiFileClose { fh: self.fh });
        Ok(())
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// The underlying POSIX fd on this rank (testing aid).
    pub fn fd(&self) -> Fd {
        self.fd
    }

    /// Independent positional write.
    pub fn write_at(&self, ctx: &mut AppCtx, offset: u64, data: &[u8]) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::MpiIo, |ctx| ctx.pwrite(self.fd, offset, data))?;
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::MpiIo,
            t0,
            t1,
            Func::MpiFileWriteAt {
                fh: self.fh,
                offset,
                count: data.len() as u64,
            },
        );
        Ok(())
    }

    /// Independent positional read.
    pub fn read_at(&self, ctx: &mut AppCtx, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let t0 = ctx.now();
        let out = ctx.with_origin(Layer::MpiIo, |ctx| ctx.pread(self.fd, offset, len))?;
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::MpiIo,
            t0,
            t1,
            Func::MpiFileReadAt {
                fh: self.fh,
                offset,
                count: len,
            },
        );
        Ok(out.data)
    }

    /// The aggregator ranks for this communicator: `cb_nodes` ranks spread
    /// evenly, like ROMIO's default placement.
    pub fn aggregators(&self, nranks: u32) -> Vec<u32> {
        let n = self.hints.cb_nodes.clamp(1, nranks);
        let stride = nranks / n;
        (0..n).map(|i| i * stride).collect()
    }

    /// Collective write: two-phase. Every rank contributes `(offset, data)`
    /// (possibly empty); contributions are shuffled to the aggregators,
    /// which write their file domains with large contiguous POSIX writes.
    pub fn write_at_all(&self, ctx: &mut AppCtx, offset: u64, data: &[u8]) -> FsResult<()> {
        let t0 = ctx.now();
        let nranks = ctx.nranks();
        let aggs = self.aggregators(nranks);

        // Phase 0: exchange extents so everyone knows the file domain.
        let mut extent = [0u8; 16];
        extent[..8].copy_from_slice(&offset.to_le_bytes());
        extent[8..].copy_from_slice(&(data.len() as u64).to_le_bytes());
        let extents = ctx.allgather(&extent);
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in &extents {
            let off = u64::from_le_bytes(e[..8].try_into().expect("extent"));
            let len = u64::from_le_bytes(e[8..].try_into().expect("extent"));
            if len > 0 {
                lo = lo.min(off);
                hi = hi.max(off + len);
            }
        }
        if hi <= lo {
            ctx.barrier();
            let t1 = ctx.now();
            ctx.record_lib(
                Layer::MpiIo,
                t0,
                t1,
                Func::MpiFileWriteAtAll {
                    fh: self.fh,
                    offset,
                    count: 0,
                },
            );
            return Ok(()); // nothing to write anywhere
        }
        let domain = (hi - lo).div_ceil(aggs.len() as u64);

        // Phase 1: ship my pieces to the owning aggregators. Every rank
        // sends exactly one (possibly empty) message per aggregator so the
        // receive side matches deterministically.
        for (ai, &agg) in aggs.iter().enumerate() {
            let d_lo = lo + ai as u64 * domain;
            let d_hi = (d_lo + domain).min(hi);
            let piece = slice_overlap(offset, data, d_lo, d_hi);
            let mut msg = Vec::with_capacity(8 + piece.map_or(0, |(_, s)| s.len()));
            match piece {
                Some((poff, bytes)) => {
                    msg.extend_from_slice(&poff.to_le_bytes());
                    msg.extend_from_slice(bytes);
                }
                None => msg.extend_from_slice(&u64::MAX.to_le_bytes()),
            }
            if agg == ctx.rank() {
                // Local contribution: handled below when receiving.
            }
            ctx.send(agg, SHUFFLE_TAG, msg);
        }

        // Phase 2: aggregators assemble and write their domain.
        if aggs.contains(&ctx.rank()) {
            let mut pieces: Vec<(u64, Vec<u8>)> = Vec::new();
            for src in 0..nranks {
                let msg = ctx.recv(src, SHUFFLE_TAG);
                let poff = u64::from_le_bytes(msg[..8].try_into().expect("piece header"));
                if poff != u64::MAX {
                    pieces.push((poff, msg[8..].to_vec()));
                }
            }
            pieces.sort_by_key(|(o, _)| *o);
            // Coalesce adjacent pieces into maximal contiguous runs.
            let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
            for (poff, bytes) in pieces {
                match runs.last_mut() {
                    Some((ro, rb)) if *ro + rb.len() as u64 == poff => rb.extend_from_slice(&bytes),
                    _ => runs.push((poff, bytes)),
                }
            }
            ctx.with_origin(Layer::MpiIo, |ctx| -> FsResult<()> {
                for (roff, rbytes) in &runs {
                    // Drain the run through the collective buffer.
                    let mut pos = 0u64;
                    while pos < rbytes.len() as u64 {
                        let n = CB_BUFFER.min(rbytes.len() as u64 - pos);
                        ctx.pwrite(
                            self.fd,
                            roff + pos,
                            &rbytes[pos as usize..(pos + n) as usize],
                        )?;
                        pos += n;
                    }
                }
                Ok(())
            })?;
        }
        ctx.barrier();
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::MpiIo,
            t0,
            t1,
            Func::MpiFileWriteAtAll {
                fh: self.fh,
                offset,
                count: data.len() as u64,
            },
        );
        Ok(())
    }

    /// Collective read: aggregators read their file domain once and serve
    /// every rank's requested pieces from memory.
    pub fn read_at_all(&self, ctx: &mut AppCtx, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let t0 = ctx.now();
        let nranks = ctx.nranks();
        let aggs = self.aggregators(nranks);

        let mut extent = [0u8; 16];
        extent[..8].copy_from_slice(&offset.to_le_bytes());
        extent[8..].copy_from_slice(&len.to_le_bytes());
        let extents = ctx.allgather(&extent);
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut wants: Vec<(u64, u64)> = Vec::with_capacity(nranks as usize);
        for e in &extents {
            let off = u64::from_le_bytes(e[..8].try_into().expect("extent"));
            let l = u64::from_le_bytes(e[8..].try_into().expect("extent"));
            wants.push((off, l));
            if l > 0 {
                lo = lo.min(off);
                hi = hi.max(off + l);
            }
        }
        if hi <= lo {
            ctx.barrier();
            return Ok(Vec::new());
        }
        let domain = (hi - lo).div_ceil(aggs.len() as u64);

        // Aggregators read their domain and push pieces to every rank.
        if aggs.contains(&ctx.rank()) {
            let ai = aggs
                .iter()
                .position(|&a| a == ctx.rank())
                .expect("is aggregator");
            let d_lo = lo + ai as u64 * domain;
            let d_hi = (d_lo + domain).min(hi);
            let buf = if d_hi > d_lo {
                ctx.with_origin(Layer::MpiIo, |ctx| ctx.pread(self.fd, d_lo, d_hi - d_lo))?
                    .data
            } else {
                Vec::new()
            };
            for (dst, &(woff, wlen)) in wants.iter().enumerate() {
                let p_lo = woff.max(d_lo);
                let p_hi = (woff + wlen).min(d_hi).min(d_lo + buf.len() as u64);
                let mut msg = Vec::new();
                if p_hi > p_lo {
                    msg.extend_from_slice(&p_lo.to_le_bytes());
                    msg.extend_from_slice(&buf[(p_lo - d_lo) as usize..(p_hi - d_lo) as usize]);
                } else {
                    msg.extend_from_slice(&u64::MAX.to_le_bytes());
                }
                ctx.send(dst as u32, SHUFFLE_TAG, msg);
            }
        }

        // Everyone assembles their requested range from aggregator pieces.
        let mut out = vec![0u8; len as usize];
        let mut filled_hi = offset;
        for &agg in &aggs {
            let msg = ctx.recv(agg, SHUFFLE_TAG);
            let poff = u64::from_le_bytes(msg[..8].try_into().expect("piece header"));
            if poff != u64::MAX {
                let bytes = &msg[8..];
                let s = (poff - offset) as usize;
                out[s..s + bytes.len()].copy_from_slice(bytes);
                filled_hi = filled_hi.max(poff + bytes.len() as u64);
            }
        }
        out.truncate((filled_hi.saturating_sub(offset)) as usize);
        ctx.barrier();
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::MpiIo,
            t0,
            t1,
            Func::MpiFileReadAtAll {
                fh: self.fh,
                offset,
                count: len,
            },
        );
        Ok(out)
    }

    /// `MPI_File_sync`: every rank flushes its own fd (a commit under
    /// commit semantics — the ranks that actually wrote publish here).
    pub fn sync(&self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::MpiIo, |ctx| ctx.fsync(self.fd))?;
        let t1 = ctx.now();
        ctx.record_lib(Layer::MpiIo, t0, t1, Func::MpiFileSync { fh: self.fh });
        Ok(())
    }

    /// Collective close.
    pub fn close(self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::MpiIo, |ctx| ctx.close(self.fd))?;
        ctx.barrier();
        let t1 = ctx.now();
        ctx.record_lib(Layer::MpiIo, t0, t1, Func::MpiFileClose { fh: self.fh });
        Ok(())
    }
}

/// The overlap of `[offset, offset + data.len())` with `[lo, hi)`, as
/// `(absolute_offset, bytes)`.
fn slice_overlap(offset: u64, data: &[u8], lo: u64, hi: u64) -> Option<(u64, &[u8])> {
    let end = offset + data.len() as u64;
    let s = offset.max(lo);
    let e = end.min(hi);
    if s >= e {
        return None;
    }
    Some((s, &data[(s - offset) as usize..(e - offset) as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_overlap_cases() {
        let data = b"abcdefgh";
        assert_eq!(slice_overlap(10, data, 0, 9), None);
        assert_eq!(slice_overlap(10, data, 18, 30), None);
        assert_eq!(slice_overlap(10, data, 0, 100), Some((10, &data[..])));
        assert_eq!(slice_overlap(10, data, 12, 14), Some((12, &b"cd"[..])));
        assert_eq!(slice_overlap(10, data, 14, 100), Some((14, &b"efgh"[..])));
    }
}
