//! The per-rank application context and the run harness.
//!
//! [`AppCtx`] is what a simulated application programs against: MPI-style
//! communication (delegated to [`mpisim`]), POSIX file I/O (delegated to
//! [`pfssim`] with latency from the cost model), and transparent tracing of
//! every POSIX call into a [`recorder::RankTracer`] with the correct
//! *origin* layer attribution.
//!
//! [`run_app`] executes one SPMD closure on every rank, performs the
//! startup barrier the paper uses for clock adjustment (§5.2), merges the
//! MPI runtime's happens-before events into each rank's trace, and returns
//! the assembled [`TraceSet`] together with the quiesced file system.

use mpisim::{
    CostModel, ExecModel, FaultPlan, IoFault, OpClass, Rank, SchedMode, SimAbort, SimError, World,
    WorldCfg,
};
use pfssim::{
    FsError, FsResult, MetaOp, Observation, OpenFlags, Pfs, PfsConfig, ReadOut, SemanticsModel,
    StatInfo, Whence, WriteOut,
};
use recorder::{Func, Layer, MetaKind, RankTracer, Record, SeekWhence, SharedInterner, TraceSet};

use crate::sink::SinkHandle;

/// Records buffered per rank before a tee'd chunk is pushed to the sink.
const SINK_CHUNK: usize = 64;

/// Adapter forwarding the simulator's epoch commits to the run sink.
struct EpochForwarder(SinkHandle);

impl mpisim::EpochNotify for EpochForwarder {
    fn epoch_released(&self, epoch: u64, _t_ns: u64) {
        self.0 .0.epoch_released(epoch);
    }
}

/// A POSIX file descriptor in the simulated file system.
pub type Fd = u32;

/// Configuration of one simulated application run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub nranks: u32,
    pub seed: u64,
    /// Consistency engine the PFS executes with. (The traces themselves are
    /// engine-independent for race-free programs; the engine matters for
    /// the stale-read validation experiments.)
    pub semantics: SemanticsModel,
    pub max_skew_ns: u64,
    pub mode: SchedMode,
    pub cost: CostModel,
    pub pfs: PfsConfig,
    /// Initial simulated time of this job (workflow stages chain clocks).
    pub start_time_ns: u64,
    /// Pre-committed fault schedule ([`FaultPlan::none`] for clean runs).
    /// `(seed, faults, program)` fully determines the trace.
    pub faults: FaultPlan,
    /// Label naming this run in observability output (trace timelines,
    /// run spans). Purely cosmetic; never affects the simulation.
    pub label: String,
    /// Rank execution engine: event-loop tasks (host default) or one OS
    /// thread per rank. Identical traces under the deterministic
    /// scheduler modes; see `ExecModel`.
    pub exec: ExecModel,
    /// Optional streaming sink the run tees its POSIX records to as they
    /// are emitted (see [`crate::sink`]). `None` costs nothing.
    pub sink: Option<SinkHandle>,
}

impl RunConfig {
    pub fn new(nranks: u32, seed: u64) -> Self {
        RunConfig {
            nranks,
            seed,
            semantics: SemanticsModel::Strong,
            max_skew_ns: 20_000,
            mode: SchedMode::Deterministic,
            cost: CostModel::default(),
            pfs: PfsConfig::default(),
            start_time_ns: 0,
            faults: FaultPlan::none(),
            label: String::new(),
            sink: None,
            exec: ExecModel::default_for_host(),
        }
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    pub fn with_semantics(mut self, semantics: SemanticsModel) -> Self {
        self.semantics = semantics;
        self
    }

    pub fn free_running(mut self) -> Self {
        self.mode = SchedMode::Free;
        self
    }

    /// Use per-operation lockstep instead of the default burst grants —
    /// the maximally interleaved deterministic schedule. Slower; used by
    /// the schedule-robustness tests.
    pub fn per_op_lockstep(mut self) -> Self {
        self.mode = SchedMode::DeterministicPerOp;
        self
    }

    pub fn with_max_skew_ns(mut self, ns: u64) -> Self {
        self.max_skew_ns = ns;
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Tee the run's POSIX records to `sink` as they are emitted (see
    /// [`crate::sink`]).
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Select the rank execution engine explicitly.
    pub fn with_exec(mut self, exec: ExecModel) -> Self {
        self.exec = exec;
        self
    }

    /// Run ranks as OS threads — the oracle executor the event loop is
    /// regression-tested against.
    pub fn threaded_ranks(mut self) -> Self {
        self.exec = ExecModel::Threads;
        self
    }
}

/// Everything one run produces.
pub struct RunOutcome {
    /// The multi-level trace, with raw (skewed, unadjusted) timestamps —
    /// exactly what a Recorder-style tracer would hand the analysis.
    pub trace: TraceSet,
    /// The file system, already quiesced (all buffered writes propagated).
    pub pfs: Pfs,
    /// Per-rank read-observation logs for cross-engine staleness diffing.
    pub observations: Vec<Vec<Observation>>,
    /// Final simulated time.
    pub final_time_ns: u64,
    /// Ranks that fail-stopped mid-run (injected crashes, cascaded peer
    /// crashes, exhausted I/O retries), with their terminal fault. Empty on
    /// a clean run. A faulted rank's trace is the salvaged prefix up to its
    /// crash — analysis must treat it as *partial* (see
    /// [`RunOutcome::is_degraded`]).
    pub faults: Vec<(u32, SimError)>,
}

impl RunOutcome {
    /// Whether any rank fail-stopped: the trace is a partial view of the
    /// intended program and verdicts drawn from it must be labeled so.
    pub fn is_degraded(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Run `f` as an SPMD program on `cfg.nranks` ranks against a fresh file
/// system, quiescing it (propagating all buffered writes) at the end.
///
/// Infallible wrapper for clean configurations: panics if the whole run
/// fails (deadlock — an application bug). Per-rank fail-stops do *not*
/// fail the run; they are reported in [`RunOutcome::faults`]. Callers
/// driving fault campaigns should prefer [`run_app_result`].
pub fn run_app<F>(cfg: &RunConfig, f: F) -> RunOutcome
where
    F: Fn(&mut AppCtx) + Sync,
{
    run_app_result(cfg, f).unwrap_or_else(|e| panic!("simulated run failed: {e}"))
}

/// Fallible variant of [`run_app`]: a deadlock (every live rank blocked)
/// surfaces as `Err` instead of a panic, so batch drivers can isolate a
/// failing configuration and keep going.
pub fn run_app_result<F>(cfg: &RunConfig, f: F) -> Result<RunOutcome, SimError>
where
    F: Fn(&mut AppCtx) + Sync,
{
    let pfs = Pfs::new(cfg.pfs.clone().with_semantics(cfg.semantics));
    let out = run_app_on_result(cfg, &pfs, f)?;
    pfs.quiesce();
    Ok(out)
}

/// One stage of a multi-application workflow.
pub struct PipelineOutcome {
    /// The per-stage outcomes (each stage is one job: its own MPI world,
    /// its own trace).
    pub stages: Vec<RunOutcome>,
    /// All stage traces merged into one analyzable trace: stage `j`
    /// rank `r` becomes global rank `j·nranks + r`; timestamps are already
    /// on one absolute timeline because stage clocks are chained — see
    /// [`recorder::combine::merge_jobs`].
    pub combined: TraceSet,
    /// The shared file system, quiesced after the last stage.
    pub pfs: Pfs,
}

/// Run a workflow: each stage is a separate job (fresh MPI world, fresh
/// clients, **no** cross-stage communication) against one shared file
/// system. `gap_ns` is the scheduler gap between jobs. The file system is
/// *not* quiesced between stages — a consumer job sees exactly what the
/// producer's engine published — and is quiesced after the last stage.
pub fn run_pipeline(
    cfg: &RunConfig,
    gap_ns: u64,
    stages: &[&(dyn Fn(&mut AppCtx) + Sync)],
) -> PipelineOutcome {
    let pfs = Pfs::new(cfg.pfs.clone().with_semantics(cfg.semantics));
    let mut outs: Vec<RunOutcome> = Vec::with_capacity(stages.len());
    let mut start = cfg.start_time_ns;
    for (j, stage) in stages.iter().enumerate() {
        let stage_cfg = RunConfig {
            seed: cfg.seed.wrapping_add(j as u64),
            start_time_ns: start,
            ..cfg.clone()
        };
        let out = run_app_on(&stage_cfg, &pfs, |ctx| stage(ctx));
        start = out.final_time_ns + gap_ns;
        outs.push(out);
    }
    // Stage clocks are chained, so the traces are already on one absolute
    // timeline: merge without further shifting.
    let combined =
        recorder::combine::merge_jobs(&outs.iter().map(|o| o.trace.clone()).collect::<Vec<_>>());
    pfs.quiesce();
    PipelineOutcome {
        stages: outs,
        combined,
        pfs,
    }
}

/// Run `f` against an existing file system (workflow stages share one).
/// Does **not** quiesce. Panics on deadlock; see [`run_app_on_result`].
pub fn run_app_on<F>(cfg: &RunConfig, pfs: &Pfs, f: F) -> RunOutcome
where
    F: Fn(&mut AppCtx) + Sync,
{
    run_app_on_result(cfg, pfs, f).unwrap_or_else(|e| panic!("simulated run failed: {e}"))
}

/// Run `f` against an existing file system, reporting whole-run failures
/// as `Err`. A rank that fail-stops (injected crash, peer-crash cascade,
/// exhausted I/O retries) unwinds with [`SimAbort`]; the harness catches
/// it *inside* the rank closure, discards the dead process's un-published
/// buffered writes, and salvages the trace prefix — so degraded runs still
/// produce an analyzable [`RunOutcome`] with [`RunOutcome::faults`] set.
pub fn run_app_on_result<F>(cfg: &RunConfig, pfs: &Pfs, f: F) -> Result<RunOutcome, SimError>
where
    F: Fn(&mut AppCtx) + Sync,
{
    let pfs = pfs.clone();
    let interner = recorder::shared_interner();
    let _run_span = obs::span("iolibs", "run_app")
        .with_arg("label", cfg.label.as_str())
        .with_arg("nranks", cfg.nranks as u64)
        .with_arg("seed", cfg.seed);
    let world_cfg = WorldCfg {
        nranks: cfg.nranks,
        seed: cfg.seed,
        mode: cfg.mode,
        max_skew_ns: cfg.max_skew_ns,
        cost: cfg.cost.clone(),
        start_ns: cfg.start_time_ns,
        faults: cfg.faults.clone(),
        label: cfg.label.clone(),
        epoch_sink: cfg
            .sink
            .as_ref()
            .map(|s| mpisim::EpochSinkHandle::new(std::sync::Arc::new(EpochForwarder(s.clone())))),
        exec: cfg.exec,
    };
    let out = World::run(&world_cfg, |rank| {
        let r = rank.rank();
        let mut ctx = AppCtx::new(
            rank,
            pfs.client(r),
            RankTracer::new(r, SharedInterner::clone(&interner)),
            pfs.config().clone(),
            cfg.sink.clone(),
        );
        // The paper's runs start with a barrier whose exit is used as t=0
        // for clock adjustment; the harness issues it on behalf of the app.
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.barrier();
            f(&mut ctx);
        }));
        match body {
            Ok(()) => ctx.into_parts(),
            Err(payload) if payload.downcast_ref::<SimAbort>().is_some() => {
                // Controlled fail-stop. The dead process can never publish
                // its buffered writes — drop them — but the trace prefix up
                // to the crash is exactly what a real post-mortem analysis
                // would have, so keep it.
                ctx.client.discard_pending();
                ctx.into_parts()
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })?;

    // Merge the MPI runtime's event log into each rank's record stream.
    let mut tracers = Vec::with_capacity(cfg.nranks as usize);
    let mut observations = Vec::with_capacity(cfg.nranks as usize);
    for (rank, (result, events)) in out.results.into_iter().zip(out.events).enumerate() {
        let (tracer, obs) = result.unwrap_or_else(|| {
            // A rank whose closure vanished without salvage (cannot happen
            // via this harness, which catches SimAbort above): empty trace.
            (
                RankTracer::new(rank as u32, SharedInterner::clone(&interner)),
                Vec::new(),
            )
        });
        let skew = out.skews_ns[rank];
        let mut records = tracer.into_records();
        let mpi_records: Vec<Record> = events
            .iter()
            .map(|e| {
                let func = match e.kind {
                    mpisim::EventKind::Barrier { epoch } => Func::MpiBarrier { epoch },
                    mpisim::EventKind::Send { dst, tag, seq } => Func::MpiSend { dst, tag, seq },
                    mpisim::EventKind::Recv { src, tag, seq } => Func::MpiRecv { src, tag, seq },
                };
                Record {
                    t_start: apply_skew(e.t_start, skew),
                    t_end: apply_skew(e.t_end, skew),
                    rank: rank as u32,
                    layer: Layer::Mpi,
                    origin: Layer::Mpi,
                    func,
                }
            })
            .collect();
        records = merge_by_time(records, mpi_records);
        let mut t = RankTracer::new(rank as u32, SharedInterner::clone(&interner));
        for r in records {
            t.record(r.t_start, r.t_end, r.layer, r.origin, r.func);
        }
        tracers.push(t);
        observations.push(obs);
    }
    let (trace, remap) = TraceSet::assemble_with_remap(interner, tracers, out.skews_ns);
    if let Some(sink) = &cfg.sink {
        sink.0.assembly_remap(&remap);
    }
    let faults = out
        .faults
        .into_iter()
        .enumerate()
        .filter_map(|(r, f)| f.map(|e| (r as u32, e)))
        .collect();
    Ok(RunOutcome {
        trace,
        pfs,
        observations,
        final_time_ns: out.final_time_ns,
        faults,
    })
}

fn apply_skew(t: u64, skew: i64) -> u64 {
    if skew >= 0 {
        t.saturating_add(skew as u64)
    } else {
        t.saturating_sub(skew.unsigned_abs())
    }
}

fn merge_by_time(a: Vec<Record>, b: Vec<Record>) -> Vec<Record> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x.t_start <= y.t_start {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => return out,
        }
    }
}

/// The per-rank application context: communication + traced POSIX I/O.
pub struct AppCtx {
    rank: Rank,
    client: pfssim::PfsClient,
    tracer: RankTracer,
    pfs_cfg: PfsConfig,
    origin: Layer,
    next_lib_id: u32,
    /// Streaming tee (see [`crate::sink`]); `None` on ordinary runs.
    sink: Option<SinkHandle>,
    /// This rank's barrier-adjustment zero (local-clock exit time of the
    /// startup barrier), captured at the first `barrier()`. Records are
    /// tee'd only once it is known — before the startup barrier the app
    /// has issued no I/O.
    sink_zero: Option<u64>,
    sink_buf: Vec<Record>,
}

impl AppCtx {
    fn new(
        rank: Rank,
        client: pfssim::PfsClient,
        tracer: RankTracer,
        pfs_cfg: PfsConfig,
        sink: Option<SinkHandle>,
    ) -> Self {
        AppCtx {
            rank,
            client,
            tracer,
            pfs_cfg,
            origin: Layer::App,
            next_lib_id: 1,
            sink,
            sink_zero: None,
            sink_buf: Vec::new(),
        }
    }

    fn into_parts(mut self) -> (RankTracer, Vec<Observation>) {
        self.sink_finish();
        let obs = self.client.take_observations();
        (self.tracer, obs)
    }

    /// Flush buffered tee records. The chunk's own last `t_start` is the
    /// frontier: per-rank POSIX records are emitted in nondecreasing
    /// simulated time.
    fn sink_flush(&mut self) {
        if let Some(sink) = &self.sink {
            if let Some(last) = self.sink_buf.last() {
                sink.0.push(self.rank.rank(), &self.sink_buf, last.t_start);
                self.sink_buf.clear();
            }
        }
    }

    /// Final flush + done signal; covers both normal completion and the
    /// fail-stop salvage path (both go through `into_parts`).
    fn sink_finish(&mut self) {
        self.sink_flush();
        if let Some(sink) = self.sink.take() {
            sink.0.rank_done(self.rank.rank());
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank.rank()
    }

    pub fn nranks(&self) -> u32 {
        self.rank.nranks()
    }

    pub fn semantics(&self) -> SemanticsModel {
        self.pfs_cfg.semantics
    }

    /// Fail-stop this rank: record the cause as its fault, salvage its
    /// partial trace, and unwind out of the rank closure. For app code
    /// facing an unrecoverable I/O error — e.g. a checkpoint whose
    /// creator rank crashed — where aborting the rank is the graceful
    /// outcome and panicking the process is not.
    pub fn fail_stop(&self, cause: String) -> ! {
        self.rank.fail_stop(cause)
    }

    /// Allocate an id for a library-level handle (MPI-IO fh, HDF5 id, …).
    pub fn alloc_lib_id(&mut self) -> u32 {
        let id = self.next_lib_id;
        self.next_lib_id += 1;
        id
    }

    /// Run `f` with POSIX records attributed to `origin` (the I/O library
    /// issuing them).
    pub fn with_origin<R>(&mut self, origin: Layer, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.origin;
        self.origin = origin;
        let r = f(self);
        self.origin = prev;
        r
    }

    /// Emit a record at a layer above POSIX (the library-level call itself).
    pub fn record_lib(&mut self, layer: Layer, t_start: u64, t_end: u64, func: Func) {
        let (s, e) = (self.rank.local_clock(t_start), self.rank.local_clock(t_end));
        self.tracer.record(s, e, layer, layer, func);
    }

    /// Current true simulated time (costs nothing).
    pub fn now(&self) -> u64 {
        self.rank.now()
    }

    /// Intern a path/name for trace records.
    pub fn intern(&self, s: &str) -> recorder::PathId {
        self.tracer.intern(s)
    }

    // ------------------------------------------------------------------
    // Communication (delegated to mpisim; events merged into the trace by
    // the harness)
    // ------------------------------------------------------------------

    pub fn barrier(&mut self) {
        if self.sink.is_none() {
            self.rank.barrier();
            return;
        }
        // Everything emitted so far is ordered before the barrier; hand it
        // to the sink before blocking so the analysis can overlap with the
        // wait.
        self.sink_flush();
        let info = self.rank.barrier();
        let exit_local = self.rank.local_clock(info.t_exit);
        match self.sink_zero {
            // First barrier: its local-clock exit is the adjustment zero —
            // exactly what `recorder::adjust::compute` derives post-hoc
            // from the first MpiBarrier record's `t_end`.
            None => self.sink_zero = Some(exit_local),
            // Later barriers: no records to send, but the exit time is a
            // frontier promise (no future record starts before it).
            Some(zero) => {
                if let Some(sink) = &self.sink {
                    sink.0
                        .push(self.rank.rank(), &[], exit_local.saturating_sub(zero));
                }
            }
        }
    }

    pub fn send(&mut self, dst: u32, tag: u32, payload: Vec<u8>) {
        self.rank.send(dst, tag, payload);
    }

    pub fn recv(&mut self, src: u32, tag: u32) -> Vec<u8> {
        self.rank.recv(src, tag).0
    }

    pub fn bcast(&mut self, root: u32, data: &[u8]) -> Vec<u8> {
        self.rank.bcast(root, data)
    }

    pub fn gather(&mut self, root: u32, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        self.rank.gather(root, mine)
    }

    pub fn allgather(&mut self, mine: &[u8]) -> Vec<Vec<u8>> {
        self.rank.allgather(mine)
    }

    pub fn allreduce_sum_u64(&mut self, v: u64) -> u64 {
        self.rank.allreduce_sum_u64(v)
    }

    pub fn allreduce_max_u64(&mut self, v: u64) -> u64 {
        self.rank.allreduce_max_u64(v)
    }

    pub fn exscan_sum_u64(&mut self, v: u64) -> u64 {
        self.rank.exscan_sum_u64(v)
    }

    pub fn compute(&mut self, ns: u64) {
        self.rank.compute(ns);
    }

    // ------------------------------------------------------------------
    // Traced POSIX layer
    // ------------------------------------------------------------------

    fn posix_op<R>(
        &mut self,
        class: OpClass,
        bytes: u64,
        mut f: impl FnMut(&mut pfssim::PfsClient, u64) -> FsResult<R>,
    ) -> FsResult<(u64, u64, R)> {
        let mut attempt = 0u32;
        loop {
            let injected = self.rank.take_io_fault();
            let client = &mut self.client;
            let (t0, t1, res) = match injected {
                Some(IoFault::LostFlush) => {
                    // The op itself succeeds, but the process's next flush
                    // silently fails to publish: the write never reaches
                    // commit visibility.
                    client.arm_lost_flush();
                    self.rank.timed_op(class, bytes, |now| f(client, now))
                }
                Some(fault) => {
                    // The call pays its latency, then surfaces a transient
                    // errno instead of reaching the server.
                    let (t0, t1, ()) = self.rank.timed_op(class, bytes, |_| {});
                    (t0, t1, Err(io_fault_error(fault)))
                }
                None => self.rank.timed_op(class, bytes, |now| f(client, now)),
            };
            match res {
                Ok(r) => return Ok((t0, t1, r)),
                Err(e) if e.is_transient() => {
                    attempt += 1;
                    if attempt >= MAX_IO_ATTEMPTS {
                        if obs::metrics_enabled() {
                            obs::metrics().add("iolibs.io_failstops", 1);
                        }
                        obs::instant(
                            "iolibs",
                            "io-failstop",
                            vec![
                                ("rank", obs::Arg::U(self.rank.rank() as u64)),
                                ("error", obs::Arg::S(e.to_string())),
                            ],
                        );
                        // A process that cannot complete its I/O fail-stops;
                        // the harness salvages its partial trace upstream.
                        self.rank.fail_stop(format!("I/O retries exhausted: {e}"));
                    }
                    if obs::metrics_enabled() {
                        obs::metrics().add("iolibs.io_retries", 1);
                    }
                    obs::instant(
                        "iolibs",
                        "io-retry",
                        vec![
                            ("rank", obs::Arg::U(self.rank.rank() as u64)),
                            ("attempt", obs::Arg::U(attempt as u64)),
                            ("error", obs::Arg::S(e.to_string())),
                        ],
                    );
                    // Exponential backoff, in simulated time.
                    self.rank.compute(IO_RETRY_BACKOFF_NS << attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn rec_posix(&mut self, t0: u64, t1: u64, func: Func) {
        let (s, e) = (self.rank.local_clock(t0), self.rank.local_clock(t1));
        self.tracer.record(s, e, Layer::Posix, self.origin, func);
        // Tee to the streaming sink, already barrier-adjusted. Only POSIX
        // records are streamed (offset resolution ignores other layers;
        // library-level spans are also not time-ordered per rank).
        if self.sink.is_some() {
            if let Some(zero) = self.sink_zero {
                self.sink_buf.push(Record {
                    t_start: s.saturating_sub(zero),
                    t_end: e.saturating_sub(zero),
                    rank: self.rank.rank(),
                    layer: Layer::Posix,
                    origin: self.origin,
                    func,
                });
                if self.sink_buf.len() >= SINK_CHUNK {
                    self.sink_flush();
                }
            }
        }
    }

    /// Locks a strong-consistency PFS would take for a data op of `len`
    /// bytes; modelled as extra latency before the op.
    fn lock_latency(&mut self, len: u64) {
        if self.pfs_cfg.semantics == SemanticsModel::Strong && len > 0 {
            let locks = len.div_ceil(self.pfs_cfg.lock_granularity);
            for _ in 0..locks.min(4) {
                // Cap the modelled round trips; the lock *count* statistics
                // live in pfssim and are exact.
                self.rank.timed_op(OpClass::FsLock, 0, |_| {});
            }
        }
    }

    pub fn open(&mut self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let pid = self.intern(path);
        let (t0, t1, fd) = self.posix_op(OpClass::FsOpen, 0, |c, now| c.open(path, flags, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::Open {
                path: pid,
                flags: flags.to_bits(),
                fd,
            },
        );
        Ok(fd)
    }

    pub fn close(&mut self, fd: Fd) -> FsResult<()> {
        let (t0, t1, ()) = self.posix_op(OpClass::FsClose, 0, |c, now| c.close(fd, now))?;
        self.rec_posix(t0, t1, Func::Close { fd });
        Ok(())
    }

    pub fn write(&mut self, fd: Fd, data: &[u8]) -> FsResult<WriteOut> {
        self.lock_latency(data.len() as u64);
        let (t0, t1, out) = self.posix_op(OpClass::FsWrite, data.len() as u64, |c, now| {
            c.write(fd, data, now)
        })?;
        self.rec_posix(
            t0,
            t1,
            Func::Write {
                fd,
                count: data.len() as u64,
            },
        );
        Ok(out)
    }

    pub fn pwrite(&mut self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<WriteOut> {
        self.lock_latency(data.len() as u64);
        let (t0, t1, out) = self.posix_op(OpClass::FsWrite, data.len() as u64, |c, now| {
            c.pwrite(fd, offset, data, now)
        })?;
        self.rec_posix(
            t0,
            t1,
            Func::Pwrite {
                fd,
                offset,
                count: data.len() as u64,
            },
        );
        Ok(out)
    }

    pub fn read(&mut self, fd: Fd, len: u64) -> FsResult<ReadOut> {
        self.lock_latency(len);
        let (t0, t1, out) = self.posix_op(OpClass::FsRead, len, |c, now| c.read(fd, len, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::Read {
                fd,
                count: len,
                ret: out.data.len() as u64,
            },
        );
        Ok(out)
    }

    pub fn pread(&mut self, fd: Fd, offset: u64, len: u64) -> FsResult<ReadOut> {
        self.lock_latency(len);
        let (t0, t1, out) =
            self.posix_op(OpClass::FsRead, len, |c, now| c.pread(fd, offset, len, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::Pread {
                fd,
                offset,
                count: len,
                ret: out.data.len() as u64,
            },
        );
        Ok(out)
    }

    pub fn lseek(&mut self, fd: Fd, offset: i64, whence: Whence) -> FsResult<u64> {
        let (t0, t1, ret) = self.posix_op(OpClass::FsSeek, 0, |c, now| {
            c.lseek(fd, offset, whence, now)
        })?;
        let w = match whence {
            Whence::Set => SeekWhence::Set,
            Whence::Cur => SeekWhence::Cur,
            Whence::End => SeekWhence::End,
        };
        self.rec_posix(
            t0,
            t1,
            Func::Lseek {
                fd,
                offset,
                whence: w,
                ret,
            },
        );
        Ok(ret)
    }

    pub fn fsync(&mut self, fd: Fd) -> FsResult<()> {
        let (t0, t1, ()) = self.posix_op(OpClass::FsSync, 0, |c, now| c.fsync(fd, now))?;
        self.rec_posix(t0, t1, Func::Fsync { fd });
        Ok(())
    }

    pub fn fdatasync(&mut self, fd: Fd) -> FsResult<()> {
        let (t0, t1, ()) = self.posix_op(OpClass::FsSync, 0, |c, now| c.fdatasync(fd, now))?;
        self.rec_posix(t0, t1, Func::Fdatasync { fd });
        Ok(())
    }

    pub fn ftruncate(&mut self, fd: Fd, len: u64) -> FsResult<()> {
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.ftruncate(fd, len, now))?;
        self.rec_posix(t0, t1, Func::Ftruncate { fd, len });
        Ok(())
    }

    pub fn mmap(&mut self, fd: Fd, offset: u64, len: u64) -> FsResult<ReadOut> {
        let (t0, t1, out) =
            self.posix_op(OpClass::FsRead, len, |c, now| c.mmap(fd, offset, len, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::Mmap {
                fd,
                offset,
                count: out.data.len() as u64,
            },
        );
        Ok(out)
    }

    pub fn msync(&mut self, fd: Fd) -> FsResult<()> {
        let (t0, t1, ()) = self.posix_op(OpClass::FsSync, 0, |c, now| c.msync(fd, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaFd {
                op: MetaKind::Msync,
                fd,
            },
        );
        Ok(())
    }

    /// `stat(2)`. Recorded even when it fails (a tracer sees failed probes
    /// of not-yet-existing files too).
    pub fn stat(&mut self, path: &str) -> FsResult<StatInfo> {
        let pid = self.intern(path);
        let client = &mut self.client;
        let (t0, t1, res) = self
            .rank
            .timed_op(OpClass::FsMeta, 0, |now| client.stat(path, now));
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Stat,
                path: pid,
            },
        );
        res
    }

    /// `lstat(2)`. Recorded even when it fails.
    pub fn lstat(&mut self, path: &str) -> FsResult<StatInfo> {
        let pid = self.intern(path);
        let client = &mut self.client;
        let (t0, t1, res) = self
            .rank
            .timed_op(OpClass::FsMeta, 0, |now| client.lstat(path, now));
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Lstat,
                path: pid,
            },
        );
        res
    }

    pub fn fstat(&mut self, fd: Fd) -> FsResult<StatInfo> {
        let (t0, t1, info) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.fstat(fd, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaFd {
                op: MetaKind::Fstat,
                fd,
            },
        );
        Ok(info)
    }

    pub fn access(&mut self, path: &str) -> FsResult<bool> {
        let pid = self.intern(path);
        let (t0, t1, ok) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.access(path, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Access,
                path: pid,
            },
        );
        Ok(ok)
    }

    pub fn mkdir(&mut self, path: &str) -> FsResult<()> {
        let pid = self.intern(path);
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.mkdir(path, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Mkdir,
                path: pid,
            },
        );
        Ok(())
    }

    /// `mkdir` that tolerates the directory already existing (the common
    /// "ensure output dir" idiom; every rank calls it).
    pub fn mkdir_p(&mut self, path: &str) -> FsResult<()> {
        match self.mkdir(path) {
            Err(pfssim::FsError::AlreadyExists { .. }) | Ok(()) => Ok(()),
            Err(e) => Err(e),
        }
    }

    pub fn rmdir(&mut self, path: &str) -> FsResult<()> {
        let pid = self.intern(path);
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.rmdir(path, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Rmdir,
                path: pid,
            },
        );
        Ok(())
    }

    pub fn unlink(&mut self, path: &str) -> FsResult<()> {
        let pid = self.intern(path);
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.unlink(path, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Unlink,
                path: pid,
            },
        );
        Ok(())
    }

    pub fn rename(&mut self, from: &str, to: &str) -> FsResult<()> {
        let p1 = self.intern(from);
        let p2 = self.intern(to);
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.rename(from, to, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath2 {
                op: MetaKind::Rename,
                path: p1,
                path2: p2,
            },
        );
        Ok(())
    }

    pub fn getcwd(&mut self) -> FsResult<String> {
        let (t0, t1, cwd) = self.posix_op(OpClass::FsMeta, 0, |c, now| Ok(c.getcwd(now)))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPlain {
                op: MetaKind::Getcwd,
            },
        );
        Ok(cwd)
    }

    pub fn chdir(&mut self, path: &str) -> FsResult<()> {
        let pid = self.intern(path);
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.chdir(path, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Chdir,
                path: pid,
            },
        );
        Ok(())
    }

    pub fn readdir(&mut self, path: &str) -> FsResult<Vec<pfssim::DirEntry>> {
        let pid = self.intern(path);
        let (t0, t1, entries) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.readdir(path, now))?;
        // One opendir, one readdir per entry, one closedir — matching how a
        // real tracer would see the loop.
        self.rec_posix(
            t0,
            t1,
            Func::MetaPath {
                op: MetaKind::Opendir,
                path: pid,
            },
        );
        for _ in &entries {
            self.rec_posix(
                t1,
                t1,
                Func::MetaPath {
                    op: MetaKind::Readdir,
                    path: pid,
                },
            );
        }
        self.rec_posix(
            t1,
            t1,
            Func::MetaPath {
                op: MetaKind::Closedir,
                path: pid,
            },
        );
        Ok(entries)
    }

    pub fn dup(&mut self, fd: Fd) -> FsResult<Fd> {
        let (t0, t1, nfd) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.dup(fd, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaFd {
                op: MetaKind::Dup,
                fd,
            },
        );
        Ok(nfd)
    }

    pub fn fcntl(&mut self, fd: Fd) -> FsResult<()> {
        let (t0, t1, ()) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.fcntl(fd, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaFd {
                op: MetaKind::Fcntl,
                fd,
            },
        );
        Ok(())
    }

    pub fn umask(&mut self, mask: u32) {
        let client = &mut self.client;
        let (t0, t1, ()) = self
            .rank
            .timed_op(OpClass::FsMeta, 0, |now| client.umask(mask, now));
        self.rec_posix(
            t0,
            t1,
            Func::MetaPlain {
                op: MetaKind::Umask,
            },
        );
    }

    pub fn fileno(&mut self, fd: Fd) -> FsResult<Fd> {
        let (t0, t1, r) = self.posix_op(OpClass::FsMeta, 0, |c, now| c.fileno(fd, now))?;
        self.rec_posix(
            t0,
            t1,
            Func::MetaFd {
                op: MetaKind::Fileno,
                fd,
            },
        );
        Ok(r)
    }

    /// Emit a behaviour-less counted metadata op by path (chmod, utime, …).
    pub fn meta_path(&mut self, op: MetaKind, path: &str) {
        let pid = self.intern(path);
        let client = &mut self.client;
        let (t0, t1, ()) = self.rank.timed_op(OpClass::FsMeta, 0, |_now| {
            if let Some(m) = meta_kind_to_pfs(op) {
                client.count_meta(m);
            }
        });
        self.rec_posix(t0, t1, Func::MetaPath { op, path: pid });
    }
}

/// Map the trace-side metadata vocabulary onto the simulator's counters.
fn meta_kind_to_pfs(op: MetaKind) -> Option<MetaOp> {
    MetaOp::ALL.iter().copied().find(|m| m.name() == op.name())
}

/// Max attempts for one POSIX call under transient injected faults: the
/// first try plus up to three retries.
const MAX_IO_ATTEMPTS: u32 = 4;
/// Base backoff (simulated ns) before a retry; doubles per attempt.
const IO_RETRY_BACKOFF_NS: u64 = 50_000;

/// App-side unwrapping of I/O results with graceful degradation: a hard
/// error fail-stops the rank (fault recorded, partial trace salvaged)
/// instead of panicking the whole simulated job. The receiver is the
/// completed `Result`, so `H5File::create(ctx, ..).or_fail_stop(ctx)`
/// borrows cleanly — the mutable borrow inside the call ends before the
/// extension method takes its shared one.
pub trait OrFailStop<T> {
    fn or_fail_stop(self, ctx: &AppCtx) -> T;
}

impl<T> OrFailStop<T> for Result<T, FsError> {
    fn or_fail_stop(self, ctx: &AppCtx) -> T {
        match self {
            Ok(v) => v,
            Err(e) => ctx.fail_stop(format!("unrecoverable I/O error: {e}")),
        }
    }
}

/// The errno a transient injected fault surfaces as.
fn io_fault_error(fault: IoFault) -> FsError {
    let detail = "injected fault".to_string();
    match fault {
        IoFault::Eintr => FsError::Interrupted { detail },
        IoFault::Eio => FsError::IoError { detail },
        IoFault::Enospc => FsError::NoSpace { detail },
        IoFault::LostFlush => unreachable!("lost flush is handled before dispatch"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_vocabularies_agree() {
        // Every trace-side MetaKind has a pfssim counter with the same name.
        for &k in MetaKind::ALL {
            assert!(
                meta_kind_to_pfs(k).is_some(),
                "no pfssim MetaOp for {}",
                k.name()
            );
        }
        assert_eq!(MetaKind::ALL.len(), MetaOp::ALL.len());
    }
}
