//! Streaming record sink: online consumers of a run's POSIX trace.
//!
//! A [`RunConfig`](crate::RunConfig) carrying a [`SinkHandle`] makes every
//! rank *tee* its POSIX records to the sink as they are emitted, already
//! barrier-adjusted (re-based so the startup-barrier exit is t = 0, the
//! same adjustment [`recorder::adjust::apply`] performs post-hoc). The
//! harness additionally forwards the simulator's epoch commits and, after
//! trace assembly, the [`PathId`](recorder::PathId) canonicalization.
//!
//! Contract:
//!
//! * `push` delivers one rank's records in program order with
//!   nondecreasing `t_start`; `frontier` promises every *future* record of
//!   that rank has `t_start >= frontier`. Chunks from different ranks
//!   arrive concurrently (sinks must be `Sync`).
//! * Record `PathId`s are the run's pre-assembly interner ids;
//!   `assembly_remap` delivers the translation to the canonical trace ids
//!   once the run completes.
//! * Callbacks may run on simulation threads; `epoch_released` in
//!   particular runs under the simulator's state lock and must not call
//!   back into the run.
//! * Streamed timestamps are only meaningful under the deterministic
//!   scheduler (the default). A free-running world still delivers every
//!   record, but cross-rank ordering then has real races and a streaming
//!   analysis is not guaranteed to match the post-hoc one.

use std::fmt;
use std::sync::Arc;

use recorder::Record;

/// Receiver of streamed run records. Methods with empty defaults are
/// optional signals.
pub trait RunSink: Send + Sync {
    /// A chunk of `rank`'s barrier-adjusted POSIX records, program order.
    fn push(&self, rank: u32, records: &[Record], frontier: u64);

    /// `rank` will emit no further records (finished or fail-stopped).
    fn rank_done(&self, rank: u32);

    /// Synchronization epoch `epoch` committed: all live ranks passed a
    /// barrier. A happens-before boundary usable for retiring state.
    fn epoch_released(&self, epoch: u64) {
        let _ = epoch;
    }

    /// The path canonicalization applied at trace assembly:
    /// `remap[streamed_id] = canonical_id`.
    fn assembly_remap(&self, remap: &[u32]) {
        let _ = remap;
    }
}

/// Cloneable, debug-opaque handle around a shared [`RunSink`], so
/// [`RunConfig`](crate::RunConfig) keeps its `Debug`/`Clone` derives.
#[derive(Clone)]
pub struct SinkHandle(pub Arc<dyn RunSink>);

impl SinkHandle {
    pub fn new(sink: Arc<dyn RunSink>) -> Self {
        SinkHandle(sink)
    }
}

// Rank bodies run under `catch_unwind` (graceful degradation); a config
// holding a sink must stay unwind-safe. Sinks are already required to be
// `Sync` (concurrent rank chunks), so their state is lock-guarded and a
// panic cannot expose un-poisoned broken invariants.
impl std::panic::UnwindSafe for SinkHandle {}
impl std::panic::RefUnwindSafe for SinkHandle {}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}
