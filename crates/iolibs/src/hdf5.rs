//! HDF5 model: the library's *I/O footprint*, not its data model.
//!
//! What matters to the paper and is reproduced here:
//!
//! * **Metadata interspersed with data** (§6.2.1): each dataset gets an
//!   object header allocated immediately before its data, so header writes
//!   land between large data extents — the source of the "random" accesses
//!   the paper attributes to HDF5.
//! * **Deferred, cached metadata**: dirty metadata lives in the library's
//!   cache and reaches the file only on eviction, `H5Fflush`, or close.
//!   An application that never flushes writes each metadata block exactly
//!   once (at close) — which is why most HDF5 applications in Table 4 show
//!   *no* conflicts.
//! * **Distributed metadata writes** (§6.2.2, Figure 2): with independent
//!   (non-collective) metadata, a subset of ranks (every `metadata_stride`-th
//!   rank — ~30 of 64 in the paper's FLASH runs) performs the small
//!   metadata writes; with `collective_metadata` only rank 0 does.
//! * **`H5Fflush` semantics** (§6.3): a flush writes all dirty metadata —
//!   each participant its own symbol-table slot (rewritten at *every*
//!   flush → same-process WAW), and the superblock by a *rotating*
//!   participant (the rank that dirtied it last → cross-process WAW across
//!   consecutive flushes — FLASH's conflict). The flush ends in `fsync` on
//!   every rank: a commit, which is exactly why the same pattern is safe
//!   under commit semantics but not under session semantics.
//! * **Cache-eviction read-back**: creating more datasets than
//!   `metadata_cache_slots` evicts (writes) the oldest header; later
//!   B-tree traversals must read an evicted block back — a same-process
//!   read-after-write within one open session (ENZO's RAW-S).
//! * **open/close artifacts**: `access`+`getcwd` on create, `fstat` and a
//!   superblock read on open, `ftruncate` on close (the extra metadata
//!   operations Figure 3 shows for ParaDiS-HDF5).

use std::collections::VecDeque;

use pfssim::{FsResult, OpenFlags};
use recorder::{Func, Layer};

use crate::harness::{AppCtx, Fd};
use crate::mpiio::{MpiFile, MpiIoHints};

/// Size of the HDF5 superblock at offset 0.
pub const SUPERBLOCK: u64 = 96;
/// Size of one object header.
pub const OBJ_HEADER: u64 = 272;
/// Size of one symbol-table entry in the superblock extension.
pub const SYMTAB_ENTRY: u64 = 32;
/// Start of the symbol-table region (after the superblock).
pub const SYMTAB_BASE: u64 = SUPERBLOCK;
/// Number of symbol-table slots (the region is `SYMTAB_SLOTS × 32` bytes).
pub const SYMTAB_SLOTS: u64 = 64;
/// First byte after the fixed metadata region; object headers and data are
/// allocated from here.
pub const ALLOC_BASE: u64 = SYMTAB_BASE + SYMTAB_SLOTS * SYMTAB_ENTRY;

/// HDF5 file access properties.
#[derive(Debug, Clone, Copy)]
pub struct H5Opts {
    /// Single-process file (no communicator): all I/O by the calling rank,
    /// no barriers. Used by applications with per-rank or rank-0-only files.
    pub serial: bool,
    /// Route dataset writes through MPI-IO collective buffering.
    pub collective_data: bool,
    /// Only rank 0 performs metadata I/O (one of the paper's two FLASH
    /// fixes, §6.3).
    pub collective_metadata: bool,
    /// Every `metadata_stride`-th rank participates in metadata writes
    /// (2 → 32 of 64 ranks, matching the paper's "~30 processes").
    pub metadata_stride: u32,
    /// Metadata cache capacity (object headers). Creating more datasets
    /// evicts the oldest header to the file; creating more than *twice*
    /// this many forces read-backs of evicted blocks.
    pub metadata_cache_slots: u32,
    /// MPI-IO hints for collective data.
    pub hints: MpiIoHints,
}

impl Default for H5Opts {
    fn default() -> Self {
        H5Opts {
            serial: false,
            collective_data: false,
            collective_metadata: false,
            metadata_stride: 2,
            metadata_cache_slots: 16,
            hints: MpiIoHints::default(),
        }
    }
}

impl H5Opts {
    pub fn serial() -> Self {
        H5Opts {
            serial: true,
            ..Default::default()
        }
    }

    pub fn collective() -> Self {
        H5Opts {
            collective_data: true,
            ..Default::default()
        }
    }

    pub fn with_collective_metadata(mut self) -> Self {
        self.collective_metadata = true;
        self
    }

    pub fn with_cache_slots(mut self, slots: u32) -> Self {
        self.metadata_cache_slots = slots;
        self
    }
}

/// A dataset handle (identical on every participating rank).
#[derive(Debug, Clone)]
pub struct H5Dataset {
    pub id: u32,
    pub name: String,
    /// Absolute file offset of the dataset's first data byte.
    pub data_off: u64,
    pub size: u64,
}

enum Storage {
    Posix(Fd),
    Mpi(MpiFile),
}

/// A metadata cache entry: the object header of dataset `k`, owned by the
/// metadata participant `owner`.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    k: u32,
    header_off: u64,
    owner: u32,
}

/// An open HDF5 file.
pub struct H5File {
    id: u32,
    path: String,
    storage: Storage,
    opts: H5Opts,
    /// File-space allocation cursor (kept in lockstep on all ranks: every
    /// rank executes the same collective calls with the same sizes).
    alloc_cursor: u64,
    n_datasets: u32,
    flush_count: u32,
    /// Dirty metadata cache (FIFO eviction).
    cache: VecDeque<CacheEntry>,
    /// Headers already written to the file (evicted or flushed).
    written: Vec<CacheEntry>,
    /// Participants that own at least one dataset (they have a dirty
    /// symbol-table slot).
    owners_used: Vec<u32>,
    writable: bool,
}

impl H5File {
    /// The metadata-writing ranks under the current options.
    fn participants(&self, ctx: &AppCtx) -> Vec<u32> {
        if self.opts.serial {
            vec![ctx.rank()]
        } else if self.opts.collective_metadata {
            vec![0]
        } else {
            (0..ctx.nranks())
                .step_by(self.opts.metadata_stride.max(1) as usize)
                .collect()
        }
    }

    fn fd_for_posix(&self) -> Fd {
        match &self.storage {
            Storage::Posix(fd) => *fd,
            Storage::Mpi(mf) => mf.fd(),
        }
    }

    fn symtab_off(&self, ctx: &AppCtx, participant: u32) -> u64 {
        let participants = self.participants(ctx);
        let idx = participants
            .iter()
            .position(|&p| p == participant)
            .unwrap_or(0) as u64
            % SYMTAB_SLOTS;
        SYMTAB_BASE + idx * SYMTAB_ENTRY
    }

    /// `H5Fcreate`: create a fresh file. Collective unless `opts.serial`.
    pub fn create(ctx: &mut AppCtx, path: &str, opts: H5Opts) -> FsResult<H5File> {
        let t0 = ctx.now();
        let id = ctx.alloc_lib_id();
        let storage = ctx.with_origin(Layer::Hdf5, |ctx| -> FsResult<Storage> {
            ctx.getcwd()?;
            ctx.access(path)?;
            let _ = ctx.lstat(path); // existence probe (ENOENT on fresh files)
            if opts.serial {
                let fd = ctx.open(path, OpenFlags::rdwr_create())?;
                ctx.fstat(fd)?;
                Ok(Storage::Posix(fd))
            } else if opts.collective_data {
                Ok(Storage::Mpi(MpiFile::open(ctx, path, false, opts.hints)?))
            } else {
                // Independent mode: every rank holds its own POSIX fd.
                let fd = if ctx.rank() == 0 {
                    let fd = ctx.open(path, OpenFlags::rdwr_create())?;
                    ctx.barrier();
                    fd
                } else {
                    ctx.barrier();
                    ctx.open(path, OpenFlags::rdwr())?
                };
                ctx.fstat(fd)?;
                Ok(Storage::Posix(fd))
            }
        })?;
        let pid = ctx.intern(path);
        let t1 = ctx.now();
        ctx.record_lib(Layer::Hdf5, t0, t1, Func::H5Fcreate { path: pid, id });
        Ok(H5File {
            id,
            path: path.to_string(),
            storage,
            opts,
            alloc_cursor: ALLOC_BASE,
            n_datasets: 0,
            flush_count: 0,
            cache: VecDeque::new(),
            written: Vec::new(),
            owners_used: Vec::new(),
            writable: true,
        })
    }

    /// `H5Fopen` (read-only): opens and reads the superblock back — a
    /// fresh-session read, so it never conflicts under session semantics.
    pub fn open_rdonly(ctx: &mut AppCtx, path: &str, opts: H5Opts) -> FsResult<H5File> {
        let t0 = ctx.now();
        let id = ctx.alloc_lib_id();
        let fd = ctx.with_origin(Layer::Hdf5, |ctx| -> FsResult<Fd> {
            ctx.access(path)?;
            let fd = ctx.open(path, OpenFlags::rdonly())?;
            ctx.fstat(fd)?;
            ctx.pread(fd, 0, SUPERBLOCK)?;
            Ok(fd)
        })?;
        let pid = ctx.intern(path);
        let t1 = ctx.now();
        ctx.record_lib(Layer::Hdf5, t0, t1, Func::H5Fopen { path: pid, id });
        Ok(H5File {
            id,
            path: path.to_string(),
            storage: Storage::Posix(fd),
            opts,
            alloc_cursor: ALLOC_BASE,
            n_datasets: 0,
            flush_count: 0,
            cache: VecDeque::new(),
            written: Vec::new(),
            owners_used: Vec::new(),
            writable: false,
        })
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// `H5Dcreate`: allocate an object header + data space for a dataset of
    /// `total_bytes` (the global size across all ranks). Collective unless
    /// serial. Metadata stays in the cache; over-capacity creation evicts
    /// the oldest header to the file, and deep B-tree traversals read
    /// previously evicted blocks back (the ENZO RAW-S).
    pub fn create_dataset(
        &mut self,
        ctx: &mut AppCtx,
        name: &str,
        total_bytes: u64,
    ) -> FsResult<H5Dataset> {
        assert!(self.writable, "dataset create on read-only file");
        let t0 = ctx.now();
        let k = self.n_datasets;
        self.n_datasets += 1;
        let header_off = self.alloc_cursor;
        let data_off = header_off + OBJ_HEADER;
        self.alloc_cursor = (data_off + total_bytes).div_ceil(8) * 8;

        let participants = self.participants(ctx);
        let owner = participants[k as usize % participants.len()];
        if !self.owners_used.contains(&owner) {
            self.owners_used.push(owner);
        }
        self.cache.push_back(CacheEntry {
            k,
            header_off,
            owner,
        });

        // Eviction: cache over capacity → oldest header is written out by
        // its owner.
        if self.cache.len() > self.opts.metadata_cache_slots as usize {
            let victim = self.cache.pop_front().expect("non-empty");
            if ctx.rank() == victim.owner {
                let fd = self.fd_for_posix();
                ctx.with_origin(Layer::Hdf5, |ctx| {
                    ctx.pwrite(fd, victim.header_off, &vec![0xa5u8; OBJ_HEADER as usize])
                })?;
            }
            self.written.push(victim);
        }

        // B-tree traversal: inserting dataset k needs the node containing
        // dataset k - 2·slots, which was evicted earlier — read it back.
        let depth = 2 * self.opts.metadata_cache_slots;
        if k >= depth {
            let needed = k - depth;
            if let Some(e) = self.written.iter().find(|e| e.k == needed).copied() {
                if ctx.rank() == e.owner {
                    let fd = self.fd_for_posix();
                    ctx.with_origin(Layer::Hdf5, |ctx| ctx.pread(fd, e.header_off, OBJ_HEADER))?;
                }
            }
        }

        if !self.opts.serial {
            ctx.barrier();
        }
        let dset_id = ctx.alloc_lib_id();
        let nid = ctx.intern(name);
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Hdf5,
            t0,
            t1,
            Func::H5Dcreate {
                file: self.id,
                name: nid,
                id: dset_id,
            },
        );
        Ok(H5Dataset {
            id: dset_id,
            name: name.to_string(),
            data_off,
            size: total_bytes,
        })
    }

    /// `H5Dwrite` of this rank's hyperslab `[offset_in_dset, +data.len())`.
    /// Collective (two-phase via MPI-IO) when the file was opened with
    /// `collective_data`, independent POSIX otherwise.
    pub fn write(
        &mut self,
        ctx: &mut AppCtx,
        dset: &H5Dataset,
        offset_in_dset: u64,
        data: &[u8],
    ) -> FsResult<()> {
        assert!(self.writable, "write on read-only file");
        let t0 = ctx.now();
        let abs = dset.data_off + offset_in_dset;
        match &self.storage {
            Storage::Mpi(mf) => mf.write_at_all(ctx, abs, data)?,
            Storage::Posix(fd) => {
                let fd = *fd;
                ctx.with_origin(Layer::Hdf5, |ctx| ctx.pwrite(fd, abs, data))?;
            }
        }
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Hdf5,
            t0,
            t1,
            Func::H5Dwrite {
                dset: dset.id,
                count: data.len() as u64,
            },
        );
        Ok(())
    }

    /// `H5Dread` of `[offset_in_dset, +len)`.
    pub fn read(
        &mut self,
        ctx: &mut AppCtx,
        dset: &H5Dataset,
        offset_in_dset: u64,
        len: u64,
    ) -> FsResult<Vec<u8>> {
        let t0 = ctx.now();
        let abs = dset.data_off + offset_in_dset;
        let data = match &self.storage {
            Storage::Mpi(mf) => mf.read_at_all(ctx, abs, len)?,
            Storage::Posix(fd) => {
                let fd = *fd;
                ctx.with_origin(Layer::Hdf5, |ctx| ctx.pread(fd, abs, len))?
                    .data
            }
        };
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Hdf5,
            t0,
            t1,
            Func::H5Dread {
                dset: dset.id,
                count: len,
            },
        );
        Ok(data)
    }

    /// Write out all dirty metadata. `sb_writer` writes the superblock.
    fn write_dirty_metadata(&mut self, ctx: &mut AppCtx, sb_writer: u32) -> FsResult<()> {
        let fd = self.fd_for_posix();
        // Cached headers, each by its owner, oldest first.
        let entries: Vec<CacheEntry> = self.cache.drain(..).collect();
        for e in entries {
            if ctx.rank() == e.owner {
                ctx.with_origin(Layer::Hdf5, |ctx| {
                    ctx.pwrite(fd, e.header_off, &vec![0xa5u8; OBJ_HEADER as usize])
                })?;
            }
            self.written.push(e);
        }
        // Each dataset-owning participant rewrites its symbol-table slot
        // (dirty again after every batch of creations).
        if self.owners_used.contains(&ctx.rank()) {
            let off = self.symtab_off(ctx, ctx.rank());
            ctx.with_origin(Layer::Hdf5, |ctx| {
                ctx.pwrite(fd, off, &vec![0x5au8; SYMTAB_ENTRY as usize])
            })?;
        }
        // Superblock, by the designated writer.
        if ctx.rank() == sb_writer {
            ctx.with_origin(Layer::Hdf5, |ctx| {
                ctx.pwrite(fd, 0, &vec![0x89u8; SUPERBLOCK as usize])
            })?;
        }
        Ok(())
    }

    /// `H5Fflush`: write all dirty metadata, then fsync on every rank.
    ///
    /// The superblock writer *rotates* across flushes (the participant that
    /// dirtied the cache entry last), producing FLASH's cross-process WAW
    /// under session semantics; the trailing fsync is the commit that makes
    /// the same pattern conflict-free under commit semantics.
    pub fn flush(&mut self, ctx: &mut AppCtx) -> FsResult<()> {
        assert!(self.writable, "flush on read-only file");
        let t0 = ctx.now();
        let participants = self.participants(ctx);
        let sb_writer = participants[self.flush_count as usize % participants.len()];
        self.flush_count += 1;
        self.write_dirty_metadata(ctx, sb_writer)?;
        let fd = self.fd_for_posix();
        ctx.with_origin(Layer::Hdf5, |ctx| ctx.fsync(fd))?;
        if !self.opts.serial {
            ctx.barrier();
        }
        let t1 = ctx.now();
        ctx.record_lib(Layer::Hdf5, t0, t1, Func::H5Fflush { id: self.id });
        Ok(())
    }

    /// `H5Fclose`: implies a final flush of dirty metadata (superblock by
    /// the first participant), truncates the file to its allocated size,
    /// and closes every rank's handle. An application that never called
    /// `H5Fflush` writes each metadata block exactly once, here.
    pub fn close(mut self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        if self.writable {
            let owner = self.participants(ctx)[0];
            self.write_dirty_metadata(ctx, owner)?;
            let fd = self.fd_for_posix();
            let alloc = self.alloc_cursor;
            ctx.with_origin(Layer::Hdf5, |ctx| -> FsResult<()> {
                if ctx.rank() == owner {
                    ctx.ftruncate(fd, alloc)?;
                }
                ctx.fsync(fd)?;
                Ok(())
            })?;
        }
        let serial = self.opts.serial;
        let id = self.id;
        match self.storage {
            Storage::Mpi(mf) => mf.close(ctx)?,
            Storage::Posix(fd) => {
                ctx.with_origin(Layer::Hdf5, |ctx| ctx.close(fd))?;
                if !serial {
                    ctx.barrier();
                }
            }
        }
        let t1 = ctx.now();
        ctx.record_lib(Layer::Hdf5, t0, t1, Func::H5Fclose { id });
        Ok(())
    }
}
