//! ADIOS2 (BP4-style) model, as used by LAMMPS-ADIOS.
//!
//! A `.bp` output is a *directory*: `data.<i>` subfiles written by a small
//! set of aggregators (the M-M pattern of Table 3), plus the global
//! metadata files `md.0` and `md.idx` maintained by rank 0. Each step
//! appends an index entry to `md.idx` **and overwrites a single status
//! byte** at a fixed offset — "in LAMMPS-ADIOS the conflict is due to the
//! overwriting of a single byte of the ADIOS metadata file (*/md.idx)"
//! (§6.3): the WAW-S Table 4 reports.

use pfssim::{FsResult, OpenFlags};
use recorder::{Func, Layer};

use crate::harness::{AppCtx, Fd};

/// Tag for shuffling payload to the ADIOS aggregators.
const ADIOS_TAG: u32 = u32::MAX - 2;

/// Size of one `md.idx` step entry.
pub const IDX_ENTRY: u64 = 64;
/// Offset of the status byte rewritten every step.
pub const IDX_STATUS_OFF: u64 = 0;
/// `md.idx` header size (entries are appended after it).
pub const IDX_HEADER: u64 = 64;

/// An open ADIOS "engine" (one `.bp` directory).
pub struct AdiosWriter {
    id: u32,
    dir: String,
    n_writers: u32,
    /// Subfile fd on aggregator ranks, `None` elsewhere.
    data_fd: Option<Fd>,
    /// `md.idx` and `md.0` fds on rank 0.
    idx_fd: Option<Fd>,
    md_fd: Option<Fd>,
    step: u64,
    /// Tail of this aggregator's subfile.
    data_tail: u64,
    md_tail: u64,
}

impl AdiosWriter {
    /// Which aggregator serves `rank`.
    fn aggregator_of(rank: u32, nranks: u32, n_writers: u32) -> u32 {
        let group = nranks.div_ceil(n_writers);
        (rank / group) * group
    }

    fn is_aggregator(ctx: &AppCtx, n_writers: u32) -> bool {
        Self::aggregator_of(ctx.rank(), ctx.nranks(), n_writers) == ctx.rank()
    }

    /// `adios2::Engine` open in write mode. Collective.
    pub fn open(ctx: &mut AppCtx, dir: &str, n_writers: u32) -> FsResult<AdiosWriter> {
        let t0 = ctx.now();
        let id = ctx.alloc_lib_id();
        let n_writers = n_writers.clamp(1, ctx.nranks());
        let (data_fd, idx_fd, md_fd) = ctx.with_origin(Layer::Adios, |ctx| {
            ctx.getcwd()?; // engine resolves the output path
            if ctx.rank() == 0 {
                ctx.mkdir_p(dir)?;
                // BP4 marks an output in progress with a sentinel file,
                // removed again when the engine closes.
                let sentinel = format!("{dir}/.active");
                let fd = ctx.open(&sentinel, OpenFlags::wronly_create_trunc())?;
                ctx.close(fd)?;
            }
            ctx.barrier();
            let data_fd = if Self::is_aggregator(ctx, n_writers) {
                let sub = ctx.rank() / ctx.nranks().div_ceil(n_writers);
                Some(ctx.open(
                    &format!("{dir}/data.{sub}"),
                    OpenFlags::wronly_create_trunc(),
                )?)
            } else {
                None
            };
            let (idx_fd, md_fd) = if ctx.rank() == 0 {
                let idx_path = format!("{dir}/md.idx");
                if ctx.access(&idx_path)? {
                    ctx.unlink(&idx_path)?; // stale index from a previous run
                }
                let idx = ctx.open(&idx_path, OpenFlags::rdwr_create())?;
                ctx.pwrite(idx, 0, &vec![0u8; IDX_HEADER as usize])?;
                let md = ctx.open(&format!("{dir}/md.0"), OpenFlags::wronly_create_trunc())?;
                (Some(idx), Some(md))
            } else {
                (None, None)
            };
            Ok::<_, pfssim::FsError>((data_fd, idx_fd, md_fd))
        })?;
        let name = ctx.intern("adios_open");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Adios,
            t0,
            t1,
            Func::LibCall {
                name,
                a: id as u64,
                b: 0,
            },
        );
        Ok(AdiosWriter {
            id,
            dir: dir.to_string(),
            n_writers,
            data_fd,
            idx_fd,
            md_fd,
            step: 0,
            data_tail: 0,
            md_tail: 0,
        })
    }

    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// One output step: every rank ships its payload to its aggregator;
    /// aggregators append to their subfile; rank 0 appends an index entry
    /// to `md.idx`, appends to `md.0`, and rewrites the status byte.
    pub fn write_step(&mut self, ctx: &mut AppCtx, payload: &[u8]) -> FsResult<()> {
        let t0 = ctx.now();
        let agg = Self::aggregator_of(ctx.rank(), ctx.nranks(), self.n_writers);
        ctx.send(agg, ADIOS_TAG, payload.to_vec());
        if let Some(fd) = self.data_fd {
            let group = ctx.nranks().div_ceil(self.n_writers);
            let lo = ctx.rank();
            let hi = (lo + group).min(ctx.nranks());
            let mut blob = Vec::new();
            for src in lo..hi {
                blob.extend_from_slice(&ctx.recv(src, ADIOS_TAG));
            }
            let tail = self.data_tail;
            ctx.with_origin(Layer::Adios, |ctx| ctx.pwrite(fd, tail, &blob))?;
            self.data_tail += blob.len() as u64;
        }
        if ctx.rank() == 0 {
            let idx_fd = self.idx_fd.expect("rank 0 holds md.idx");
            let md_fd = self.md_fd.expect("rank 0 holds md.0");
            let step = self.step;
            let md_tail = self.md_tail;
            ctx.with_origin(Layer::Adios, |ctx| -> FsResult<()> {
                // Append the step index entry…
                ctx.pwrite(
                    idx_fd,
                    IDX_HEADER + step * IDX_ENTRY,
                    &[1u8; IDX_ENTRY as usize],
                )?;
                // …append variable metadata…
                ctx.pwrite(md_fd, md_tail, &[2u8; 256])?;
                // …and overwrite the single status byte (the WAW-S).
                ctx.pwrite(idx_fd, IDX_STATUS_OFF, &[step as u8])?;
                Ok(())
            })?;
            self.md_tail += 256;
        }
        ctx.barrier();
        self.step += 1;
        let name = ctx.intern("adios_write");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Adios,
            t0,
            t1,
            Func::LibCall {
                name,
                a: self.id as u64,
                b: payload.len() as u64,
            },
        );
        Ok(())
    }

    /// Engine close. Collective; removes the in-progress sentinel.
    pub fn close(self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::Adios, |ctx| -> FsResult<()> {
            if let Some(fd) = self.data_fd {
                ctx.close(fd)?;
            }
            if let Some(fd) = self.idx_fd {
                ctx.close(fd)?;
            }
            if let Some(fd) = self.md_fd {
                ctx.close(fd)?;
            }
            if ctx.rank() == 0 {
                ctx.unlink(&format!("{}/.active", self.dir))?;
            }
            Ok(())
        })?;
        ctx.barrier();
        let name = ctx.intern("adios_close");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Adios,
            t0,
            t1,
            Func::LibCall {
                name,
                a: self.id as u64,
                b: 0,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_assignment_groups_ranks() {
        // 8 ranks, 2 writers → groups of 4, aggregators 0 and 4.
        for r in 0..4 {
            assert_eq!(AdiosWriter::aggregator_of(r, 8, 2), 0);
        }
        for r in 4..8 {
            assert_eq!(AdiosWriter::aggregator_of(r, 8, 2), 4);
        }
    }
}
