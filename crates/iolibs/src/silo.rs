//! Silo (multi-file / PMPIO baton) model, as used by MACSio.
//!
//! MACSio's Silo driver writes N ranks into M files (the N-M pattern of
//! Table 3) with "baton passing": within each group of N/M ranks, only the
//! baton holder has the file open; it writes its block at a rank-strided
//! offset, updates the file's directory table — twice, once to add its
//! objects and once to finalize the TOC count, the same bytes by the same
//! process in one session: the WAW-S of Table 4 — then closes the file and
//! hands the baton to the next rank. Because every baton hand-off is a
//! close followed by an open, the *cross-rank* TOC overwrites are exactly
//! the close-to-open pattern session semantics permits: no WAW-D.

use pfssim::{FsResult, OpenFlags};
use recorder::{Func, Layer};

use crate::harness::AppCtx;

/// Tag used for baton hand-off messages.
const BATON_TAG: u32 = u32::MAX - 3;

/// Size of the directory (TOC) region at the start of each Silo file.
pub const SILO_TOC: u64 = 256;

/// Options for a multi-file Silo dump.
#[derive(Debug, Clone, Copy)]
pub struct SiloOpts {
    /// Number of files (M of the N-M pattern).
    pub n_files: u32,
    /// Bytes each rank writes per dump.
    pub block_bytes: u64,
}

impl Default for SiloOpts {
    fn default() -> Self {
        SiloOpts {
            n_files: 8,
            block_bytes: 4096,
        }
    }
}

/// One collective multi-file Silo dump (the whole PMPIO create → baton →
/// close cycle). Every rank must call this.
pub struct SiloFile;

impl SiloFile {
    /// Perform dump number `dump_idx` into `<dir>/dump_<idx>.<file>.silo`.
    pub fn dump(ctx: &mut AppCtx, dir: &str, dump_idx: u32, opts: SiloOpts) -> FsResult<()> {
        let t0 = ctx.now();
        let id = ctx.alloc_lib_id();
        let nranks = ctx.nranks();
        let n_files = opts.n_files.clamp(1, nranks);
        let group = nranks.div_ceil(n_files);
        let file_idx = ctx.rank() / group;
        let rank_in_group = ctx.rank() % group;
        let first = file_idx * group;
        let path = format!("{dir}/dump_{dump_idx}.{file_idx}.silo");

        if ctx.rank() == 0 {
            ctx.with_origin(Layer::Silo, |ctx| ctx.mkdir_p(dir))?;
        }
        ctx.barrier();

        // Wait for the baton from the previous rank in the group.
        if rank_in_group != 0 {
            ctx.recv(ctx.rank() - 1, BATON_TAG);
        }

        ctx.with_origin(Layer::Silo, |ctx| -> FsResult<()> {
            let fd = if rank_in_group == 0 {
                // DBCreate: first writer creates the file and the TOC.
                let fd = ctx.open(&path, OpenFlags::rdwr_create())?;
                ctx.pwrite(fd, 0, &vec![b'S'; SILO_TOC as usize])?;
                fd
            } else {
                // DBOpen: subsequent writers open after the predecessor's
                // close (the PMPIO hand-off).
                ctx.access(&path)?;
                ctx.open(&path, OpenFlags::rdwr())?
            };
            // Write this rank's block at its strided offset, streamed in
            // per-variable pieces (mesh + fields), as MACSio does.
            let off = SILO_TOC + rank_in_group as u64 * opts.block_bytes;
            let block = vec![ctx.rank() as u8; opts.block_bytes as usize];
            let piece = (opts.block_bytes / 4).max(1) as usize;
            let mut pos = 0usize;
            while pos < block.len() {
                let end = (pos + piece).min(block.len());
                ctx.pwrite(fd, off + pos as u64, &block[pos..end])?;
                pos = end;
            }
            // Update the TOC for the new objects…
            let toc_slot = 8 + (rank_in_group as u64 % 8) * 16;
            ctx.pwrite(fd, toc_slot, &[1u8; 16])?;
            // …and finalize the directory count — the same bytes again, by
            // the same process, in the same session (WAW-S).
            ctx.pwrite(fd, toc_slot, &[2u8; 16])?;
            ctx.close(fd)?;
            Ok(())
        })?;

        // Pass the baton.
        let last_in_group = first + group.min(nranks - first) - 1;
        if ctx.rank() != last_in_group {
            ctx.send(ctx.rank() + 1, BATON_TAG, vec![1]);
        }
        ctx.barrier();
        let name = ctx.intern("DBPutAll");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::Silo,
            t0,
            t1,
            Func::LibCall {
                name,
                a: id as u64,
                b: opts.block_bytes,
            },
        );
        Ok(())
    }
}
