//! NetCDF (classic format) model, as used single-process by LAMMPS-NetCDF.
//!
//! The classic format keeps a header at the start of the file containing
//! `numrecs`, the count of records along the unlimited dimension. Appending
//! a record therefore (a) appends the record data and (b) rewrites the
//! header's `numrecs` field — the same bytes, by the same process, with no
//! intervening close: the WAW-S conflict Table 4 reports for LAMMPS-NetCDF.

use pfssim::{FsResult, OpenFlags};
use recorder::{Func, Layer};

use crate::harness::{AppCtx, Fd};

/// Size of the classic-format header this model writes.
pub const NC_HEADER: u64 = 1024;
/// Offset of the `numrecs` field inside the header.
pub const NC_NUMRECS_OFF: u64 = 4;

/// A NetCDF file opened by a single process.
pub struct NcFile {
    id: u32,
    fd: Fd,
    path: String,
    /// Next free offset for record data.
    tail: u64,
    numrecs: u64,
}

impl NcFile {
    /// `nc_create` + `nc_enddef`: create the file and write the header.
    pub fn create(ctx: &mut AppCtx, path: &str) -> FsResult<NcFile> {
        let t0 = ctx.now();
        let id = ctx.alloc_lib_id();
        let fd = ctx.with_origin(Layer::NetCdf, |ctx| -> FsResult<Fd> {
            ctx.access(path)?;
            let _ = ctx.stat(path);
            let fd = ctx.open(path, OpenFlags::rdwr_create())?;
            ctx.pwrite(fd, 0, &vec![b'C'; NC_HEADER as usize])?;
            Ok(fd)
        })?;
        let name = ctx.intern("nc_create");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::NetCdf,
            t0,
            t1,
            Func::LibCall {
                name,
                a: id as u64,
                b: 0,
            },
        );
        Ok(NcFile {
            id,
            fd,
            path: path.to_string(),
            tail: NC_HEADER,
            numrecs: 0,
        })
    }

    pub fn path(&self) -> &str {
        &self.path
    }

    /// `nc_put_vara` along the unlimited dimension: append the record and
    /// rewrite the header's `numrecs` field (the WAW-S).
    pub fn put_record(&mut self, ctx: &mut AppCtx, data: &[u8]) -> FsResult<()> {
        let t0 = ctx.now();
        let off = self.tail;
        ctx.with_origin(Layer::NetCdf, |ctx| -> FsResult<()> {
            // Record data goes out in per-variable pieces (≤ 2 KiB), then
            // the header's numrecs field is rewritten.
            let mut pos = 0usize;
            while pos < data.len() {
                let end = (pos + 2048).min(data.len());
                ctx.pwrite(self.fd, off + pos as u64, &data[pos..end])?;
                pos = end;
            }
            ctx.pwrite(
                self.fd,
                NC_NUMRECS_OFF,
                &(self.numrecs + 1).to_be_bytes()[4..],
            )?;
            Ok(())
        })?;
        self.tail += data.len() as u64;
        self.numrecs += 1;
        let name = ctx.intern("nc_put_vara");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::NetCdf,
            t0,
            t1,
            Func::LibCall {
                name,
                a: self.id as u64,
                b: data.len() as u64,
            },
        );
        Ok(())
    }

    /// `nc_sync`: flush to storage.
    pub fn sync(&mut self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::NetCdf, |ctx| ctx.fsync(self.fd))?;
        let name = ctx.intern("nc_sync");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::NetCdf,
            t0,
            t1,
            Func::LibCall {
                name,
                a: self.id as u64,
                b: 0,
            },
        );
        Ok(())
    }

    /// `nc_close`.
    pub fn close(self, ctx: &mut AppCtx) -> FsResult<()> {
        let t0 = ctx.now();
        ctx.with_origin(Layer::NetCdf, |ctx| ctx.close(self.fd))?;
        let name = ctx.intern("nc_close");
        let t1 = ctx.now();
        ctx.record_lib(
            Layer::NetCdf,
            t0,
            t1,
            Func::LibCall {
                name,
                a: self.id as u64,
                b: 0,
            },
        );
        Ok(())
    }
}
