//! # iolibs — behavioural models of the HPC I/O library stack
//!
//! The paper's applications perform I/O "using the POSIX API and a variety
//! of I/O libraries: MPI-IO, HDF5, Silo, NetCDF or ADIOS2" (§6.1), and many
//! of its findings are about behaviour those libraries *introduce*: HDF5
//! metadata interspersed with data causing random accesses (§6.2.1), MPI-IO
//! collective aggregation reducing the number of PFS writers (§6.2.2), the
//! ADIOS `md.idx` single-byte overwrite causing a WAW conflict (§6.3), HDF5
//! `H5Fflush` causing FLASH's cross-process WAW (§6.3).
//!
//! This crate models each library's *I/O footprint* — the POSIX calls it
//! issues on behalf of the application, in which order, from which ranks —
//! on top of:
//!
//! * [`mpisim`] for rank scheduling, simulated time and communication,
//! * [`pfssim`] for file contents and consistency behaviour,
//! * [`recorder`] for the multi-level trace.
//!
//! [`AppCtx`] bundles all three per rank and is what application replicas
//! program against; [`run_app`] executes an SPMD closure on every rank and
//! assembles the [`recorder::TraceSet`].

pub mod adios;
mod harness;
pub mod hdf5;
pub mod mpiio;
pub mod netcdf;
pub mod silo;
pub mod sink;

pub use adios::AdiosWriter;
pub use harness::{
    run_app, run_app_on, run_app_on_result, run_app_result, run_pipeline, AppCtx, Fd, OrFailStop,
    PipelineOutcome, RunConfig, RunOutcome,
};
pub use hdf5::{H5File, H5Opts};
pub use mpiio::{MpiFile, MpiIoHints};
pub use mpisim::{ExecModel, FaultKind, FaultPlan, FaultSite, IoFault, SimError, MAX_RANKS};
pub use netcdf::NcFile;
pub use silo::{SiloFile, SiloOpts};
pub use sink::{RunSink, SinkHandle};
