//! Integration tests of the full simulated I/O stack: harness + POSIX layer
//! + library models, validated through the recorder's offset resolution.

use iolibs::{
    run_app, AdiosWriter, AppCtx, H5File, H5Opts, MpiFile, MpiIoHints, NcFile, RunConfig, SiloFile,
    SiloOpts,
};
use pfssim::{OpenFlags, SemanticsModel};
use recorder::{adjust, offset, AccessKind, Func, Layer};

fn cfg(nranks: u32, seed: u64) -> RunConfig {
    RunConfig::new(nranks, seed)
}

/// Resolve a run's trace (barrier-adjusted, as the analysis would).
fn resolved(outcome: &iolibs::RunOutcome) -> offset::ResolvedTrace {
    offset::resolve(&adjust::apply(&outcome.trace))
}

#[test]
fn harness_emits_startup_barrier_and_skews() {
    let out = run_app(&cfg(4, 1), |_ctx: &mut AppCtx| {});
    assert_eq!(out.trace.nranks(), 4);
    assert_eq!(out.trace.skews_ns.len(), 4);
    for rank in 0..4 {
        let recs = out.trace.rank_records(rank);
        assert!(
            recs.iter()
                .any(|r| matches!(r.func, Func::MpiBarrier { epoch: 0 })),
            "startup barrier missing on rank {rank}"
        );
    }
}

#[test]
fn posix_roundtrip_and_resolution() {
    let out = run_app(&cfg(2, 2), |ctx: &mut AppCtx| {
        let path = format!("/out_{}", ctx.rank());
        let fd = ctx.open(&path, OpenFlags::rdwr_create()).unwrap();
        ctx.write(fd, &[ctx.rank() as u8; 100]).unwrap();
        ctx.write(fd, &[7; 50]).unwrap();
        ctx.lseek(fd, 0, pfssim::Whence::Set).unwrap();
        let data = ctx.read(fd, 100).unwrap().data;
        assert_eq!(data, vec![ctx.rank() as u8; 100]);
        ctx.close(fd).unwrap();
    });
    let r = resolved(&out);
    assert_eq!(r.seek_mismatches, 0);
    // Per rank: two writes (0..100, 100..150) and one read (0..100).
    for rank in 0..2 {
        let acc: Vec<_> = r.accesses.iter().filter(|a| a.rank == rank).collect();
        assert_eq!(acc.len(), 3);
        assert_eq!(
            (acc[0].offset, acc[0].len, acc[0].kind),
            (0, 100, AccessKind::Write)
        );
        assert_eq!(
            (acc[1].offset, acc[1].len, acc[1].kind),
            (100, 50, AccessKind::Write)
        );
        assert_eq!(
            (acc[2].offset, acc[2].len, acc[2].kind),
            (0, 100, AccessKind::Read)
        );
    }
    // Final file contents verified through the PFS.
    let img = out.pfs.published_image("/out_1").unwrap();
    assert_eq!(img.read(0, 100), vec![1u8; 100]);
    assert_eq!(img.read(100, 50), vec![7u8; 50]);
}

#[test]
fn traces_are_deterministic_per_seed() {
    let program = |ctx: &mut AppCtx| {
        let fd = ctx
            .open(&format!("/f{}", ctx.rank()), OpenFlags::rdwr_create())
            .unwrap();
        ctx.write(fd, &[1; 64]).unwrap();
        ctx.barrier();
        ctx.close(fd).unwrap();
    };
    let a = run_app(&cfg(6, 42), program);
    let b = run_app(&cfg(6, 42), program);
    assert_eq!(
        a.trace.encode(),
        b.trace.encode(),
        "same seed ⇒ identical trace bytes"
    );
    let c = run_app(&cfg(6, 43), program);
    assert_ne!(
        a.trace.encode(),
        c.trace.encode(),
        "different seed ⇒ different interleaving"
    );
}

#[test]
fn mpiio_collective_write_uses_only_aggregators() {
    let nranks = 16;
    let chunk = 1000u64;
    let out = run_app(&cfg(nranks, 3), |ctx: &mut AppCtx| {
        let mf = MpiFile::open(ctx, "/shared", true, MpiIoHints { cb_nodes: 4 }).unwrap();
        let off = ctx.rank() as u64 * chunk;
        let data = vec![ctx.rank() as u8; chunk as usize];
        mf.write_at_all(ctx, off, &data).unwrap();
        mf.close(ctx).unwrap();
    });
    // Only the 4 aggregators (ranks 0,4,8,12) issued POSIX writes.
    let mut writers: Vec<u32> = out
        .trace
        .ranks
        .iter()
        .flatten()
        .filter(|r| r.layer == Layer::Posix && matches!(r.func, Func::Pwrite { .. }))
        .map(|r| r.rank)
        .collect();
    writers.sort_unstable();
    writers.dedup();
    assert_eq!(writers, vec![0, 4, 8, 12]);
    // Every rank recorded the MPI-IO-level collective call.
    for rank in 0..nranks {
        assert!(out
            .trace
            .rank_records(rank)
            .iter()
            .any(|r| matches!(r.func, Func::MpiFileWriteAtAll { .. })));
    }
    // And the file contents are exactly the concatenated rank chunks.
    let img = out.pfs.published_image("/shared").unwrap();
    assert_eq!(img.size(), nranks as u64 * chunk);
    for rank in 0..nranks {
        assert_eq!(
            img.read(rank as u64 * chunk, chunk),
            vec![rank as u8; chunk as usize],
            "rank {rank} chunk corrupted by aggregation"
        );
    }
}

#[test]
fn mpiio_collective_read_returns_each_ranks_slice() {
    let nranks = 8;
    let chunk = 512u64;
    let out = run_app(&cfg(nranks, 9), |ctx: &mut AppCtx| {
        let mf = MpiFile::open(ctx, "/in", true, MpiIoHints { cb_nodes: 2 }).unwrap();
        let off = ctx.rank() as u64 * chunk;
        mf.write_at_all(ctx, off, &vec![ctx.rank() as u8 + 1; chunk as usize])
            .unwrap();
        mf.sync(ctx).unwrap();
        let data = mf.read_at_all(ctx, off, chunk).unwrap();
        assert_eq!(data, vec![ctx.rank() as u8 + 1; chunk as usize]);
        mf.close(ctx).unwrap();
    });
    drop(out);
}

#[test]
fn hdf5_no_flush_means_no_metadata_overwrites() {
    // A plain HDF5 writer (no explicit H5Fflush) writes each metadata
    // block exactly once — the reason LAMMPS-HDF5/QMCPACK/Chombo show no
    // conflicts in Table 4.
    let out = run_app(&cfg(1, 5), |ctx: &mut AppCtx| {
        let mut f = H5File::create(ctx, "/dump.h5", H5Opts::serial()).unwrap();
        for i in 0..4 {
            let d = f.create_dataset(ctx, &format!("var{i}"), 1 << 12).unwrap();
            f.write(ctx, &d, 0, &vec![i as u8; 1 << 12]).unwrap();
        }
        f.close(ctx).unwrap();
    });
    let r = resolved(&out);
    // Group writes by (offset, len) and check no byte is written twice.
    let mut writes: Vec<(u64, u64)> = r
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write)
        .map(|a| (a.offset, a.end()))
        .collect();
    writes.sort_unstable();
    for w in writes.windows(2) {
        assert!(w[0].1 <= w[1].0, "metadata overwrite without flush: {w:?}");
    }
}

#[test]
fn hdf5_flush_rotates_superblock_writer() {
    // Shared file, independent metadata, multiple flushes: the superblock
    // (offset 0) must be written by different ranks across flushes — the
    // FLASH WAW-D mechanism.
    let out = run_app(&cfg(8, 7), |ctx: &mut AppCtx| {
        let mut f = H5File::create(ctx, "/ckpt.h5", H5Opts::default()).unwrap();
        for i in 0..4 {
            let d = f.create_dataset(ctx, &format!("d{i}"), 8 * 256).unwrap();
            f.write(ctx, &d, ctx.rank() as u64 * 256, &[i as u8; 256])
                .unwrap();
            f.flush(ctx).unwrap();
        }
        f.close(ctx).unwrap();
    });
    let r = resolved(&out);
    let mut sb_writers: Vec<u32> = r
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write && a.offset == 0)
        .map(|a| a.rank)
        .collect();
    assert!(
        sb_writers.len() >= 4,
        "superblock written once per flush + close"
    );
    sb_writers.dedup();
    assert!(
        sb_writers.len() > 1,
        "superblock writer must rotate: {sb_writers:?}"
    );
    // H5Fflush issues fsync (a commit) on every rank.
    assert!(r.syncs.iter().any(|s| s.kind == recorder::SyncKind::Commit));
}

#[test]
fn hdf5_collective_metadata_pins_rank0() {
    let out = run_app(&cfg(8, 7), |ctx: &mut AppCtx| {
        let mut f = H5File::create(
            ctx,
            "/ckpt.h5",
            H5Opts::default().with_collective_metadata(),
        )
        .unwrap();
        for i in 0..4 {
            let d = f.create_dataset(ctx, &format!("d{i}"), 8 * 256).unwrap();
            f.write(ctx, &d, ctx.rank() as u64 * 256, &[i as u8; 256])
                .unwrap();
            f.flush(ctx).unwrap();
        }
        f.close(ctx).unwrap();
    });
    let r = resolved(&out);
    // All small metadata writes (superblock + symtab, below ALLOC_BASE)
    // come from rank 0.
    for a in r.accesses.iter().filter(|a| a.kind == AccessKind::Write) {
        if a.offset < iolibs::hdf5::ALLOC_BASE {
            assert_eq!(
                a.rank, 0,
                "collective metadata must pin metadata I/O to rank 0"
            );
        }
    }
}

#[test]
fn hdf5_cache_eviction_causes_read_back() {
    // Serial file with many datasets: deep B-tree traversals read evicted
    // metadata blocks back (ENZO's RAW-S mechanism).
    let out = run_app(&cfg(1, 11), |ctx: &mut AppCtx| {
        let mut f = H5File::create(ctx, "/enzo.h5", H5Opts::serial().with_cache_slots(4)).unwrap();
        for i in 0..12 {
            let d = f.create_dataset(ctx, &format!("grid{i}"), 512).unwrap();
            f.write(ctx, &d, 0, &[i as u8; 512]).unwrap();
        }
        f.close(ctx).unwrap();
    });
    let r = resolved(&out);
    let reads: Vec<_> = r
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Read)
        .collect();
    assert!(!reads.is_empty(), "expected metadata read-backs");
    // Each read-back hits bytes previously written by the same rank.
    let writes: Vec<_> = r
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write)
        .collect();
    for rd in &reads {
        assert!(
            writes
                .iter()
                .any(|w| w.t_start < rd.t_start && w.offset < rd.end() && rd.offset < w.end()),
            "read-back at {} did not hit a prior write",
            rd.offset
        );
    }
}

#[test]
fn netcdf_rewrites_numrecs_every_record() {
    let out = run_app(&cfg(1, 13), |ctx: &mut AppCtx| {
        let mut nc = NcFile::create(ctx, "/dump.nc").unwrap();
        for _ in 0..3 {
            nc.put_record(ctx, &[9u8; 128]).unwrap();
        }
        nc.close(ctx).unwrap();
    });
    let r = resolved(&out);
    let numrecs_writes = r
        .accesses
        .iter()
        .filter(|a| {
            a.kind == AccessKind::Write && a.offset == iolibs::netcdf::NC_NUMRECS_OFF && a.len == 4
        })
        .count();
    assert_eq!(
        numrecs_writes, 3,
        "numrecs rewritten once per record (WAW-S source)"
    );
}

#[test]
fn adios_overwrites_status_byte_on_rank0() {
    let out = run_app(&cfg(8, 17), |ctx: &mut AppCtx| {
        let mut w = AdiosWriter::open(ctx, "/lj.bp", 2).unwrap();
        for _ in 0..3 {
            w.write_step(ctx, &vec![ctx.rank() as u8; 256]).unwrap();
        }
        w.close(ctx).unwrap();
    });
    let r = resolved(&out);
    let status_writes: Vec<_> = r
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write && a.len == 1 && a.offset == 0)
        .collect();
    assert_eq!(
        status_writes.len(),
        3,
        "status byte rewritten once per step"
    );
    assert!(status_writes.iter().all(|a| a.rank == 0));
    // Subfiles exist for both aggregators.
    assert!(out.pfs.published_image("/lj.bp/data.0").is_ok());
    assert!(out.pfs.published_image("/lj.bp/data.1").is_ok());
    assert!(out.pfs.published_image("/lj.bp/md.idx").is_ok());
}

#[test]
fn silo_baton_produces_waw_s_within_session_only() {
    let out = run_app(&cfg(8, 19), |ctx: &mut AppCtx| {
        SiloFile::dump(
            ctx,
            "/macsio",
            0,
            SiloOpts {
                n_files: 2,
                block_bytes: 1024,
            },
        )
        .unwrap();
    });
    let r = resolved(&out);
    // Each rank double-writes its TOC slot: find same-rank overlapping
    // write pairs with no close in between — they must exist…
    let writes: Vec<_> = r
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write)
        .collect();
    let mut same_rank_overwrites = 0;
    for (i, w1) in writes.iter().enumerate() {
        for w2 in &writes[i + 1..] {
            if w1.rank == w2.rank
                && w1.file == w2.file
                && w1.offset < w2.end()
                && w2.offset < w1.end()
            {
                same_rank_overwrites += 1;
            }
        }
    }
    assert!(
        same_rank_overwrites >= 8,
        "every rank overwrites its TOC slot"
    );
    // …and the baton order means each rank's session is closed before the
    // next rank opens: check per-file open/close alternation.
    let mut last_close: std::collections::HashMap<recorder::PathId, u64> = Default::default();
    for s in &r.syncs {
        match s.kind {
            recorder::SyncKind::Open => {
                if let Some(&t) = last_close.get(&s.file) {
                    assert!(t <= s.t, "baton open before predecessor close");
                }
            }
            recorder::SyncKind::Close => {
                last_close.insert(s.file, s.t);
            }
            recorder::SyncKind::Commit => {}
        }
    }
}

#[test]
fn origin_attribution_is_preserved() {
    let out = run_app(&cfg(2, 23), |ctx: &mut AppCtx| {
        // App-level POSIX…
        let fd = ctx
            .open(&format!("/app_{}", ctx.rank()), OpenFlags::rdwr_create())
            .unwrap();
        ctx.write(fd, &[1; 8]).unwrap();
        ctx.close(fd).unwrap();
        // …and HDF5-issued POSIX.
        let mut f = H5File::create(ctx, &format!("/h5_{}", ctx.rank()), H5Opts::serial()).unwrap();
        let d = f.create_dataset(ctx, "x", 64).unwrap();
        f.write(ctx, &d, 0, &[2; 64]).unwrap();
        f.close(ctx).unwrap();
    });
    let posix_origins: std::collections::HashSet<Layer> = out
        .trace
        .ranks
        .iter()
        .flatten()
        .filter(|r| r.layer == Layer::Posix)
        .map(|r| r.origin)
        .collect();
    assert!(posix_origins.contains(&Layer::App));
    assert!(posix_origins.contains(&Layer::Hdf5));
}

#[test]
fn semantics_choice_does_not_change_the_trace_shape() {
    // For a race-free program the *set of operations* is identical across
    // engines (timings differ through lock latency): compare record func
    // sequences per rank.
    let program = |ctx: &mut AppCtx| {
        let fd = ctx
            .open(&format!("/f{}", ctx.rank()), OpenFlags::rdwr_create())
            .unwrap();
        ctx.write(fd, &[1; 256]).unwrap();
        ctx.fsync(fd).unwrap();
        ctx.close(fd).unwrap();
        ctx.barrier();
    };
    let strong = run_app(&cfg(4, 31), program);
    let session = run_app(&cfg(4, 31).with_semantics(SemanticsModel::Session), program);
    for rank in 0..4 {
        let f1: Vec<&'static str> = strong
            .trace
            .rank_records(rank)
            .iter()
            .map(|r| r.func.name())
            .collect();
        let f2: Vec<&'static str> = session
            .trace
            .rank_records(rank)
            .iter()
            .map(|r| r.func.name())
            .collect();
        assert_eq!(f1, f2, "rank {rank} op sequence must be engine-independent");
    }
}
