//! Ground-truth validation of the §5.1 offset resolution: the analysis
//! reconstructs offsets from open flags, seeks and byte counts alone; the
//! simulator knows where every operation *actually* landed. For random
//! single-file op sequences (including appends, seeks, truncates and
//! short reads) the two must agree exactly. Cases come from pinned
//! [`simrng`] seeds so the suite runs with no registry dependencies.

use iolibs::{run_app, AppCtx, RunConfig};
use recorder::{adjust, offset, AccessKind};
use simrng::SimRng;

#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u16),
    Pwrite(u32, u16),
    Read(u16),
    Pread(u32, u16),
    SeekSet(u32),
    SeekEnd(i16),
    Truncate(u32),
    Fsync,
}

fn random_op(rng: &mut SimRng) -> Op {
    match rng.range_u32(0, 8) {
        0 => Op::Write(rng.range_u64(1, 2000) as u16),
        1 => Op::Pwrite(rng.range_u64(0, 5000) as u32, rng.range_u64(1, 2000) as u16),
        2 => Op::Read(rng.range_u64(1, 2000) as u16),
        3 => Op::Pread(rng.range_u64(0, 5000) as u32, rng.range_u64(1, 2000) as u16),
        4 => Op::SeekSet(rng.range_u64(0, 5000) as u32),
        5 => Op::SeekEnd(rng.range_i64_inclusive(-500, -1) as i16),
        6 => Op::Truncate(rng.range_u64(0, 5000) as u32),
        _ => Op::Fsync,
    }
}

/// Execute the ops on rank 0 (rank 1 idles at barriers) and record the
/// simulator-reported `(offset, len, is_write)` of every data access.
fn ground_truth(ops: &[Op], append: bool) -> (Vec<(u64, u64, bool)>, recorder::TraceSet) {
    let ops = ops.to_vec();
    let out = run_app(&RunConfig::new(1, 5), move |ctx: &mut AppCtx| {
        let mut flags = pfssim::OpenFlags::rdwr_create();
        flags.append = append;
        let fd = ctx.open("/gt", flags).unwrap();
        let mut truth: Vec<(u64, u64, bool)> = Vec::new();
        for op in &ops {
            match *op {
                Op::Write(l) => {
                    let w = ctx.write(fd, &vec![1u8; l as usize]).unwrap();
                    truth.push((w.offset, w.len, true));
                }
                Op::Pwrite(o, l) => {
                    let w = ctx.pwrite(fd, o as u64, &vec![2u8; l as usize]).unwrap();
                    truth.push((w.offset, w.len, true));
                }
                Op::Read(l) => {
                    let r = ctx.read(fd, l as u64).unwrap();
                    if !r.data.is_empty() {
                        truth.push((r.offset, r.data.len() as u64, false));
                    }
                }
                Op::Pread(o, l) => {
                    let r = ctx.pread(fd, o as u64, l as u64).unwrap();
                    if !r.data.is_empty() {
                        truth.push((r.offset, r.data.len() as u64, false));
                    }
                }
                Op::SeekSet(o) => {
                    ctx.lseek(fd, o as i64, pfssim::Whence::Set).unwrap();
                }
                Op::SeekEnd(d) => {
                    let _ = ctx.lseek(fd, d as i64, pfssim::Whence::End);
                }
                Op::Truncate(l) => ctx.ftruncate(fd, l as u64).unwrap(),
                Op::Fsync => ctx.fsync(fd).unwrap(),
            }
        }
        ctx.close(fd).unwrap();
        // The rank closure cannot return values through run_app's plumbing
        // here, so hand the ground truth out through a shared slot.
        *TRUTH.lock().unwrap() = truth;
    });
    let truth = TRUTH.lock().unwrap().clone();
    (truth, out.trace)
}

static TRUTH: std::sync::Mutex<Vec<(u64, u64, bool)>> = std::sync::Mutex::new(Vec::new());

#[test]
fn resolver_matches_simulator() {
    let mut rng = SimRng::seed_from_u64(0x0FF5E7);
    for _ in 0..48 {
        let ops: Vec<Op> = (0..rng.range_usize(1, 30))
            .map(|_| random_op(&mut rng))
            .collect();
        let append = rng.gen_bool(0.5);
        let (truth, trace) = ground_truth(&ops, append);
        let resolved = offset::resolve(&adjust::apply(&trace));
        assert_eq!(
            resolved.seek_mismatches, 0,
            "pure §5.1 derivation must suffice"
        );
        let derived: Vec<(u64, u64, bool)> = resolved
            .accesses
            .iter()
            .map(|a| (a.offset, a.len, a.kind == AccessKind::Write))
            .collect();
        assert_eq!(derived, truth);
    }
}
