//! Direct tests of the individual I/O-library models (the application
//! suite exercises them end-to-end; these pin down each model's own
//! contract).

use iolibs::{run_app, AppCtx, NcFile, RunConfig, SiloFile, SiloOpts};
use recorder::{adjust, offset, AccessKind, Func, Layer};

#[test]
fn netcdf_file_layout_and_sync() {
    let out = run_app(&RunConfig::new(1, 3), |ctx: &mut AppCtx| {
        let mut nc = NcFile::create(ctx, "/t.nc").unwrap();
        nc.put_record(ctx, &[1u8; 3000]).unwrap();
        nc.put_record(ctx, &[2u8; 3000]).unwrap();
        nc.sync(ctx).unwrap();
        nc.close(ctx).unwrap();
    });
    // Header, then records appended back to back.
    let img = out.pfs.published_image("/t.nc").unwrap();
    assert_eq!(img.size(), iolibs::netcdf::NC_HEADER + 6000);
    assert_eq!(img.read(iolibs::netcdf::NC_HEADER, 1), vec![1]);
    assert_eq!(img.read(iolibs::netcdf::NC_HEADER + 3000, 1), vec![2]);
    // Record data is streamed in ≤2 KiB pieces; numrecs rewritten per record.
    let resolved = offset::resolve(&adjust::apply(&out.trace));
    let data_writes = resolved
        .accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write && a.len > 4)
        .count();
    assert!(data_writes >= 4, "records stream in pieces");
    // nc_sync emitted a commit.
    assert!(resolved
        .syncs
        .iter()
        .any(|s| s.kind == recorder::SyncKind::Commit));
    // Library-level records present.
    assert!(out
        .trace
        .rank_records(0)
        .iter()
        .any(|r| r.layer == Layer::NetCdf && matches!(r.func, Func::LibCall { .. })));
}

#[test]
fn silo_group_assignment_covers_all_ranks() {
    // 10 ranks into 3 files: groups of 4/4/2; every rank writes exactly
    // one block, every file gets a TOC.
    let out = run_app(&RunConfig::new(10, 7), |ctx: &mut AppCtx| {
        SiloFile::dump(
            ctx,
            "/d",
            0,
            SiloOpts {
                n_files: 3,
                block_bytes: 1024,
            },
        )
        .unwrap();
    });
    let files = out.pfs.list_files();
    assert_eq!(files.len(), 3);
    for (idx, f) in files.iter().enumerate() {
        let img = out.pfs.published_image(f).unwrap();
        assert!(img.size() > iolibs::silo::SILO_TOC, "{f} has data");
        // Group sizes: ceil(10/3)=4 → files 0,1 hold 4 blocks, file 2 holds 2.
        let group = if idx < 2 { 4 } else { 2 };
        assert_eq!(
            img.size(),
            iolibs::silo::SILO_TOC + group as u64 * 1024,
            "{f} block count"
        );
    }
}

#[test]
fn silo_writers_hold_the_file_exclusively() {
    // Within a group, open/close intervals never interleave (the PMPIO
    // baton): verified through the sync events.
    let out = run_app(&RunConfig::new(8, 9), |ctx: &mut AppCtx| {
        SiloFile::dump(
            ctx,
            "/d",
            0,
            SiloOpts {
                n_files: 2,
                block_bytes: 512,
            },
        )
        .unwrap();
    });
    let resolved = offset::resolve(&adjust::apply(&out.trace));
    let mut open_depth: std::collections::HashMap<recorder::PathId, i32> = Default::default();
    for s in &resolved.syncs {
        let d = open_depth.entry(s.file).or_insert(0);
        match s.kind {
            recorder::SyncKind::Open => {
                *d += 1;
                assert!(*d <= 1, "two writers held a Silo file simultaneously");
            }
            recorder::SyncKind::Close => *d -= 1,
            recorder::SyncKind::Commit => {}
        }
    }
}

#[test]
fn adios_step_count_reflected_in_index() {
    let out = run_app(&RunConfig::new(4, 11), |ctx: &mut AppCtx| {
        let mut w = iolibs::AdiosWriter::open(ctx, "/o.bp", 2).unwrap();
        for _ in 0..5 {
            w.write_step(ctx, &[9u8; 100]).unwrap();
        }
        w.close(ctx).unwrap();
    });
    let idx = out.pfs.published_image("/o.bp/md.idx").unwrap();
    assert_eq!(
        idx.size(),
        iolibs::adios::IDX_HEADER + 5 * iolibs::adios::IDX_ENTRY,
        "one index entry per step"
    );
    // The status byte carries the last step number.
    assert_eq!(idx.read(iolibs::adios::IDX_STATUS_OFF, 1), vec![4]);
    // Subfiles hold each group's concatenated payloads.
    let d0 = out.pfs.published_image("/o.bp/data.0").unwrap();
    assert_eq!(d0.size(), 5 * 2 * 100, "2 ranks × 100 B × 5 steps");
}

#[test]
fn hdf5_dataset_offsets_are_deterministic_and_disjoint() {
    let out = run_app(&RunConfig::new(1, 13), |ctx: &mut AppCtx| {
        let mut f = iolibs::H5File::create(ctx, "/x.h5", iolibs::H5Opts::serial()).unwrap();
        let d1 = f.create_dataset(ctx, "a", 1000).unwrap();
        let d2 = f.create_dataset(ctx, "b", 1000).unwrap();
        assert!(d1.data_off >= iolibs::hdf5::ALLOC_BASE);
        assert!(
            d2.data_off >= d1.data_off + 1000,
            "allocations must not overlap"
        );
        f.write(ctx, &d1, 0, &[1u8; 1000]).unwrap();
        f.write(ctx, &d2, 0, &[2u8; 1000]).unwrap();
        f.close(ctx).unwrap();
    });
    let img = out.pfs.published_image("/x.h5").unwrap();
    assert_eq!(
        img.read(iolibs::hdf5::ALLOC_BASE + iolibs::hdf5::OBJ_HEADER, 1),
        vec![1]
    );
}

#[test]
fn mpiio_collective_with_partial_participation() {
    // Half the ranks contribute empty hyperslabs; the data still lands
    // exactly where the contributors put it.
    let out = run_app(&RunConfig::new(8, 17), |ctx: &mut AppCtx| {
        let mf =
            iolibs::MpiFile::open(ctx, "/p", true, iolibs::MpiIoHints { cb_nodes: 2 }).unwrap();
        let (off, data) = if ctx.rank() % 2 == 0 {
            (
                ctx.rank() as u64 / 2 * 1000,
                vec![ctx.rank() as u8 + 1; 1000],
            )
        } else {
            (0, Vec::new())
        };
        mf.write_at_all(ctx, off, &data).unwrap();
        mf.close(ctx).unwrap();
    });
    let img = out.pfs.published_image("/p").unwrap();
    assert_eq!(img.size(), 4000);
    for k in 0..4u64 {
        assert_eq!(img.read(k * 1000, 1), vec![(k * 2) as u8 + 1]);
    }
}
