//! Equivalence and determinism of the parallel analysis engine.
//!
//! The contract is strict: for any thread count, the threaded drivers must
//! produce *identical* results to the serial path — same pairs in the same
//! order, same counters — so every artifact rendered downstream is
//! byte-identical regardless of the machine it ran on.

use recorder::{AccessKind, DataAccess, Layer, PathId, ResolvedTrace, SyncEvent, SyncKind};
use semantics_core::conflict::{detect_conflicts, detect_conflicts_threaded, AnalysisModel};
use semantics_core::overlap::{count_overlaps, detect_overlaps, FileGroups};
use semantics_core::parallel::{analyze_files_parallel, parallel_map_indexed};
use simrng::SimRng;

const THREAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

fn random_access(rng: &mut SimRng, n_ranks: u32, n_files: u32) -> DataAccess {
    let t = rng.range_u64(0, 2000);
    DataAccess {
        rank: rng.range_u32(0, n_ranks),
        t_start: t,
        t_end: t + 1,
        file: PathId(rng.range_u32(0, n_files)),
        offset: rng.range_u64(0, 300),
        len: rng.range_u64(1, 60),
        kind: if rng.gen_bool(0.5) {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        origin: Layer::App,
        fd: 3,
    }
}

fn random_trace(rng: &mut SimRng, n_files: u32) -> ResolvedTrace {
    let n = rng.range_usize(0, 120);
    let mut accesses: Vec<DataAccess> = (0..n).map(|_| random_access(rng, 4, n_files)).collect();
    accesses.sort_by_key(|a| (a.t_start, a.rank));
    accesses.dedup_by_key(|a| a.t_start);
    let mut syncs: Vec<SyncEvent> = (0..rng.range_usize(0, 30))
        .map(|_| SyncEvent {
            rank: rng.range_u32(0, 4),
            t: rng.range_u64(0, 2000),
            file: PathId(rng.range_u32(0, n_files)),
            kind: match rng.range_u32(0, 3) {
                0 => SyncKind::Open,
                1 => SyncKind::Close,
                _ => SyncKind::Commit,
            },
        })
        .collect();
    syncs.sort_by_key(|s| (s.t, s.rank));
    ResolvedTrace {
        accesses,
        syncs,
        seek_mismatches: 0,
        short_reads: 0,
    }
}

/// `detect_conflicts_threaded` returns a report *equal* to the serial one
/// (pairs, pair order, and counters) for every thread count, on random
/// multi-file traces under both models.
#[test]
fn threaded_conflicts_equal_serial() {
    let mut rng = SimRng::seed_from_u64(0x9A11E1);
    for _ in 0..64 {
        let trace = random_trace(&mut rng, 6);
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let serial = detect_conflicts(&trace, model);
            for threads in THREAD_COUNTS {
                let par = detect_conflicts_threaded(&trace, model, threads);
                assert_eq!(par, serial, "threads={threads} model={model:?}");
            }
        }
    }
}

/// Re-running the threaded detector at one thread count is deterministic:
/// two runs give identical reports.
#[test]
fn threaded_conflicts_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xDE7);
    for _ in 0..32 {
        let trace = random_trace(&mut rng, 5);
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let a = detect_conflicts_threaded(&trace, model, 4);
            let b = detect_conflicts_threaded(&trace, model, 4);
            assert_eq!(a, b);
        }
    }
}

/// Counting mode agrees with full detection: same pair count and the same
/// deduplicated rank-pair list, without materializing the pairs.
#[test]
fn counting_mode_equals_detection() {
    let mut rng = SimRng::seed_from_u64(0xC0);
    for _ in 0..96 {
        let n = rng.range_usize(0, 150);
        let accesses: Vec<DataAccess> = (0..n).map(|_| random_access(&mut rng, 4, 1)).collect();
        let full = detect_overlaps(&accesses);
        let count = count_overlaps(&accesses);
        assert_eq!(count.pairs, full.pairs.len() as u64);
        assert_eq!(count.rank_pairs, full.rank_pairs);
    }
}

/// `analyze_files_parallel` visits every file group exactly once, in
/// `PathId` order, with the group's accesses in input order — for any
/// thread count.
#[test]
fn file_fanout_is_ordered_and_complete() {
    let mut rng = SimRng::seed_from_u64(0xF11E);
    for _ in 0..32 {
        let trace = random_trace(&mut rng, 8);
        let groups = FileGroups::new(&trace.accesses);
        let serial: Vec<(PathId, usize)> = groups
            .iter()
            .map(|(file, idxs)| (file, idxs.len()))
            .collect();
        for threads in THREAD_COUNTS {
            let par = analyze_files_parallel(&groups, threads, |_, idxs| idxs.len());
            assert_eq!(par, serial, "threads={threads}");
        }
        // Groups cover the whole trace and are sorted by file.
        let covered: usize = serial.iter().map(|(_, n)| n).sum();
        assert_eq!(covered, trace.accesses.len());
        assert!(serial.windows(2).all(|w| w[0].0 < w[1].0));
    }
}

/// The generic indexed map preserves order and runs every index once even
/// when the closure's cost is wildly uneven across items.
#[test]
fn indexed_map_uneven_load() {
    for threads in THREAD_COUNTS {
        let out = parallel_map_indexed(64, threads, |i| {
            // Uneven spin so claim order scrambles under real threads.
            let mut acc = i as u64;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(k, *i, "threads={threads}");
        }
    }
}
