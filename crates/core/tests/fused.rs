//! Equivalence of the fused session+commit conflict sweep.
//!
//! The contract: for any trace and any thread count,
//! [`detect_conflicts_fused_threaded`] produces a session report and a
//! commit report *equal* (pairs, pair order, counters) to two separate
//! [`detect_conflicts`] runs — and to the scan-variant extension — so the
//! fused pipeline can replace the separate passes without changing a byte
//! of any artifact.

use recorder::{AccessKind, DataAccess, Layer, PathId, ResolvedTrace, SyncEvent, SyncKind};
use semantics_core::conflict::{
    detect_conflicts, detect_conflicts_opt, AnalysisModel, ConflictOptions,
};
use semantics_core::{detect_conflicts_fused_threaded, AnalysisContext};
use simrng::SimRng;

const THREAD_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

fn random_access(rng: &mut SimRng, n_ranks: u32, n_files: u32) -> DataAccess {
    let t = rng.range_u64(0, 2000);
    DataAccess {
        rank: rng.range_u32(0, n_ranks),
        t_start: t,
        t_end: t + 1,
        file: PathId(rng.range_u32(0, n_files)),
        offset: rng.range_u64(0, 300),
        len: rng.range_u64(1, 60),
        kind: if rng.gen_bool(0.5) {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        origin: Layer::App,
        fd: 3,
    }
}

fn random_trace(rng: &mut SimRng, n_files: u32) -> ResolvedTrace {
    let n = rng.range_usize(0, 120);
    let mut accesses: Vec<DataAccess> = (0..n).map(|_| random_access(rng, 4, n_files)).collect();
    accesses.sort_by_key(|a| (a.t_start, a.rank));
    accesses.dedup_by_key(|a| a.t_start);
    let mut syncs: Vec<SyncEvent> = (0..rng.range_usize(0, 30))
        .map(|_| SyncEvent {
            rank: rng.range_u32(0, 4),
            t: rng.range_u64(0, 2000),
            file: PathId(rng.range_u32(0, n_files)),
            kind: match rng.range_u32(0, 3) {
                0 => SyncKind::Open,
                1 => SyncKind::Close,
                _ => SyncKind::Commit,
            },
        })
        .collect();
    syncs.sort_by_key(|s| (s.t, s.rank));
    ResolvedTrace {
        accesses,
        syncs,
        seek_mismatches: 0,
        short_reads: 0,
    }
}

/// Fused reports equal the two separate detections for every thread count
/// on random multi-file traces.
#[test]
fn fused_equals_separate_on_random_traces() {
    let mut rng = SimRng::seed_from_u64(0xF05E_D);
    for _ in 0..64 {
        let trace = random_trace(&mut rng, 6);
        let session = detect_conflicts(&trace, AnalysisModel::Session);
        let commit = detect_conflicts(&trace, AnalysisModel::Commit);
        let ctx = AnalysisContext::new(&trace);
        for threads in THREAD_COUNTS {
            let fused = detect_conflicts_fused_threaded(&ctx, threads);
            assert_eq!(fused.session, session, "threads={threads}");
            assert_eq!(fused.commit, commit, "threads={threads}");
        }
    }
}

/// The fused sweep also agrees with the scan-variant extension
/// (`binary_search: false`) — both sides of the paper's §5.2
/// implementation cross-check.
#[test]
fn fused_equals_scan_variant() {
    let mut rng = SimRng::seed_from_u64(0x5CA_4);
    let scan = ConflictOptions {
        binary_search: false,
        ..ConflictOptions::default()
    };
    for _ in 0..48 {
        let trace = random_trace(&mut rng, 5);
        let ctx = AnalysisContext::new(&trace);
        let fused = detect_conflicts_fused_threaded(&ctx, 1);
        assert_eq!(
            fused.session,
            detect_conflicts_opt(&trace, AnalysisModel::Session, scan)
        );
        assert_eq!(
            fused.commit,
            detect_conflicts_opt(&trace, AnalysisModel::Commit, scan)
        );
    }
}

/// One context serves repeated fused queries: re-running against the same
/// context is deterministic and identical to a fresh context's answer.
#[test]
fn context_reuse_is_deterministic() {
    let mut rng = SimRng::seed_from_u64(0xCAFE_12);
    for _ in 0..16 {
        let trace = random_trace(&mut rng, 4);
        let ctx = AnalysisContext::new(&trace);
        let first = ctx.fused_conflicts();
        let again = ctx.fused_conflicts();
        assert_eq!(first, again);
        let fresh = AnalysisContext::new(&trace);
        assert_eq!(fresh.fused_conflicts(), first);
    }
}
