//! Property tests for the analysis algorithms.

use proptest::prelude::*;
use recorder::{AccessKind, DataAccess, Layer, PathId, ResolvedTrace, SyncEvent, SyncKind};
use semantics_core::conflict::{
    detect_conflicts, detect_conflicts_opt, AnalysisModel, ConflictOptions,
};
use semantics_core::overlap::{canonical_pairs, detect_overlaps, detect_overlaps_bruteforce};

fn access_strategy(n_ranks: u32) -> impl Strategy<Value = DataAccess> {
    (0..n_ranks, 0u64..1000, 0u64..200, 1u64..50, any::<bool>()).prop_map(
        |(rank, t, offset, len, write)| DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: PathId(0),
            offset,
            len,
            kind: if write { AccessKind::Write } else { AccessKind::Read },
            origin: Layer::App,
            fd: 3,
        },
    )
}

fn sync_strategy(n_ranks: u32) -> impl Strategy<Value = SyncEvent> {
    (0..n_ranks, 0u64..1000, 0u8..3).prop_map(|(rank, t, k)| SyncEvent {
        rank,
        t,
        file: PathId(0),
        kind: match k {
            0 => SyncKind::Open,
            1 => SyncKind::Close,
            _ => SyncKind::Commit,
        },
    })
}

prop_compose! {
    fn trace_strategy()(
        mut accesses in prop::collection::vec(access_strategy(4), 0..60),
        mut syncs in prop::collection::vec(sync_strategy(4), 0..20),
    ) -> ResolvedTrace {
        accesses.sort_by_key(|a| (a.t_start, a.rank));
        // Unique timestamps: the §5.2 premise is that synchronized
        // conflicting operations are strictly ordered in time (they sit
        // tens of milliseconds apart in real traces), so simultaneous
        // accesses are out of the detector's domain.
        accesses.dedup_by_key(|a| a.t_start);
        syncs.sort_by_key(|s| (s.t, s.rank));
        ResolvedTrace { accesses, syncs, seek_mismatches: 0, short_reads: 0 }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1 equals the O(n²) reference.
    #[test]
    fn overlap_sweep_matches_bruteforce(accesses in prop::collection::vec(access_strategy(4), 0..80)) {
        let fast = detect_overlaps(&accesses);
        let slow = detect_overlaps_bruteforce(&accesses);
        prop_assert_eq!(canonical_pairs(&fast), canonical_pairs(&slow));
        prop_assert_eq!(fast.rank_pairs, slow.rank_pairs);
    }

    /// Overlap detection is insensitive to input permutation.
    #[test]
    fn overlap_permutation_invariant(
        accesses in prop::collection::vec(access_strategy(4), 0..40),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let base = detect_overlaps(&accesses);
        let base_count = base.pairs.len();
        let mut shuffled = accesses.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let shuf = detect_overlaps(&shuffled);
        prop_assert_eq!(shuf.pairs.len(), base_count);
        prop_assert_eq!(shuf.rank_pairs, base.rank_pairs);
    }

    /// The scan and binary-search extensions yield identical conflicts.
    #[test]
    fn conflict_variants_agree(trace in trace_strategy()) {
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let a = detect_conflicts_opt(&trace, model,
                ConflictOptions { binary_search: true, ..Default::default() });
            let b = detect_conflicts_opt(&trace, model,
                ConflictOptions { binary_search: false, ..Default::default() });
            prop_assert_eq!(a.total(), b.total());
            prop_assert_eq!(a.table4_marks(), b.table4_marks());
        }
    }

    /// Commit conflicts are a subset of session conflicts when sessions
    /// treat commits as closes (the paper's combined-tc formalization):
    /// every commit-visible conflict is also session-visible.
    #[test]
    fn commit_subset_of_session_combined(trace in trace_strategy()) {
        let commit = detect_conflicts(&trace, AnalysisModel::Commit);
        let session = detect_conflicts_opt(
            &trace,
            AnalysisModel::Session,
            ConflictOptions { binary_search: true, session_uses_commit_as_close: true },
        );
        // Pair sets: every commit conflict must appear among session ones.
        let key = |p: &semantics_core::ConflictPair| {
            (p.first.rank, p.first.t_start, p.second.rank, p.second.t_start, p.first.offset)
        };
        let skeys: std::collections::HashSet<_> = session.pairs.iter().map(key).collect();
        for p in &commit.pairs {
            prop_assert!(
                skeys.contains(&key(p)),
                "commit conflict missing under session: {:?}", p
            );
        }
    }

    /// Conflicts are invariant under a uniform time shift.
    #[test]
    fn conflicts_invariant_under_time_shift(trace in trace_strategy(), shift in 0u64..10_000) {
        let shifted = ResolvedTrace {
            accesses: trace.accesses.iter().map(|a| DataAccess {
                t_start: a.t_start + shift,
                t_end: a.t_end + shift,
                ..*a
            }).collect(),
            syncs: trace.syncs.iter().map(|s| SyncEvent { t: s.t + shift, ..*s }).collect(),
            seek_mismatches: 0,
            short_reads: 0,
        };
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let a = detect_conflicts(&trace, model);
            let b = detect_conflicts(&shifted, model);
            prop_assert_eq!(a.total(), b.total());
            prop_assert_eq!(a.table4_marks(), b.table4_marks());
        }
    }

    /// Removing all sync events can only add conflicts (sync events only
    /// ever clear conditions 3 and 4).
    #[test]
    fn syncs_only_reduce_conflicts(trace in trace_strategy()) {
        let no_sync = ResolvedTrace {
            accesses: trace.accesses.clone(),
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let with = detect_conflicts(&trace, model);
            let without = detect_conflicts(&no_sync, model);
            prop_assert!(without.total() >= with.total(), "{:?}", model);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The merge-based variant (the paper's "sorting can be replaced by
    /// merging" note) agrees with the sort-based Algorithm 1 on any
    /// per-rank offset-sorted input.
    #[test]
    fn overlap_merge_matches_sort(
        mut accesses in prop::collection::vec(access_strategy(4), 0..60),
    ) {
        // Build per-rank offset-sorted lists (the precondition).
        let mut per_rank: Vec<Vec<DataAccess>> = vec![Vec::new(); 4];
        for a in accesses.drain(..) {
            per_rank[a.rank as usize].push(a);
        }
        for list in &mut per_rank {
            list.sort_by_key(|a| (a.offset, a.end()));
        }
        let flat: Vec<DataAccess> = per_rank.iter().flatten().copied().collect();
        let merged = semantics_core::overlap::detect_overlaps_merge(&per_rank)
            .expect("input is sorted");
        let sorted = detect_overlaps(&flat);
        prop_assert_eq!(canonical_pairs(&merged), canonical_pairs(&sorted));
        prop_assert_eq!(merged.rank_pairs, sorted.rank_pairs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The advisor's proposed commit insertions always eliminate every
    /// commit-semantics conflict, on arbitrary traces.
    #[test]
    fn advisor_is_always_sufficient(trace in trace_strategy()) {
        let advice = semantics_core::advisor::advise_commits(&trace);
        prop_assert!(
            advice.is_sufficient(),
            "{} conflicts survive {} insertions",
            advice.after.total(),
            advice.insertions.len()
        );
        // And it never proposes more insertions than there were
        // conflicting first-writes.
        prop_assert!(advice.insertions.len() as u64 <= advice.before.total());
    }
}
