//! Property-style tests for the analysis algorithms.
//!
//! Offline build: instead of `proptest`, each property runs over a few
//! hundred pseudo-random cases generated from pinned [`simrng`] seeds, so
//! failures reproduce exactly by rerunning the test.

use recorder::{AccessKind, DataAccess, Layer, PathId, ResolvedTrace, SyncEvent, SyncKind};
use semantics_core::conflict::{
    detect_conflicts, detect_conflicts_opt, AnalysisModel, ConflictOptions,
};
use semantics_core::overlap::{canonical_pairs, detect_overlaps, detect_overlaps_bruteforce};
use simrng::SimRng;

fn random_access(rng: &mut SimRng, n_ranks: u32) -> DataAccess {
    let t = rng.range_u64(0, 1000);
    DataAccess {
        rank: rng.range_u32(0, n_ranks),
        t_start: t,
        t_end: t + 1,
        file: PathId(0),
        offset: rng.range_u64(0, 200),
        len: rng.range_u64(1, 50),
        kind: if rng.gen_bool(0.5) {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        origin: Layer::App,
        fd: 3,
    }
}

fn random_sync(rng: &mut SimRng, n_ranks: u32) -> SyncEvent {
    SyncEvent {
        rank: rng.range_u32(0, n_ranks),
        t: rng.range_u64(0, 1000),
        file: PathId(0),
        kind: match rng.range_u32(0, 3) {
            0 => SyncKind::Open,
            1 => SyncKind::Close,
            _ => SyncKind::Commit,
        },
    }
}

fn random_accesses(rng: &mut SimRng, max: usize, n_ranks: u32) -> Vec<DataAccess> {
    let n = rng.range_usize(0, max + 1);
    (0..n).map(|_| random_access(rng, n_ranks)).collect()
}

fn random_trace(rng: &mut SimRng) -> ResolvedTrace {
    let mut accesses = random_accesses(rng, 60, 4);
    let mut syncs: Vec<SyncEvent> = (0..rng.range_usize(0, 20))
        .map(|_| random_sync(rng, 4))
        .collect();
    accesses.sort_by_key(|a| (a.t_start, a.rank));
    // Unique timestamps: the §5.2 premise is that synchronized conflicting
    // operations are strictly ordered in time (they sit tens of
    // milliseconds apart in real traces), so simultaneous accesses are out
    // of the detector's domain.
    accesses.dedup_by_key(|a| a.t_start);
    syncs.sort_by_key(|s| (s.t, s.rank));
    ResolvedTrace {
        accesses,
        syncs,
        seek_mismatches: 0,
        short_reads: 0,
    }
}

/// Algorithm 1 equals the O(n²) reference.
#[test]
fn overlap_sweep_matches_bruteforce() {
    let mut rng = SimRng::seed_from_u64(0xA1);
    for _ in 0..128 {
        let accesses = random_accesses(&mut rng, 80, 4);
        let fast = detect_overlaps(&accesses);
        let slow = detect_overlaps_bruteforce(&accesses);
        assert_eq!(canonical_pairs(&fast), canonical_pairs(&slow));
        assert_eq!(fast.rank_pairs, slow.rank_pairs);
    }
}

/// Overlap detection is insensitive to input permutation.
#[test]
fn overlap_permutation_invariant() {
    let mut rng = SimRng::seed_from_u64(0xA2);
    for _ in 0..128 {
        let accesses = random_accesses(&mut rng, 40, 4);
        let base = detect_overlaps(&accesses);
        let mut shuffled = accesses.clone();
        rng.shuffle(&mut shuffled);
        let shuf = detect_overlaps(&shuffled);
        assert_eq!(shuf.pairs.len(), base.pairs.len());
        assert_eq!(shuf.rank_pairs, base.rank_pairs);
    }
}

/// The scan and binary-search extensions yield identical conflicts.
#[test]
fn conflict_variants_agree() {
    let mut rng = SimRng::seed_from_u64(0xA3);
    for _ in 0..128 {
        let trace = random_trace(&mut rng);
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let a = detect_conflicts_opt(
                &trace,
                model,
                ConflictOptions {
                    binary_search: true,
                    ..Default::default()
                },
            );
            let b = detect_conflicts_opt(
                &trace,
                model,
                ConflictOptions {
                    binary_search: false,
                    ..Default::default()
                },
            );
            assert_eq!(a.total(), b.total());
            assert_eq!(a.table4_marks(), b.table4_marks());
        }
    }
}

/// Commit conflicts are a subset of session conflicts when sessions treat
/// commits as closes (the paper's combined-tc formalization): every
/// commit-visible conflict is also session-visible.
#[test]
fn commit_subset_of_session_combined() {
    let mut rng = SimRng::seed_from_u64(0xA4);
    for _ in 0..128 {
        let trace = random_trace(&mut rng);
        let commit = detect_conflicts(&trace, AnalysisModel::Commit);
        let session = detect_conflicts_opt(
            &trace,
            AnalysisModel::Session,
            ConflictOptions {
                binary_search: true,
                session_uses_commit_as_close: true,
            },
        );
        // Pair sets: every commit conflict must appear among session ones.
        let key = |p: &semantics_core::ConflictPair| {
            (
                p.first.rank,
                p.first.t_start,
                p.second.rank,
                p.second.t_start,
                p.first.offset,
            )
        };
        let skeys: std::collections::HashSet<_> = session.pairs.iter().map(key).collect();
        for p in &commit.pairs {
            assert!(
                skeys.contains(&key(p)),
                "commit conflict missing under session: {p:?}"
            );
        }
    }
}

/// Conflicts are invariant under a uniform time shift.
#[test]
fn conflicts_invariant_under_time_shift() {
    let mut rng = SimRng::seed_from_u64(0xA5);
    for _ in 0..128 {
        let trace = random_trace(&mut rng);
        let shift = rng.range_u64(0, 10_000);
        let shifted = ResolvedTrace {
            accesses: trace
                .accesses
                .iter()
                .map(|a| DataAccess {
                    t_start: a.t_start + shift,
                    t_end: a.t_end + shift,
                    ..*a
                })
                .collect(),
            syncs: trace
                .syncs
                .iter()
                .map(|s| SyncEvent {
                    t: s.t + shift,
                    ..*s
                })
                .collect(),
            seek_mismatches: 0,
            short_reads: 0,
        };
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let a = detect_conflicts(&trace, model);
            let b = detect_conflicts(&shifted, model);
            assert_eq!(a.total(), b.total());
            assert_eq!(a.table4_marks(), b.table4_marks());
        }
    }
}

/// Removing all sync events can only add conflicts (sync events only ever
/// clear conditions 3 and 4).
#[test]
fn syncs_only_reduce_conflicts() {
    let mut rng = SimRng::seed_from_u64(0xA6);
    for _ in 0..128 {
        let trace = random_trace(&mut rng);
        let no_sync = ResolvedTrace {
            accesses: trace.accesses.clone(),
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let with = detect_conflicts(&trace, model);
            let without = detect_conflicts(&no_sync, model);
            assert!(without.total() >= with.total(), "{model:?}");
        }
    }
}

/// The merge-based variant (the paper's "sorting can be replaced by
/// merging" note) agrees with the sort-based Algorithm 1 on any per-rank
/// offset-sorted input.
#[test]
fn overlap_merge_matches_sort() {
    let mut rng = SimRng::seed_from_u64(0xA7);
    for _ in 0..64 {
        let accesses = random_accesses(&mut rng, 60, 4);
        // Build per-rank offset-sorted lists (the precondition).
        let mut per_rank: Vec<Vec<DataAccess>> = vec![Vec::new(); 4];
        for a in accesses {
            per_rank[a.rank as usize].push(a);
        }
        for list in &mut per_rank {
            list.sort_by_key(|a| (a.offset, a.end()));
        }
        let flat: Vec<DataAccess> = per_rank.iter().flatten().copied().collect();
        let merged =
            semantics_core::overlap::detect_overlaps_merge(&per_rank).expect("input is sorted");
        let sorted = detect_overlaps(&flat);
        assert_eq!(canonical_pairs(&merged), canonical_pairs(&sorted));
        assert_eq!(merged.rank_pairs, sorted.rank_pairs);
    }
}

/// The advisor's proposed commit insertions always eliminate every
/// commit-semantics conflict, on arbitrary traces.
#[test]
fn advisor_is_always_sufficient() {
    let mut rng = SimRng::seed_from_u64(0xA8);
    for _ in 0..96 {
        let trace = random_trace(&mut rng);
        let advice = semantics_core::advisor::advise_commits(&trace);
        assert!(
            advice.is_sufficient(),
            "{} conflicts survive {} insertions",
            advice.after.total(),
            advice.insertions.len()
        );
        // And it never proposes more insertions than there were
        // conflicting first-writes.
        assert!(advice.insertions.len() as u64 <= advice.before.total());
    }
}
