//! The per-run detailed report.
//!
//! The paper's published artifact includes "a detailed report for each
//! application run, including information such as I/O sizes, function
//! counters, conflicts detected for each file" (§7). This module builds
//! that report from a trace: global statistics, then a per-file breakdown
//! of accesses, patterns, and conflicts under both relaxed models.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use recorder::stats::TraceStats;
use recorder::{offset, AccessKind, PathId, ResolvedTrace, TraceSet};

use crate::conflict::{detect_conflicts, AnalysisModel, ConflictKind, ConflictScope};
use crate::patterns::lowlevel::{classify_stream, PatternStats};
use crate::verdict::{required_model, Verdict};

/// Per-file digest of accesses and conflicts.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    pub path: String,
    pub readers: Vec<u32>,
    pub writers: Vec<u32>,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Local (per-rank stream) pattern statistics for this file.
    pub local: PatternStats,
    /// Conflict pair counts under session semantics:
    /// (WAW-S, WAW-D, RAW-S, RAW-D).
    pub session_conflicts: (u64, u64, u64, u64),
    /// Same under commit semantics.
    pub commit_conflicts: (u64, u64, u64, u64),
}

/// The full per-run report.
#[derive(Debug, Clone)]
pub struct AppRunReport {
    pub stats: TraceStats,
    pub files: Vec<FileReport>,
    pub verdict: Verdict,
    pub seek_mismatches: u64,
}

/// Build the detailed report for one (adjusted) trace.
pub fn build(trace: &TraceSet) -> AppRunReport {
    let resolved = offset::resolve(trace);
    build_from_resolved(trace, &resolved)
}

/// Build when the resolution already exists.
pub fn build_from_resolved(trace: &TraceSet, resolved: &ResolvedTrace) -> AppRunReport {
    let stats = TraceStats::from_trace(trace);
    let session = detect_conflicts(resolved, AnalysisModel::Session);
    let commit = detect_conflicts(resolved, AnalysisModel::Commit);
    let verdict = required_model(&session, &commit);

    let mut files: BTreeMap<PathId, FileReport> = BTreeMap::new();
    let mut streams: BTreeMap<(PathId, u32), Vec<(u64, u64)>> = BTreeMap::new();
    for a in &resolved.accesses {
        let f = files.entry(a.file).or_insert_with(|| FileReport {
            path: trace.path(a.file).to_string(),
            ..Default::default()
        });
        match a.kind {
            AccessKind::Read => {
                f.bytes_read += a.len;
                if !f.readers.contains(&a.rank) {
                    f.readers.push(a.rank);
                }
            }
            AccessKind::Write => {
                f.bytes_written += a.len;
                if !f.writers.contains(&a.rank) {
                    f.writers.push(a.rank);
                }
            }
        }
        streams
            .entry((a.file, a.rank))
            .or_default()
            .push((a.offset, a.len));
    }
    for ((file, _), stream) in streams {
        if let Some(f) = files.get_mut(&file) {
            f.local.merge(&classify_stream(stream));
        }
    }
    for (report, model) in [(&session, 0usize), (&commit, 1usize)] {
        for p in &report.pairs {
            let Some(f) = files.get_mut(&p.file) else {
                continue;
            };
            let slot = match model {
                0 => &mut f.session_conflicts,
                _ => &mut f.commit_conflicts,
            };
            match (p.kind, p.scope) {
                (ConflictKind::Waw, ConflictScope::Same) => slot.0 += 1,
                (ConflictKind::Waw, ConflictScope::Distinct) => slot.1 += 1,
                (ConflictKind::Raw, ConflictScope::Same) => slot.2 += 1,
                (ConflictKind::Raw, ConflictScope::Distinct) => slot.3 += 1,
            }
        }
    }
    let mut files: Vec<FileReport> = files.into_values().collect();
    files.iter_mut().for_each(|f| {
        f.readers.sort_unstable();
        f.writers.sort_unstable();
    });
    files.sort_by(|a, b| a.path.cmp(&b.path));
    AppRunReport {
        stats,
        files,
        verdict,
        seek_mismatches: resolved.seek_mismatches,
    }
}

impl AppRunReport {
    /// Render as the artifact-style text report.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== run report: {title} ===");
        let _ = writeln!(
            out,
            "records: {} | files: {} | bytes written: {} | bytes read: {}",
            self.stats.total_records(),
            self.files.len(),
            self.stats.bytes_written,
            self.stats.bytes_read,
        );
        let _ = writeln!(
            out,
            "small writes (<4KiB): {:.1}% | seek mismatches: {}",
            100.0 * self.stats.small_write_fraction(4096),
            self.seek_mismatches
        );
        let _ = writeln!(out, "function counters:");
        for (name, n) in &self.stats.function_counters {
            let _ = writeln!(out, "  {name:<22} {n}");
        }
        let _ = writeln!(out, "per-file breakdown:");
        for f in &self.files {
            let _ = writeln!(
                out,
                "  {:<40} writers:{:<3} readers:{:<3} W:{:<9} R:{:<9}",
                f.path,
                f.writers.len(),
                f.readers.len(),
                f.bytes_written,
                f.bytes_read,
            );
            let (ws, wd, rs, rd) = f.session_conflicts;
            if ws + wd + rs + rd > 0 {
                let (cws, cwd, crs, crd) = f.commit_conflicts;
                let _ = writeln!(
                    out,
                    "    conflicts session WAW-S:{ws} WAW-D:{wd} RAW-S:{rs} RAW-D:{rd} | commit WAW-S:{cws} WAW-D:{cwd} RAW-S:{crs} RAW-D:{crd}"
                );
            }
        }
        let _ = writeln!(
            out,
            "verdict: weakest sufficient model = {} (strict: {}, same-process conflicts: {})",
            self.verdict.required.name(),
            self.verdict.required_strict.name(),
            self.verdict.same_process_conflicts,
        );
        out
    }

    /// Files that have any conflict under session semantics.
    pub fn conflicting_files(&self) -> Vec<&FileReport> {
        self.files
            .iter()
            .filter(|f| {
                let (a, b, c, d) = f.session_conflicts;
                a + b + c + d > 0
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{Func, Layer, Record, SeekWhence};

    const F: PathId = PathId(0);

    fn posix(rank: u32, t: u64, func: Func) -> Record {
        Record {
            t_start: t,
            t_end: t + 1,
            rank,
            layer: Layer::Posix,
            origin: Layer::App,
            func,
        }
    }

    fn trace() -> TraceSet {
        let flags = 0b111; // read|write|create
        TraceSet {
            paths: vec!["/x".into()],
            ranks: vec![vec![
                posix(
                    0,
                    0,
                    Func::Open {
                        path: F,
                        flags,
                        fd: 3,
                    },
                ),
                posix(0, 1, Func::Write { fd: 3, count: 100 }),
                posix(
                    0,
                    2,
                    Func::Lseek {
                        fd: 3,
                        offset: 0,
                        whence: SeekWhence::Set,
                        ret: 0,
                    },
                ),
                posix(0, 3, Func::Write { fd: 3, count: 100 }), // WAW-S
                posix(
                    0,
                    4,
                    Func::Read {
                        fd: 3,
                        count: 50,
                        ret: 50,
                    },
                ), // cursor at 100
                posix(0, 5, Func::Close { fd: 3 }),
            ]],
            skews_ns: vec![0],
        }
    }

    #[test]
    fn per_file_conflicts_and_counters() {
        let r = build(&trace());
        assert_eq!(r.files.len(), 1);
        let f = &r.files[0];
        assert_eq!(f.path, "/x");
        assert_eq!(f.writers, vec![0]);
        assert_eq!(f.readers, vec![0]);
        assert_eq!(f.bytes_written, 200);
        assert_eq!(f.bytes_read, 50);
        let (ws, wd, rs, rd) = f.session_conflicts;
        assert_eq!((ws, wd, rs, rd), (1, 0, 0, 0));
        assert_eq!(r.stats.calls("write"), 2);
        assert_eq!(r.conflicting_files().len(), 1);
        assert!(r.verdict.same_process_conflicts);
        let text = r.render("unit");
        assert!(text.contains("/x"));
        assert!(text.contains("WAW-S:1"));
    }
}
