//! # semantics-core — the paper's analysis algorithms
//!
//! Everything in §3–§5 of *File System Semantics Requirements of HPC
//! Applications* (HPDC '21) lives here:
//!
//! * [`model`] — the consistency-semantics categorization of §3
//!   (strong / commit / session / eventual) and the PFS registry of
//!   Table 1.
//! * [`overlap`] — Algorithm 1: detecting overlapping accesses by a sorted
//!   sweep over `(t, r, os, oe, type)` tuples.
//! * [`context`] — the shared [`AnalysisContext`]: per-file grouping,
//!   sync tables, the §5.2 extension, and every sort order the analyses
//!   share, built once per resolved trace and reused by all of them
//!   (including the fused session+commit conflict sweep).
//! * [`conflict`] — §5.2: which overlaps are potential conflicts
//!   (RAW-[S|D] / WAW-[S|D]) under commit and session semantics, using the
//!   per-record `to` (last preceding open) / `tc` (first succeeding
//!   close-or-commit) extension, in both the scan and binary-search
//!   variants the paper describes.
//! * [`patterns`] — §4/§6.2: local and global consecutive / monotonic /
//!   random classification (Figure 1) and the high-level X-Y pattern
//!   classification of Table 3.
//! * [`metadata`] — §6.4: the metadata-operation census of Figure 3.
//! * [`hb`] — the §5.2 validation: rebuilding the happens-before order
//!   from matched sends/receives and barriers and checking that
//!   timestamp-ordered conflicting operations are indeed synchronized.
//! * [`verdict`] — the headline question: the weakest consistency model
//!   under which an application runs correctly.
//!
//! Extensions beyond the paper:
//!
//! * [`apprun`] — the per-run artifact report (§7: function counters, I/O
//!   sizes, conflicts per file).
//! * [`meta_conflict`] — metadata-conflict detection, the paper's stated
//!   future work: cross-process namespace dependencies that
//!   relaxed-metadata PFSs can break.
//! * [`advisor`] — §4.1's practical payoff: propose (and verify) the
//!   `fsync` insertions that make a trace conflict-free under commit
//!   semantics.

pub mod advisor;
pub mod apprun;
pub mod cachekey;
pub mod conflict;
pub mod context;
pub mod hb;
pub mod incremental;
pub mod json;
pub mod meta_conflict;
pub mod metadata;
pub mod model;
pub mod overlap;
pub mod parallel;
pub mod patterns;
pub mod verdict;

pub use cachekey::{CacheKey, CacheKeyBuilder};
pub use conflict::{
    detect_conflicts_fused, detect_conflicts_fused_threaded, detect_conflicts_threaded,
    AnalysisModel, ConflictKind, ConflictPair, ConflictReport, ConflictScope, FusedReports,
};
pub use context::{AnalysisContext, SweepColumns};
pub use incremental::{IncrementalOutput, StreamingAnalyzer};
pub use model::{ConsistencyModel, PfsEntry, PfsRegistry};
pub use overlap::{
    count_overlaps, detect_overlaps, detect_overlaps_bruteforce, detect_overlaps_merge, FileGroups,
    OverlapCount, OverlapResult,
};
pub use parallel::{analyze_files_parallel, parallel_map_indexed};
pub use verdict::{required_model, Completeness, Verdict};
