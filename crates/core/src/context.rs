//! The shared [`AnalysisContext`]: every per-trace index the analyses
//! need, built **once** per resolved trace.
//!
//! The pipeline used to pay for the same trace six times — both conflict
//! detections, the two low-level pattern passes, the high-level
//! classifier, and the metadata census each re-derived their own per-file
//! grouping and sort order. The context fuses that bookkeeping:
//!
//! * [`FileGroups`] — the zero-copy per-file grouping (Algorithm 1 runs
//!   per file);
//! * [`SyncTables`] + the §5.2 `to`/`tc` extension — the per-process
//!   open/close/commit windows both conflict models consult;
//! * a per-file **offset-sorted** index order — the sweep order shared by
//!   overlap enumeration and both conflict detections;
//! * per-`(rank, file)` and per-file **time-sorted** orders — the streams
//!   of Figure 1's local/global classification (built lazily);
//! * a struct-of-arrays [`SweepColumns`] view of the hot sweep fields for
//!   cache-friendly scanning;
//! * a lazily-built [`HbIndex`] over the adjusted trace for §5.2's
//!   happens-before validation.
//!
//! Every index is derived with the *same* stable sort keys the standalone
//! entry points use, so routing an analysis through the context changes
//! its cost, never its output — the byte-identity tests in
//! `crates/report` hold the artifacts to that.

use std::sync::OnceLock;

use recorder::{DataAccess, PathId, ResolvedTrace, TraceSet};

use crate::conflict::{
    detect_conflicts_fused, detect_conflicts_fused_threaded, detect_conflicts_in, AnalysisModel,
    ConflictOptions, ConflictReport, ExtendedAccess, FusedReports, SyncTables,
};
use crate::hb::{validate_conflicts_with, HbIndex, HbValidation};
use crate::metadata::MetadataCensus;
use crate::overlap::{count_overlaps_in, FileGroups, OverlapCount};
use crate::patterns::highlevel::{self, ClassifyOptions, HighLevelReport};
use crate::patterns::lowlevel::{classify_global_in, classify_local_in, PatternStats};

/// Struct-of-arrays view of the sweep-hot access fields, indexed by access
/// index. The overlap/conflict inner loop touches only start/end offsets
/// (plus timestamp and rank to order a candidate pair), so scanning four
/// dense `u64`/`u32` columns instead of 64-byte [`DataAccess`] records
/// keeps the sweep in cache.
#[derive(Debug, Clone, Default)]
pub struct SweepColumns {
    pub offset_start: Vec<u64>,
    pub offset_end: Vec<u64>,
    pub t_start: Vec<u64>,
    pub rank: Vec<u32>,
}

impl SweepColumns {
    pub fn new(accesses: &[DataAccess]) -> Self {
        SweepColumns {
            offset_start: accesses.iter().map(|a| a.offset).collect(),
            offset_end: accesses.iter().map(|a| a.end()).collect(),
            t_start: accesses.iter().map(|a| a.t_start).collect(),
            rank: accesses.iter().map(|a| a.rank).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.offset_start.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offset_start.is_empty()
    }
}

/// All shared per-trace analysis state. Construct once with
/// [`AnalysisContext::new`] (or [`AnalysisContext::with_adjusted`] when
/// the census / happens-before validation are needed too), then run any
/// number of analyses against it.
pub struct AnalysisContext<'a> {
    resolved: &'a ResolvedTrace,
    /// The adjusted trace the resolved one came from; needed by the
    /// metadata census and the happens-before index.
    adjusted: Option<&'a TraceSet>,
    groups: FileGroups,
    cols: SweepColumns,
    sync: SyncTables,
    extended: Vec<ExtendedAccess>,
    /// `groups.order()` with each file's range re-sorted (stably) by
    /// `(offset_start, offset_end)` — the sweep order of Algorithm 1 and
    /// both conflict detections.
    conflict_order: Vec<u32>,
    /// Lazily-built stream orders for Figure 1 (local: `(rank, file)`;
    /// global: `(file, t_start, rank)`).
    local_order: OnceLock<Vec<u32>>,
    global_order: OnceLock<Vec<u32>>,
    hb: OnceLock<HbIndex>,
}

impl<'a> AnalysisContext<'a> {
    /// Build the context over a resolved trace. Eagerly materializes the
    /// grouping, sync tables, extension, and the per-file sweep order;
    /// the pattern orders and the happens-before index are built on first
    /// use.
    pub fn new(resolved: &'a ResolvedTrace) -> Self {
        Self::build(resolved, None)
    }

    /// [`AnalysisContext::new`], additionally carrying the adjusted trace
    /// so [`AnalysisContext::census`] and
    /// [`AnalysisContext::validate_session`] are available.
    pub fn with_adjusted(resolved: &'a ResolvedTrace, adjusted: &'a TraceSet) -> Self {
        Self::build(resolved, Some(adjusted))
    }

    fn build(resolved: &'a ResolvedTrace, adjusted: Option<&'a TraceSet>) -> Self {
        let accesses = &resolved.accesses;
        let _span = obs::span("core", "ctx:build").with_arg("accesses", accesses.len());
        let groups = FileGroups::new(accesses);
        let cols = SweepColumns::new(accesses);
        let (sync, extended) = crate::conflict::extend_with_tables(resolved);
        // Same stable key as the standalone per-file sort — `(offset,
        // end)` over ranges that are in input order — so the sweep
        // enumerates pairs in exactly the order the standalone detectors
        // do.
        let mut conflict_order = groups.order().to_vec();
        for k in 0..groups.len() {
            let (_, lo, hi) = groups.bounds(k);
            conflict_order[lo..hi]
                .sort_by_key(|&i| (cols.offset_start[i as usize], cols.offset_end[i as usize]));
        }
        AnalysisContext {
            resolved,
            adjusted,
            groups,
            cols,
            sync,
            extended,
            conflict_order,
            local_order: OnceLock::new(),
            global_order: OnceLock::new(),
            hb: OnceLock::new(),
        }
    }

    pub fn resolved(&self) -> &ResolvedTrace {
        self.resolved
    }

    pub fn accesses(&self) -> &[DataAccess] {
        &self.resolved.accesses
    }

    /// The adjusted trace, if the context was built with one.
    pub fn adjusted(&self) -> Option<&TraceSet> {
        self.adjusted
    }

    pub fn groups(&self) -> &FileGroups {
        &self.groups
    }

    pub fn columns(&self) -> &SweepColumns {
        &self.cols
    }

    /// The §5.2 `to`/`tc` extension (binary-search variant), in input
    /// order.
    pub fn extended(&self) -> &[ExtendedAccess] {
        &self.extended
    }

    /// Time of the last `open` by `rank` on `file` at or before `t` — a
    /// direct query into the retained [`SyncTables`].
    pub fn last_open(&self, rank: u32, file: PathId, t: u64) -> Option<u64> {
        self.sync.last_open((rank, file), t)
    }

    /// Time of the first `close` by `rank` on `file` at or after `t`.
    pub fn next_close(&self, rank: u32, file: PathId, t: u64) -> Option<u64> {
        self.sync.next_close((rank, file), t)
    }

    /// Time of the first commit (`fsync`/`fdatasync`/`close`) by `rank`
    /// on `file` at or after `t`.
    pub fn next_commit(&self, rank: u32, file: PathId, t: u64) -> Option<u64> {
        self.sync.next_commit((rank, file), t)
    }

    /// Number of distinct files.
    pub fn file_count(&self) -> usize {
        self.groups.len()
    }

    /// The `k`-th file's accesses in sweep (offset-sorted) order.
    pub fn conflict_group(&self, k: usize) -> (PathId, &[u32]) {
        let (file, lo, hi) = self.groups.bounds(k);
        (file, &self.conflict_order[lo..hi])
    }

    /// Fused session+commit conflict detection (serial).
    pub fn fused_conflicts(&self) -> FusedReports {
        let _span = obs::span("core", "conflicts:fused");
        detect_conflicts_fused(self)
    }

    /// Fused session+commit conflict detection across `threads` workers.
    pub fn fused_conflicts_threaded(&self, threads: usize) -> FusedReports {
        let _span = obs::span("core", "conflicts:fused").with_arg("threads", threads);
        detect_conflicts_fused_threaded(self, threads)
    }

    /// Single-model detection reusing this context's indexes.
    pub fn conflicts(&self, model: AnalysisModel) -> ConflictReport {
        detect_conflicts_in(self, model, ConflictOptions::default(), 1)
    }

    /// Figure 1(b): the local pattern, streaming per `(rank, file)`.
    pub fn local_pattern(&self) -> PatternStats {
        let _span = obs::span("core", "pattern:local");
        let accs = self.accesses();
        let order = self.local_order.get_or_init(|| {
            let mut order: Vec<u32> = (0..accs.len() as u32).collect();
            // Stable: within a (rank, file) stream the input (time) order
            // holds.
            order.sort_by_key(|&i| (accs[i as usize].rank, accs[i as usize].file));
            order
        });
        classify_local_in(accs, order)
    }

    /// Figure 1(a): the global pattern, streaming per file in global
    /// (adjusted) time order.
    pub fn global_pattern(&self) -> PatternStats {
        let _span = obs::span("core", "pattern:global");
        let accs = self.accesses();
        let order = self.global_order.get_or_init(|| {
            let mut order: Vec<u32> = (0..accs.len() as u32).collect();
            order.sort_by_key(|&i| {
                let a = &accs[i as usize];
                (a.file, a.t_start, a.rank)
            });
            order
        });
        classify_global_in(accs, order)
    }

    /// Table 3 classification, reusing the per-file grouping.
    pub fn highlevel(&self, nranks: u32) -> HighLevelReport {
        self.highlevel_opt(nranks, ClassifyOptions::default())
    }

    pub fn highlevel_opt(&self, nranks: u32, opts: ClassifyOptions) -> HighLevelReport {
        let _span = obs::span("core", "highlevel");
        highlevel::classify_grouped(self.accesses(), &self.groups, nranks, opts)
    }

    /// Figure 3's metadata census over the adjusted trace.
    ///
    /// # Panics
    /// Panics if the context was built without an adjusted trace.
    pub fn census(&self) -> MetadataCensus {
        let _span = obs::span("core", "census");
        MetadataCensus::from_trace(self.require_adjusted())
    }

    /// The happens-before index over the adjusted trace, built on first
    /// use and shared by every subsequent validation.
    ///
    /// # Panics
    /// Panics if the context was built without an adjusted trace.
    pub fn hb_index(&self) -> &HbIndex {
        let adjusted = self.require_adjusted();
        self.hb.get_or_init(|| {
            let _span = obs::span("core", "hb:build");
            HbIndex::build(adjusted)
        })
    }

    /// §5.2 validation of a conflict report against the happens-before
    /// order, reusing the context's index (and one scratch buffer across
    /// all queried pairs).
    pub fn validate(&self, report: &ConflictReport) -> HbValidation {
        let _span = obs::span("core", "hb:validate").with_arg("pairs", report.pairs.len());
        validate_conflicts_with(self.hb_index(), report)
    }

    /// Algorithm 1 pair counts per file, reusing the grouping.
    pub fn overlap_counts(&self, threads: usize) -> Vec<(PathId, OverlapCount)> {
        let accs = self.accesses();
        crate::parallel::analyze_files_parallel(&self.groups, threads, |_, idxs| {
            count_overlaps_in(accs, idxs)
        })
    }

    fn require_adjusted(&self) -> &'a TraceSet {
        self.adjusted
            .expect("AnalysisContext built without an adjusted trace (use with_adjusted)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{AccessKind, Layer, SyncEvent, SyncKind};

    fn acc(rank: u32, t: u64, file: u32, offset: u64, len: u64, kind: AccessKind) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: PathId(file),
            offset,
            len,
            kind,
            origin: Layer::App,
            fd: 3,
        }
    }

    fn dense_trace() -> ResolvedTrace {
        let mut accesses = Vec::new();
        let mut syncs = Vec::new();
        for rank in 0..4u32 {
            syncs.push(SyncEvent {
                rank,
                t: rank as u64,
                file: PathId(0),
                kind: SyncKind::Open,
            });
            for k in 0..8u64 {
                accesses.push(acc(
                    rank,
                    10 + k * 17 + rank as u64,
                    (k % 2) as u32,
                    (k * 13 + rank as u64 * 7) % 60,
                    20,
                    if k % 3 == 0 {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    },
                ));
            }
            syncs.push(SyncEvent {
                rank,
                t: 200 + rank as u64,
                file: PathId(0),
                kind: SyncKind::Close,
            });
        }
        ResolvedTrace {
            accesses,
            syncs,
            seek_mismatches: 0,
            short_reads: 0,
        }
    }

    #[test]
    fn columns_mirror_accesses() {
        let r = dense_trace();
        let ctx = AnalysisContext::new(&r);
        assert_eq!(ctx.columns().len(), r.accesses.len());
        for (i, a) in r.accesses.iter().enumerate() {
            assert_eq!(ctx.columns().offset_start[i], a.offset);
            assert_eq!(ctx.columns().offset_end[i], a.end());
            assert_eq!(ctx.columns().t_start[i], a.t_start);
            assert_eq!(ctx.columns().rank[i], a.rank);
        }
    }

    #[test]
    fn conflict_order_is_offset_sorted_per_file() {
        let r = dense_trace();
        let ctx = AnalysisContext::new(&r);
        for k in 0..ctx.file_count() {
            let (file, order) = ctx.conflict_group(k);
            assert!(order.iter().all(|&i| r.accesses[i as usize].file == file));
            assert!(order.windows(2).all(|w| {
                let a = &r.accesses[w[0] as usize];
                let b = &r.accesses[w[1] as usize];
                (a.offset, a.end()) <= (b.offset, b.end())
            }));
        }
    }

    #[test]
    fn context_analyses_match_standalone() {
        let r = dense_trace();
        let ctx = AnalysisContext::new(&r);
        assert_eq!(
            ctx.conflicts(AnalysisModel::Session),
            crate::conflict::detect_conflicts(&r, AnalysisModel::Session)
        );
        assert_eq!(ctx.local_pattern(), crate::patterns::local_pattern(&r));
        assert_eq!(ctx.global_pattern(), crate::patterns::global_pattern(&r));
        let hl_ctx = ctx.highlevel(4);
        let hl = crate::patterns::highlevel::classify(&r, 4);
        assert_eq!(hl_ctx.label(), hl.label());
        assert_eq!(hl_ctx.per_file.len(), hl.per_file.len());
    }

    #[test]
    fn sync_queries_match_extension() {
        let r = dense_trace();
        let ctx = AnalysisContext::new(&r);
        for (i, e) in ctx.extended().iter().enumerate() {
            let a = &r.accesses[i];
            assert_eq!(ctx.last_open(a.rank, a.file, a.t_start), e.to);
            assert_eq!(ctx.next_close(a.rank, a.file, a.t_start), e.tc_close);
            assert_eq!(ctx.next_commit(a.rank, a.file, a.t_start), e.tc_commit);
        }
    }

    #[test]
    fn fused_matches_separate() {
        let r = dense_trace();
        let ctx = AnalysisContext::new(&r);
        let fused = ctx.fused_conflicts();
        assert_eq!(
            fused.session,
            crate::conflict::detect_conflicts(&r, AnalysisModel::Session)
        );
        assert_eq!(
            fused.commit,
            crate::conflict::detect_conflicts(&r, AnalysisModel::Commit)
        );
    }
}
