//! Metadata-conflict detection — the paper's stated future work (§7: "we
//! plan to expand our conflicts detection algorithm to support metadata
//! operations").
//!
//! Several PFSs (GekkoFS, BatchFS) relax *metadata* consistency while
//! keeping data consistency strict: a file created by one process may not
//! be immediately visible to `open`/`stat` on another node. The analysis
//! here finds the namespace dependencies that such relaxation can break:
//! pairs where one process *mutates* a path (create, mkdir, unlink,
//! rename, truncate) and a different process subsequently *depends* on
//! that mutation (opens the file, stats it, creates inside the new
//! directory).
//!
//! Unlike data conflicts, synchronization does not absolve these pairs —
//! a barrier orders the operations but does not force the metadata server
//! to publish the namespace change. The report therefore counts every
//! cross-process dependency, and separately notes how many are ordered by
//! program synchronization (all of them, for race-free programs).

use std::collections::BTreeMap;

use recorder::{Func, Layer, MetaKind, PathId, TraceSet};

/// How a metadata operation interacts with the namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaRole {
    /// Creates the binding (open with O_CREAT, mkdir, mknod, rename-to).
    Create,
    /// Removes the binding (unlink, rmdir, rename-from, remove).
    Remove,
    /// Mutates the node without (un)binding (truncate, chmod, utime).
    Mutate,
    /// Reads namespace state (open without create, stat family, access,
    /// readdir of the parent).
    Observe,
}

/// Categories of cross-process namespace dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetaPairKind {
    /// A creates the file/dir, B opens/stats it — B fails with ENOENT if
    /// the creation has not propagated.
    CreateThenObserve,
    /// A creates, B also mutates (e.g. truncates or renames it).
    CreateThenMutate,
    /// A removes, B observes — B may still see the removed binding (or
    /// fail where the paper-strict PFS would succeed).
    RemoveThenObserve,
    /// Two mutations from different processes (ordering-sensitive).
    MutateThenMutate,
}

/// One metadata event in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaEvent {
    pub rank: u32,
    pub t: u64,
    pub path: PathId,
    pub role: MetaRole,
    /// POSIX function name.
    pub func: &'static str,
}

/// One cross-process dependency pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaPair {
    pub kind: MetaPairKind,
    pub first: MetaEvent,
    pub second: MetaEvent,
}

/// The report: all cross-process namespace dependencies found.
#[derive(Debug, Clone, Default)]
pub struct MetaConflictReport {
    pub pairs: Vec<MetaPair>,
    pub by_kind: BTreeMap<MetaPairKind, u64>,
    /// Total metadata events examined.
    pub events: u64,
}

impl MetaConflictReport {
    pub fn total(&self) -> u64 {
        self.pairs.len() as u64
    }

    pub fn count(&self, kind: MetaPairKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// True if the application's namespace use requires *strong metadata*
    /// consistency (i.e., it has cross-process namespace dependencies a
    /// BatchFS/GekkoFS-style lazily-published namespace could break).
    pub fn requires_strong_metadata(&self) -> bool {
        self.total() > 0
    }
}

/// Extract the metadata event of one record, if any. `open` is a metadata
/// event too: with `O_CREAT` on a not-yet-existing binding it creates,
/// otherwise it observes.
fn event_of(rec: &recorder::Record) -> Option<MetaEvent> {
    if rec.layer != Layer::Posix {
        return None;
    }
    let (path, role, func): (PathId, MetaRole, &'static str) = match rec.func {
        Func::Open { path, flags, .. } => {
            let creates = flags & recorder::offset::flag_bits::CREATE != 0;
            (
                path,
                if creates {
                    MetaRole::Create
                } else {
                    MetaRole::Observe
                },
                "open",
            )
        }
        Func::MetaPath { op, path } => {
            let role = match op {
                MetaKind::Mkdir | MetaKind::Mknod | MetaKind::Mknodat | MetaKind::Symlink => {
                    MetaRole::Create
                }
                MetaKind::Unlink | MetaKind::Rmdir | MetaKind::Remove => MetaRole::Remove,
                MetaKind::Truncate | MetaKind::Chmod | MetaKind::Chown | MetaKind::Utime => {
                    MetaRole::Mutate
                }
                MetaKind::Stat
                | MetaKind::Stat64
                | MetaKind::Lstat
                | MetaKind::Lstat64
                | MetaKind::Access
                | MetaKind::Faccessat
                | MetaKind::Opendir
                | MetaKind::Readdir
                | MetaKind::Readlink => MetaRole::Observe,
                _ => return None,
            };
            (path, role, op.name())
        }
        Func::MetaPath2 {
            op: MetaKind::Rename,
            path,
            ..
        } => (path, MetaRole::Remove, "rename"),
        _ => return None,
    };
    Some(MetaEvent {
        rank: rec.rank,
        t: rec.t_start,
        path,
        role,
        func,
    })
}

/// Detect cross-process namespace dependencies in an (adjusted) trace.
///
/// For each path, the last *binding-changing* event (create/remove) and
/// last mutation are tracked in time order; any later event by a
/// *different* rank that depends on it forms a pair. Repeated identical
/// dependencies (e.g. 63 ranks opening the file rank 0 created) each
/// count — the fan-out is exactly the metadata-server load a relaxed
/// design must handle.
pub fn detect_meta_conflicts(trace: &TraceSet) -> MetaConflictReport {
    let mut report = MetaConflictReport::default();
    // Per path: last create / remove / mutate events.
    let mut last: BTreeMap<PathId, [Option<MetaEvent>; 3]> = BTreeMap::new();

    let mut events: Vec<MetaEvent> = trace.ranks.iter().flatten().filter_map(event_of).collect();
    events.sort_by_key(|e| (e.t, e.rank));
    report.events = events.len() as u64;

    for e in events {
        let slots = last.entry(e.path).or_default();
        let push = |kind: MetaPairKind, first: MetaEvent, report: &mut MetaConflictReport| {
            if first.rank != e.rank {
                report.pairs.push(MetaPair {
                    kind,
                    first,
                    second: e,
                });
                *report.by_kind.entry(kind).or_insert(0) += 1;
            }
        };
        match e.role {
            MetaRole::Observe => {
                // Depends on the latest binding change.
                match (slots[0], slots[1]) {
                    (Some(c), Some(r)) if r.t > c.t => {
                        push(MetaPairKind::RemoveThenObserve, r, &mut report)
                    }
                    (Some(c), _) => push(MetaPairKind::CreateThenObserve, c, &mut report),
                    (None, Some(r)) => push(MetaPairKind::RemoveThenObserve, r, &mut report),
                    (None, None) => {}
                }
            }
            MetaRole::Mutate => {
                if let Some(c) = slots[0] {
                    push(MetaPairKind::CreateThenMutate, c, &mut report);
                }
                if let Some(m) = slots[2] {
                    push(MetaPairKind::MutateThenMutate, m, &mut report);
                }
                slots[2] = Some(e);
            }
            MetaRole::Create => {
                slots[0] = Some(e);
                slots[1] = None; // a re-create supersedes a prior removal
            }
            MetaRole::Remove => {
                if let Some(c) = slots[0] {
                    push(MetaPairKind::CreateThenMutate, c, &mut report);
                }
                slots[1] = Some(e);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::offset::flag_bits;
    use recorder::Record;

    const P: PathId = PathId(0);

    fn posix(rank: u32, t: u64, func: Func) -> Record {
        Record {
            t_start: t,
            t_end: t + 1,
            rank,
            layer: Layer::Posix,
            origin: Layer::App,
            func,
        }
    }

    fn trace(records: Vec<Record>) -> TraceSet {
        let mut ranks: Vec<Vec<Record>> = vec![Vec::new(); 4];
        for r in records {
            ranks[r.rank as usize].push(r);
        }
        TraceSet {
            paths: vec!["/f".into()],
            ranks,
            skews_ns: vec![0; 4],
        }
    }

    #[test]
    fn create_then_open_by_other_rank() {
        let t = trace(vec![
            posix(
                0,
                1,
                Func::Open {
                    path: P,
                    flags: flag_bits::CREATE | flag_bits::WRITE,
                    fd: 3,
                },
            ),
            posix(
                1,
                5,
                Func::Open {
                    path: P,
                    flags: flag_bits::READ,
                    fd: 3,
                },
            ),
            posix(
                2,
                6,
                Func::MetaPath {
                    op: MetaKind::Stat,
                    path: P,
                },
            ),
        ]);
        let r = detect_meta_conflicts(&t);
        assert_eq!(r.count(MetaPairKind::CreateThenObserve), 2);
        assert!(r.requires_strong_metadata());
    }

    #[test]
    fn same_rank_dependencies_do_not_count() {
        let t = trace(vec![
            posix(
                0,
                1,
                Func::Open {
                    path: P,
                    flags: flag_bits::CREATE | flag_bits::WRITE,
                    fd: 3,
                },
            ),
            posix(
                0,
                2,
                Func::MetaPath {
                    op: MetaKind::Stat,
                    path: P,
                },
            ),
        ]);
        let r = detect_meta_conflicts(&t);
        assert_eq!(r.total(), 0);
        assert!(!r.requires_strong_metadata());
    }

    #[test]
    fn unlink_then_access() {
        let t = trace(vec![
            posix(
                0,
                1,
                Func::Open {
                    path: P,
                    flags: flag_bits::CREATE | flag_bits::WRITE,
                    fd: 3,
                },
            ),
            posix(
                0,
                2,
                Func::MetaPath {
                    op: MetaKind::Unlink,
                    path: P,
                },
            ),
            posix(
                1,
                5,
                Func::MetaPath {
                    op: MetaKind::Access,
                    path: P,
                },
            ),
        ]);
        let r = detect_meta_conflicts(&t);
        assert_eq!(r.count(MetaPairKind::RemoveThenObserve), 1);
        // The unlink by the creator itself is same-rank: not a pair.
        assert_eq!(r.count(MetaPairKind::CreateThenMutate), 0);
    }

    #[test]
    fn cross_rank_remove_after_create() {
        let t = trace(vec![
            posix(
                0,
                1,
                Func::Open {
                    path: P,
                    flags: flag_bits::CREATE | flag_bits::WRITE,
                    fd: 3,
                },
            ),
            posix(
                1,
                5,
                Func::MetaPath {
                    op: MetaKind::Unlink,
                    path: P,
                },
            ),
        ]);
        let r = detect_meta_conflicts(&t);
        assert_eq!(r.count(MetaPairKind::CreateThenMutate), 1);
    }

    #[test]
    fn mutate_then_mutate_cross_rank() {
        let t = trace(vec![
            posix(
                0,
                1,
                Func::MetaPath {
                    op: MetaKind::Chmod,
                    path: P,
                },
            ),
            posix(
                1,
                2,
                Func::MetaPath {
                    op: MetaKind::Chmod,
                    path: P,
                },
            ),
        ]);
        let r = detect_meta_conflicts(&t);
        assert_eq!(r.count(MetaPairKind::MutateThenMutate), 1);
    }

    #[test]
    fn recreate_supersedes_removal() {
        let t = trace(vec![
            posix(
                0,
                1,
                Func::Open {
                    path: P,
                    flags: flag_bits::CREATE | flag_bits::WRITE,
                    fd: 3,
                },
            ),
            posix(
                0,
                2,
                Func::MetaPath {
                    op: MetaKind::Unlink,
                    path: P,
                },
            ),
            posix(
                0,
                3,
                Func::Open {
                    path: P,
                    flags: flag_bits::CREATE | flag_bits::WRITE,
                    fd: 4,
                },
            ),
            posix(
                1,
                5,
                Func::MetaPath {
                    op: MetaKind::Stat,
                    path: P,
                },
            ),
        ]);
        let r = detect_meta_conflicts(&t);
        assert_eq!(r.count(MetaPairKind::CreateThenObserve), 1);
        assert_eq!(r.count(MetaPairKind::RemoveThenObserve), 0);
    }
}
