//! Stable cache-key derivation for derived-analysis results.
//!
//! A consistency verdict (and everything else the analysis produces) is a
//! pure function of the simulated run's inputs: the application
//! configuration, the world size, the seed, the semantics model under
//! inspection, and the fault plan. The serving layer caches analysis
//! results under a key derived from exactly those components, so the key
//! must be *stable* — identical across processes, platforms, and thread
//! counts — which rules out `std`'s `RandomState` hashing.
//!
//! A [`CacheKey`] carries two things:
//!
//! * the **canonical string** — `app=FLASH\0cfg=fbs\0…` — compared on
//!   lookup, so hash collisions can never alias two distinct queries;
//! * a **128-bit FNV-1a fingerprint** of that string, used for shard
//!   selection and cheap inequality tests.
//!
//! Component order is significant (the builder renders them in insertion
//! order), and each component is a tagged `name=value` pair separated by
//! NUL — a byte that cannot appear in any component value — so
//! `("ab", "c")` and `("a", "bc")` can never produce the same canonical
//! form.

/// Incrementally builds a [`CacheKey`] from tagged components.
#[derive(Debug, Default, Clone)]
pub struct CacheKeyBuilder {
    canonical: String,
}

impl CacheKeyBuilder {
    pub fn new() -> Self {
        CacheKeyBuilder::default()
    }

    /// Append one tagged string component. NUL bytes in `value` are
    /// rejected by replacement (they cannot occur in config names, model
    /// names, or fault-plan descriptions; replacing keeps the canonical
    /// form unambiguous even for hostile input).
    pub fn push(mut self, name: &str, value: &str) -> Self {
        if !self.canonical.is_empty() {
            self.canonical.push('\0');
        }
        self.canonical.push_str(name);
        self.canonical.push('=');
        for c in value.chars() {
            self.canonical.push(if c == '\0' { '\u{fffd}' } else { c });
        }
        self
    }

    /// Append one tagged integer component.
    pub fn push_u64(self, name: &str, value: u64) -> Self {
        let rendered = value.to_string();
        self.push(name, &rendered)
    }

    pub fn finish(self) -> CacheKey {
        let fp = fnv1a_128(self.canonical.as_bytes());
        CacheKey {
            canonical: self.canonical,
            fp,
        }
    }
}

/// A finished key: canonical string plus 128-bit fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    canonical: String,
    fp: (u64, u64),
}

impl CacheKey {
    /// The canonical `name=value\0…` rendering — the equality witness.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// Rehydrate a key from its canonical rendering (the form the
    /// persistent store indexes by), recomputing the fingerprint. The
    /// cluster tier uses this to place stored records back on the
    /// consistent-hash ring when partitioning a store for handoff.
    pub fn from_canonical(canonical: String) -> CacheKey {
        let fp = fnv1a_128(canonical.as_bytes());
        CacheKey { canonical, fp }
    }

    /// The stable 128-bit fingerprint as two words.
    pub fn fingerprint(&self) -> (u64, u64) {
        self.fp
    }

    /// A stable shard index in `[0, shards)` derived from the
    /// fingerprint's high word (the low word picks hash-map buckets, so
    /// using distinct words keeps the two decorrelated).
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        (self.fp.0 as usize) % shards.max(1)
    }
}

/// 128-bit FNV-1a over `bytes`, returned as `(high, low)`. Two
/// independent 64-bit FNV streams with distinct offset bases — not the
/// official 128-bit variant (which needs 128-bit multiplies), but stable,
/// dependency-free, and with the same dispersion properties at this
/// scale.
fn fnv1a_128(bytes: &[u8]) -> (u64, u64) {
    let mut hi: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lo: u64 = 0x6c62_272e_07bb_0142;
    for &b in bytes {
        hi ^= b as u64;
        hi = hi.wrapping_mul(0x1000_0000_01b3);
        lo ^= (b as u64).rotate_left(17) ^ 0xa5;
        lo = lo.wrapping_mul(0x1000_0000_01b3);
    }
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict_key(app: &str, cfg: &str, ranks: u64, seed: u64, model: &str) -> CacheKey {
        CacheKeyBuilder::new()
            .push("app", app)
            .push("cfg", cfg)
            .push_u64("ranks", ranks)
            .push_u64("seed", seed)
            .push("model", model)
            .push("faults", "none")
            .finish()
    }

    #[test]
    fn identical_inputs_identical_keys() {
        let a = verdict_key("FLASH", "fbs", 64, 2021, "session");
        let b = verdict_key("FLASH", "fbs", 64, 2021, "session");
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn any_component_change_changes_the_key() {
        let base = verdict_key("FLASH", "fbs", 64, 2021, "session");
        for other in [
            verdict_key("FLASH", "nofbs", 64, 2021, "session"),
            verdict_key("Enzo", "fbs", 64, 2021, "session"),
            verdict_key("FLASH", "fbs", 8, 2021, "session"),
            verdict_key("FLASH", "fbs", 64, 2022, "session"),
            verdict_key("FLASH", "fbs", 64, 2021, "commit"),
        ] {
            assert_ne!(base.canonical(), other.canonical());
            assert_ne!(base.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn component_boundaries_cannot_alias() {
        let a = CacheKeyBuilder::new()
            .push("x", "ab")
            .push("y", "c")
            .finish();
        let b = CacheKeyBuilder::new()
            .push("x", "a")
            .push("y", "bc")
            .finish();
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn shard_is_stable_and_in_range() {
        let k = verdict_key("FLASH", "fbs", 64, 2021, "both");
        let s = k.shard(16);
        assert!(s < 16);
        assert_eq!(s, verdict_key("FLASH", "fbs", 64, 2021, "both").shard(16));
    }

    #[test]
    fn nul_in_value_is_sanitized_not_ambiguous() {
        let tricky = CacheKeyBuilder::new().push("a", "x\0b=y").finish();
        let plain = CacheKeyBuilder::new()
            .push("a", "x")
            .push("b", "y")
            .finish();
        assert_ne!(tricky.canonical(), plain.canonical());
    }
}
