//! Minimal JSON document builder.
//!
//! The offline build has no registry access, so instead of `serde_json`
//! the machine-readable artifacts (`summary.json`, `BENCH_*.json`, and
//! every serve-endpoint response body) are emitted through this value
//! tree. Output is deterministic: fields render in insertion order,
//! floats through `format!("{}")` (shortest roundtrip representation),
//! making artifacts byte-comparable across runs — the property the serve
//! cache's warm-equals-cold guarantee rests on.

/// One JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field (object values only; panics otherwise).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Render with 2-space indentation, the layout `serde_json::to_string_pretty`
    /// used for the seed's artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let doc = Json::obj()
            .field("name", "x\"y")
            .field("n", 3u64)
            .field("ok", true)
            .field("items", vec![Json::U64(1), Json::U64(2)]);
        let s = doc.pretty();
        assert!(s.contains("\"name\": \"x\\\"y\""));
        assert!(s.contains("\"items\": [\n    1,\n    2\n  ]"));
        assert!(s.starts_with("{\n") && s.ends_with("}"));
    }

    #[test]
    fn empty_containers_inline() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::obj().pretty(), "{}");
    }

    #[test]
    fn float_rendering_is_deterministic() {
        assert_eq!(Json::F64(0.5).pretty(), "0.5");
        assert_eq!(Json::F64(f64::NAN).pretty(), "null");
        assert_eq!(Json::F64(12.0).pretty(), "12");
    }
}
