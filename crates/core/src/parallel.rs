//! Work-stealing fan-out across scoped threads, with deterministic merge.
//!
//! Everything here is `std`-only (`std::thread::scope` + channels + one
//! atomic claim counter): workers pull the next unclaimed item, results
//! flow back over a channel tagged with their item index, and the caller
//! reassembles them in input order — so the output of a parallel run is
//! bit-identical to the serial one regardless of thread count or
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use recorder::PathId;

use crate::overlap::FileGroups;

/// Resolve a requested thread count: `0` means "one per available core".
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Run `f(0..n)` across `threads` scoped worker threads (work-stealing via
/// a shared claim counter) and return the results in index order.
///
/// `threads == 0` uses one thread per available core; `threads == 1` (or
/// `n <= 1`) runs inline with no thread or channel overhead, which also
/// makes it the reference the equivalence tests compare against.
pub fn parallel_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(threads).min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                if tx.send((k, f(k))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (k, r) in rx {
        slots[k] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produced exactly once"))
        .collect()
}

/// Fan per-file analysis across `threads` worker threads: `f` is called
/// once per [`FileGroups`] group with `(file, indices into accesses)`,
/// files are claimed work-stealing style, and the results come back
/// sorted by [`PathId`] (the group order), so any merge over them is
/// deterministic.
pub fn analyze_files_parallel<R, F>(groups: &FileGroups, threads: usize, f: F) -> Vec<(PathId, R)>
where
    R: Send,
    F: Fn(PathId, &[u32]) -> R + Sync,
{
    parallel_map_indexed(groups.len(), threads, |k| {
        let (file, idxs) = groups.group(k);
        (file, f(file, idxs))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_map_is_in_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 8] {
            let out = parallel_map_indexed(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn indexed_map_empty() {
        let out: Vec<u32> = parallel_map_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_indexed(2, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }
}
