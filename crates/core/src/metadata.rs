//! Metadata-operation census (Figure 3, §6.4).
//!
//! Counts every monitored POSIX metadata/utility operation in a trace,
//! attributed to the layer whose code issued it — "we indicate where the
//! invocations occur, in the MPI library, in HDF5, or in the application
//! or another library".

use std::collections::BTreeMap;

use recorder::{Layer, MetaKind, TraceSet};

/// The census: counts per metadata operation per issuing layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetadataCensus {
    pub counts: BTreeMap<MetaKind, BTreeMap<Layer, u64>>,
}

impl MetadataCensus {
    /// Count all metadata records in `trace`.
    pub fn from_trace(trace: &TraceSet) -> Self {
        let mut census = MetadataCensus::default();
        for rec in trace.ranks.iter().flatten() {
            if rec.layer != Layer::Posix {
                continue;
            }
            if let Some(kind) = rec.func.meta_kind() {
                *census
                    .counts
                    .entry(kind)
                    .or_default()
                    .entry(rec.origin)
                    .or_insert(0) += 1;
            }
        }
        census
    }

    /// Operations used at least once, sorted.
    pub fn used_ops(&self) -> Vec<MetaKind> {
        self.counts
            .iter()
            .filter(|(_, by_layer)| by_layer.values().sum::<u64>() > 0)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Operations never used (Figure 3's empty columns — "many operations
    /// like rename(), chown() and utime() are not used by any
    /// application").
    pub fn unused_ops(&self) -> Vec<MetaKind> {
        MetaKind::ALL
            .iter()
            .copied()
            .filter(|k| !self.counts.contains_key(k))
            .collect()
    }

    /// Layers that issued `op`, sorted.
    pub fn layers_for(&self, op: MetaKind) -> Vec<Layer> {
        self.counts
            .get(&op)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    pub fn count(&self, op: MetaKind) -> u64 {
        self.counts.get(&op).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// Merge another census in (for aggregating configurations).
    pub fn merge(&mut self, other: &MetadataCensus) {
        for (op, by_layer) in &other.counts {
            let e = self.counts.entry(*op).or_default();
            for (layer, n) in by_layer {
                *e.entry(*layer).or_insert(0) += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{Func, PathId, Record};

    fn meta(rank: u32, t: u64, origin: Layer, op: MetaKind) -> Record {
        Record {
            t_start: t,
            t_end: t + 1,
            rank,
            layer: Layer::Posix,
            origin,
            func: Func::MetaPath {
                op,
                path: PathId(0),
            },
        }
    }

    #[test]
    fn census_attributes_by_origin() {
        let trace = TraceSet {
            paths: vec!["/f".into()],
            ranks: vec![vec![
                meta(0, 1, Layer::App, MetaKind::Stat),
                meta(0, 2, Layer::Hdf5, MetaKind::Stat),
                meta(0, 3, Layer::Hdf5, MetaKind::Ftruncate),
                Record {
                    t_start: 4,
                    t_end: 5,
                    rank: 0,
                    layer: Layer::Hdf5, // not POSIX → not counted
                    origin: Layer::Hdf5,
                    func: Func::H5Fclose { id: 1 },
                },
            ]],
            skews_ns: vec![0],
        };
        let c = MetadataCensus::from_trace(&trace);
        assert_eq!(c.count(MetaKind::Stat), 2);
        assert_eq!(c.layers_for(MetaKind::Stat), vec![Layer::App, Layer::Hdf5]);
        assert_eq!(c.layers_for(MetaKind::Ftruncate), vec![Layer::Hdf5]);
        assert_eq!(c.total(), 3);
        assert!(c.unused_ops().contains(&MetaKind::Rename));
        assert!(!c.used_ops().contains(&MetaKind::Rename));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MetadataCensus::default();
        a.counts
            .entry(MetaKind::Stat)
            .or_default()
            .insert(Layer::App, 2);
        let mut b = MetadataCensus::default();
        b.counts
            .entry(MetaKind::Stat)
            .or_default()
            .insert(Layer::App, 3);
        b.counts
            .entry(MetaKind::Unlink)
            .or_default()
            .insert(Layer::Adios, 1);
        a.merge(&b);
        assert_eq!(a.count(MetaKind::Stat), 5);
        assert_eq!(a.count(MetaKind::Unlink), 1);
    }
}
