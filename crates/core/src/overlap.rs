//! Algorithm 1: detecting overlaps.
//!
//! Records are the `(t, r, os, oe, type)` tuples of §5.1 (our
//! [`DataAccess`] uses an *exclusive* end offset `oe = offset + len`).
//! Tuples are sorted by starting offset; for each tuple the sweep scans
//! forward until the next start offset passes the current end — "quadratic
//! in the worst case, \[but\] in practice the running time (sorting
//! excepted) is linear in the number of records".

use recorder::{DataAccess, PathId};

/// Output of overlap detection over one file (or a whole trace when
/// grouped by file).
#[derive(Debug, Clone, Default)]
pub struct OverlapResult {
    /// Index pairs `(i, j)` into the input slice, each an overlapping pair.
    pub pairs: Vec<(u32, u32)>,
    /// The paper's table `P`: which rank pairs overlap. Entries `(r_i,
    /// r_j)` with `r_i <= r_j`, deduplicated and sorted.
    pub rank_pairs: Vec<(u32, u32)>,
}

impl OverlapResult {
    pub fn count(&self) -> usize {
        self.pairs.len()
    }

    pub fn involves_distinct_ranks(&self) -> bool {
        self.rank_pairs.iter().any(|(a, b)| a != b)
    }
}

/// Algorithm 1 over the accesses of **one file**. The input order is
/// arbitrary; indices in the result refer to the input slice.
///
/// ```
/// use recorder::{AccessKind, DataAccess, Layer, PathId};
/// use semantics_core::overlap::detect_overlaps;
/// let acc = |rank, t, offset, len| DataAccess {
///     rank, t_start: t, t_end: t + 1, file: PathId(0), offset, len,
///     kind: AccessKind::Write, origin: Layer::App, fd: 3,
/// };
/// // Two writes overlapping on byte 10, one disjoint write.
/// let r = detect_overlaps(&[acc(0, 0, 0, 11), acc(1, 1, 10, 10), acc(2, 2, 100, 5)]);
/// assert_eq!(r.count(), 1);
/// assert!(r.involves_distinct_ranks());
/// ```
pub fn detect_overlaps(accesses: &[DataAccess]) -> OverlapResult {
    let mut order: Vec<u32> = (0..accesses.len() as u32).collect();
    order.sort_by_key(|&i| {
        let a = &accesses[i as usize];
        (a.offset, a.end(), a.t_start)
    });
    let mut out = OverlapResult::default();
    for (pos, &i) in order.iter().enumerate() {
        let a = &accesses[i as usize];
        for &j in &order[pos + 1..] {
            let b = &accesses[j as usize];
            if b.offset >= a.end() {
                break; // sorted by start: no later tuple can overlap `a`
            }
            out.pairs.push((i, j));
            let (lo, hi) = if a.rank <= b.rank { (a.rank, b.rank) } else { (b.rank, a.rank) };
            out.rank_pairs.push((lo, hi));
        }
    }
    out.rank_pairs.sort_unstable();
    out.rank_pairs.dedup();
    out
}

/// The paper's suggested optimization (§5.1): "Although we have not done
/// so, sorting can be replaced by merging as records for each rank are
/// already sorted." This variant takes per-rank record lists that are
/// already offset-sorted, k-way-merges them into the global offset order,
/// and then runs the same sweep — O(n·log k) for the ordering instead of
/// O(n·log n).
///
/// Returns `None` if some rank's list is not offset-sorted (the
/// precondition the paper notes; callers fall back to
/// [`detect_overlaps`]). Pair indices refer to the *concatenation* of the
/// per-rank lists, in input order.
pub fn detect_overlaps_merge(per_rank: &[Vec<DataAccess>]) -> Option<OverlapResult> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Precondition check + global index assignment.
    let mut base = Vec::with_capacity(per_rank.len());
    let mut total = 0u32;
    for list in per_rank {
        base.push(total);
        if list.windows(2).any(|w| w[0].offset > w[1].offset) {
            return None;
        }
        total += list.len() as u32;
    }

    // K-way merge by (offset, end).
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = per_rank
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(r, l)| Reverse((l[0].offset, l[0].end(), r, 0)))
        .collect();
    let mut order: Vec<u32> = Vec::with_capacity(total as usize);
    while let Some(Reverse((_, _, r, i))) = heap.pop() {
        order.push(base[r] + i as u32);
        if let Some(next) = per_rank[r].get(i + 1) {
            heap.push(Reverse((next.offset, next.end(), r, i + 1)));
        }
    }

    // Identical sweep to Algorithm 1, addressing through the merge order.
    let acc = |i: u32| {
        let r = base.partition_point(|&b| b <= i) - 1;
        &per_rank[r][(i - base[r]) as usize]
    };
    let mut out = OverlapResult::default();
    for (pos, &i) in order.iter().enumerate() {
        let a = acc(i);
        for &j in &order[pos + 1..] {
            let b = acc(j);
            if b.offset >= a.end() {
                break;
            }
            out.pairs.push((i, j));
            let (lo, hi) = if a.rank <= b.rank { (a.rank, b.rank) } else { (b.rank, a.rank) };
            out.rank_pairs.push((lo, hi));
        }
    }
    out.rank_pairs.sort_unstable();
    out.rank_pairs.dedup();
    Some(out)
}

/// O(n²) reference implementation for property testing.
pub fn detect_overlaps_bruteforce(accesses: &[DataAccess]) -> OverlapResult {
    let mut out = OverlapResult::default();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.offset < b.end() && b.offset < a.end() {
                out.pairs.push((i as u32, j as u32));
                let (lo, hi) =
                    if a.rank <= b.rank { (a.rank, b.rank) } else { (b.rank, a.rank) };
                out.rank_pairs.push((lo, hi));
            }
        }
    }
    out.rank_pairs.sort_unstable();
    out.rank_pairs.dedup();
    out
}

/// Group a resolved trace's accesses by file, preserving global time order
/// within each group.
pub fn group_by_file(accesses: &[DataAccess]) -> Vec<(PathId, Vec<DataAccess>)> {
    let mut map: std::collections::BTreeMap<PathId, Vec<DataAccess>> = Default::default();
    for a in accesses {
        map.entry(a.file).or_default().push(*a);
    }
    map.into_iter().collect()
}

/// Normalize a pair list into a canonical (sorted, both orders collapsed)
/// set for comparisons in tests.
pub fn canonical_pairs(r: &OverlapResult) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = r
        .pairs
        .iter()
        .map(|&(i, j)| if i <= j { (i, j) } else { (j, i) })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{AccessKind, Layer};

    fn acc(rank: u32, t: u64, offset: u64, len: u64) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: PathId(0),
            offset,
            len,
            kind: AccessKind::Write,
            origin: Layer::App,
            fd: 3,
        }
    }

    #[test]
    fn disjoint_accesses_do_not_overlap() {
        let accs = vec![acc(0, 0, 0, 10), acc(1, 1, 10, 10), acc(2, 2, 20, 10)];
        let r = detect_overlaps(&accs);
        assert!(r.pairs.is_empty());
        assert!(!r.involves_distinct_ranks());
    }

    #[test]
    fn adjacent_is_not_overlap_exclusive_end() {
        // [0,10) and [10,20) share no byte.
        let accs = vec![acc(0, 0, 0, 10), acc(1, 1, 10, 10)];
        assert_eq!(detect_overlaps(&accs).count(), 0);
    }

    #[test]
    fn single_byte_overlap_detected() {
        let accs = vec![acc(0, 0, 0, 11), acc(1, 1, 10, 10)];
        let r = detect_overlaps(&accs);
        assert_eq!(r.count(), 1);
        assert_eq!(r.rank_pairs, vec![(0, 1)]);
        assert!(r.involves_distinct_ranks());
    }

    #[test]
    fn containment_and_identity() {
        let accs = vec![acc(0, 0, 0, 100), acc(0, 1, 10, 5), acc(1, 2, 0, 100)];
        let r = detect_overlaps(&accs);
        assert_eq!(canonical_pairs(&r), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn same_rank_overlap_has_diagonal_rank_pair() {
        let accs = vec![acc(3, 0, 0, 10), acc(3, 1, 5, 10)];
        let r = detect_overlaps(&accs);
        assert_eq!(r.rank_pairs, vec![(3, 3)]);
        assert!(!r.involves_distinct_ranks());
    }

    #[test]
    fn merge_variant_matches_sort_variant() {
        // Per-rank offset-sorted lists with plenty of cross-rank overlap.
        let mut per_rank: Vec<Vec<DataAccess>> = Vec::new();
        for r in 0..4u32 {
            per_rank.push(
                (0..20u64).map(|k| acc(r, k * 7 + r as u64, k * 13 + r as u64 * 5, 30)).collect(),
            );
        }
        let flat: Vec<DataAccess> = per_rank.iter().flatten().copied().collect();
        let merged = detect_overlaps_merge(&per_rank).expect("sorted input");
        let sorted = detect_overlaps(&flat);
        assert_eq!(canonical_pairs(&merged), canonical_pairs(&sorted));
        assert_eq!(merged.rank_pairs, sorted.rank_pairs);
    }

    #[test]
    fn merge_variant_rejects_unsorted_input() {
        let per_rank = vec![vec![acc(0, 0, 100, 10), acc(0, 1, 0, 10)]];
        assert!(detect_overlaps_merge(&per_rank).is_none());
    }

    #[test]
    fn merge_variant_empty_ranks() {
        let per_rank = vec![Vec::new(), vec![acc(1, 0, 0, 10)], Vec::new()];
        let r = detect_overlaps_merge(&per_rank).expect("sorted");
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn matches_bruteforce_on_dense_case() {
        let accs: Vec<DataAccess> =
            (0..40).map(|i| acc(i % 4, i as u64, (i as u64 * 7) % 50, 12)).collect();
        let fast = detect_overlaps(&accs);
        let slow = detect_overlaps_bruteforce(&accs);
        assert_eq!(canonical_pairs(&fast), canonical_pairs(&slow));
        assert_eq!(fast.rank_pairs, slow.rank_pairs);
    }
}
