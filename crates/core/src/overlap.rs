//! Algorithm 1: detecting overlaps.
//!
//! Records are the `(t, r, os, oe, type)` tuples of §5.1 (our
//! [`DataAccess`] uses an *exclusive* end offset `oe = offset + len`).
//! Tuples are sorted by starting offset; for each tuple the sweep scans
//! forward until the next start offset passes the current end — "quadratic
//! in the worst case, \[but\] in practice the running time (sorting
//! excepted) is linear in the number of records".

use std::collections::HashSet;

use recorder::{DataAccess, PathId};

/// Output of overlap detection over one file (or a whole trace when
/// grouped by file).
#[derive(Debug, Clone, Default)]
pub struct OverlapResult {
    /// Index pairs `(i, j)` into the input slice, each an overlapping pair.
    pub pairs: Vec<(u32, u32)>,
    /// The paper's table `P`: which rank pairs overlap. Entries `(r_i,
    /// r_j)` with `r_i <= r_j`, deduplicated and sorted.
    pub rank_pairs: Vec<(u32, u32)>,
}

impl OverlapResult {
    pub fn count(&self) -> usize {
        self.pairs.len()
    }

    pub fn involves_distinct_ranks(&self) -> bool {
        self.rank_pairs.iter().any(|(a, b)| a != b)
    }
}

/// Counting-only output of [`count_overlaps`]: the pair count and rank
/// table without the pair list itself, so worst-case (quadratic-pair)
/// inputs need O(ranks²) memory instead of O(pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverlapCount {
    /// Number of overlapping pairs ([`OverlapResult::count`]).
    pub pairs: u64,
    /// Same table `P` as [`OverlapResult::rank_pairs`].
    pub rank_pairs: Vec<(u32, u32)>,
}

impl OverlapCount {
    pub fn involves_distinct_ranks(&self) -> bool {
        self.rank_pairs.iter().any(|(a, b)| a != b)
    }
}

/// The §5.1 sweep over an offset-sorted index order: for each tuple, scan
/// forward while start offsets stay below its (exclusive) end.
fn sweep(
    accesses: &[DataAccess],
    order: &[u32],
    mut emit: impl FnMut(u32, u32, &DataAccess, &DataAccess),
) {
    for (pos, &i) in order.iter().enumerate() {
        let a = &accesses[i as usize];
        for &j in &order[pos + 1..] {
            let b = &accesses[j as usize];
            if b.offset >= a.end() {
                break; // sorted by start: no later tuple can overlap `a`
            }
            emit(i, j, a, b);
        }
    }
}

fn offset_order(accesses: &[DataAccess], idxs: Option<&[u32]>) -> Vec<u32> {
    let mut order: Vec<u32> = match idxs {
        Some(idxs) => idxs.to_vec(),
        None => (0..accesses.len() as u32).collect(),
    };
    order.sort_by_key(|&i| {
        let a = &accesses[i as usize];
        (a.offset, a.end(), a.t_start)
    });
    order
}

fn detect_in_order(accesses: &[DataAccess], order: &[u32]) -> OverlapResult {
    let mut out = OverlapResult::default();
    // Streaming dedup of the rank table: a seen-set instead of pushing one
    // entry per pair and sort+dedup afterwards.
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    sweep(accesses, order, |i, j, a, b| {
        out.pairs.push((i, j));
        let rp = if a.rank <= b.rank {
            (a.rank, b.rank)
        } else {
            (b.rank, a.rank)
        };
        if seen.insert(rp) {
            out.rank_pairs.push(rp);
        }
    });
    out.rank_pairs.sort_unstable();
    out
}

/// Algorithm 1 over the accesses of **one file**. The input order is
/// arbitrary; indices in the result refer to the input slice.
///
/// ```
/// use recorder::{AccessKind, DataAccess, Layer, PathId};
/// use semantics_core::overlap::detect_overlaps;
/// let acc = |rank, t, offset, len| DataAccess {
///     rank, t_start: t, t_end: t + 1, file: PathId(0), offset, len,
///     kind: AccessKind::Write, origin: Layer::App, fd: 3,
/// };
/// // Two writes overlapping on byte 10, one disjoint write.
/// let r = detect_overlaps(&[acc(0, 0, 0, 11), acc(1, 1, 10, 10), acc(2, 2, 100, 5)]);
/// assert_eq!(r.count(), 1);
/// assert!(r.involves_distinct_ranks());
/// ```
pub fn detect_overlaps(accesses: &[DataAccess]) -> OverlapResult {
    detect_in_order(accesses, &offset_order(accesses, None))
}

/// Algorithm 1 over the subset of `accesses` named by `idxs` (typically
/// one [`FileGroups`] group). Pair indices refer to the full `accesses`
/// slice, so no per-file copies are needed.
pub fn detect_overlaps_in(accesses: &[DataAccess], idxs: &[u32]) -> OverlapResult {
    detect_in_order(accesses, &offset_order(accesses, Some(idxs)))
}

/// Counting-only Algorithm 1: identical sweep, but only the pair count
/// and rank table are kept. Equivalent to
/// `detect_overlaps(accesses).count()` / `.rank_pairs` without
/// materializing the (worst-case quadratic) pair list.
pub fn count_overlaps(accesses: &[DataAccess]) -> OverlapCount {
    count_in_order(accesses, &offset_order(accesses, None))
}

/// Counting-only Algorithm 1 over the subset named by `idxs`.
pub fn count_overlaps_in(accesses: &[DataAccess], idxs: &[u32]) -> OverlapCount {
    count_in_order(accesses, &offset_order(accesses, Some(idxs)))
}

fn count_in_order(accesses: &[DataAccess], order: &[u32]) -> OverlapCount {
    let mut out = OverlapCount::default();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    sweep(accesses, order, |_, _, a, b| {
        out.pairs += 1;
        let rp = if a.rank <= b.rank {
            (a.rank, b.rank)
        } else {
            (b.rank, a.rank)
        };
        if seen.insert(rp) {
            out.rank_pairs.push(rp);
        }
    });
    out.rank_pairs.sort_unstable();
    out
}

/// The paper's suggested optimization (§5.1): "Although we have not done
/// so, sorting can be replaced by merging as records for each rank are
/// already sorted." This variant takes per-rank record lists that are
/// already offset-sorted, k-way-merges them into the global offset order,
/// and then runs the same sweep — O(n·log k) for the ordering instead of
/// O(n·log n).
///
/// Returns `None` if some rank's list is not offset-sorted (the
/// precondition the paper notes; callers fall back to
/// [`detect_overlaps`]). Pair indices refer to the *concatenation* of the
/// per-rank lists, in input order.
pub fn detect_overlaps_merge(per_rank: &[Vec<DataAccess>]) -> Option<OverlapResult> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Precondition check + global index assignment.
    let mut base = Vec::with_capacity(per_rank.len());
    let mut total = 0u32;
    for list in per_rank {
        base.push(total);
        if list.windows(2).any(|w| w[0].offset > w[1].offset) {
            return None;
        }
        total += list.len() as u32;
    }

    // K-way merge by (offset, end).
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize, usize)>> = per_rank
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_empty())
        .map(|(r, l)| Reverse((l[0].offset, l[0].end(), r, 0)))
        .collect();
    let mut order: Vec<u32> = Vec::with_capacity(total as usize);
    while let Some(Reverse((_, _, r, i))) = heap.pop() {
        order.push(base[r] + i as u32);
        if let Some(next) = per_rank[r].get(i + 1) {
            heap.push(Reverse((next.offset, next.end(), r, i + 1)));
        }
    }

    // Identical sweep to Algorithm 1, addressing through the merge order.
    let acc = |i: u32| {
        let r = base.partition_point(|&b| b <= i) - 1;
        &per_rank[r][(i - base[r]) as usize]
    };
    let mut out = OverlapResult::default();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for (pos, &i) in order.iter().enumerate() {
        let a = acc(i);
        for &j in &order[pos + 1..] {
            let b = acc(j);
            if b.offset >= a.end() {
                break;
            }
            out.pairs.push((i, j));
            let rp = if a.rank <= b.rank {
                (a.rank, b.rank)
            } else {
                (b.rank, a.rank)
            };
            if seen.insert(rp) {
                out.rank_pairs.push(rp);
            }
        }
    }
    out.rank_pairs.sort_unstable();
    Some(out)
}

/// O(n²) reference implementation for property testing.
pub fn detect_overlaps_bruteforce(accesses: &[DataAccess]) -> OverlapResult {
    let mut out = OverlapResult::default();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.offset < b.end() && b.offset < a.end() {
                out.pairs.push((i as u32, j as u32));
                let (lo, hi) = if a.rank <= b.rank {
                    (a.rank, b.rank)
                } else {
                    (b.rank, a.rank)
                };
                out.rank_pairs.push((lo, hi));
            }
        }
    }
    out.rank_pairs.sort_unstable();
    out.rank_pairs.dedup();
    out
}

/// Zero-copy grouping of a trace's accesses by file.
///
/// One stable index sort replaces the per-file `Vec<DataAccess>` clones
/// the analysis used to make: each group is a slice of indices into the
/// original access slice, **in input order** within the group (groups
/// themselves are sorted by [`PathId`]). The whole structure is two flat
/// vectors, no per-file allocation, and the accesses are never copied.
///
/// Overlap convention (shared by every consumer of a group): a
/// [`DataAccess`] covers the half-open byte range `[offset, end())` with
/// `end() = offset + len` **exclusive**, so accesses that merely touch
/// (`a.end() == b.offset`) do not overlap.
#[derive(Debug, Clone, Default)]
pub struct FileGroups {
    /// Indices into the access slice, grouped by file, input order within
    /// each group.
    order: Vec<u32>,
    /// Per-file `(file, start..end)` ranges into `order`, sorted by file.
    ranges: Vec<(PathId, u32, u32)>,
}

impl FileGroups {
    pub fn new(accesses: &[DataAccess]) -> Self {
        let mut order: Vec<u32> = (0..accesses.len() as u32).collect();
        // Stable: equal files keep input order.
        order.sort_by_key(|&i| accesses[i as usize].file);
        let mut ranges: Vec<(PathId, u32, u32)> = Vec::new();
        let mut start = 0;
        while start < order.len() {
            let file = accesses[order[start] as usize].file;
            let mut end = start + 1;
            while end < order.len() && accesses[order[end] as usize].file == file {
                end += 1;
            }
            ranges.push((file, start as u32, end as u32));
            start = end;
        }
        Self { order, ranges }
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The `k`-th group (groups are sorted by file).
    pub fn group(&self, k: usize) -> (PathId, &[u32]) {
        let (file, lo, hi) = self.ranges[k];
        (file, &self.order[lo as usize..hi as usize])
    }

    /// The flat grouped index order: input order within each file's range.
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// `(file, start, end)` bounds of the `k`-th group's slice of
    /// [`FileGroups::order`].
    pub(crate) fn bounds(&self, k: usize) -> (PathId, usize, usize) {
        let (file, lo, hi) = self.ranges[k];
        (file, lo as usize, hi as usize)
    }

    /// Iterate `(file, indices)` groups in file order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &[u32])> + '_ {
        (0..self.len()).map(|k| self.group(k))
    }
}

/// Normalize a pair list into a canonical (sorted, both orders collapsed)
/// set for comparisons in tests.
pub fn canonical_pairs(r: &OverlapResult) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = r
        .pairs
        .iter()
        .map(|&(i, j)| if i <= j { (i, j) } else { (j, i) })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{AccessKind, Layer};

    fn acc(rank: u32, t: u64, offset: u64, len: u64) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: PathId(0),
            offset,
            len,
            kind: AccessKind::Write,
            origin: Layer::App,
            fd: 3,
        }
    }

    #[test]
    fn disjoint_accesses_do_not_overlap() {
        let accs = vec![acc(0, 0, 0, 10), acc(1, 1, 10, 10), acc(2, 2, 20, 10)];
        let r = detect_overlaps(&accs);
        assert!(r.pairs.is_empty());
        assert!(!r.involves_distinct_ranks());
    }

    #[test]
    fn adjacent_is_not_overlap_exclusive_end() {
        // [0,10) and [10,20) share no byte.
        let accs = vec![acc(0, 0, 0, 10), acc(1, 1, 10, 10)];
        assert_eq!(detect_overlaps(&accs).count(), 0);
    }

    #[test]
    fn single_byte_overlap_detected() {
        let accs = vec![acc(0, 0, 0, 11), acc(1, 1, 10, 10)];
        let r = detect_overlaps(&accs);
        assert_eq!(r.count(), 1);
        assert_eq!(r.rank_pairs, vec![(0, 1)]);
        assert!(r.involves_distinct_ranks());
    }

    #[test]
    fn containment_and_identity() {
        let accs = vec![acc(0, 0, 0, 100), acc(0, 1, 10, 5), acc(1, 2, 0, 100)];
        let r = detect_overlaps(&accs);
        assert_eq!(canonical_pairs(&r), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn same_rank_overlap_has_diagonal_rank_pair() {
        let accs = vec![acc(3, 0, 0, 10), acc(3, 1, 5, 10)];
        let r = detect_overlaps(&accs);
        assert_eq!(r.rank_pairs, vec![(3, 3)]);
        assert!(!r.involves_distinct_ranks());
    }

    #[test]
    fn counting_mode_matches_full_detection() {
        let accs: Vec<DataAccess> = (0..60)
            .map(|i| acc(i % 5, i as u64, (i as u64 * 11) % 70, 15))
            .collect();
        let full = detect_overlaps(&accs);
        let count = count_overlaps(&accs);
        assert_eq!(count.pairs, full.count() as u64);
        assert_eq!(count.rank_pairs, full.rank_pairs);
    }

    #[test]
    fn subset_detection_matches_filtered_input() {
        // Accesses over two interleaved "logical" sets; detect on one set
        // by indices and compare against detecting on a filtered copy.
        let accs: Vec<DataAccess> = (0..40)
            .map(|i| acc(i % 3, i as u64, (i as u64 * 7) % 50, 12))
            .collect();
        let idxs: Vec<u32> = (0..accs.len() as u32).filter(|i| i % 2 == 0).collect();
        let subset: Vec<DataAccess> = idxs.iter().map(|&i| accs[i as usize]).collect();
        let by_idx = detect_overlaps_in(&accs, &idxs);
        let by_copy = detect_overlaps(&subset);
        // Map the copy's local indices back to global ones.
        let remap: Vec<(u32, u32)> = by_copy
            .pairs
            .iter()
            .map(|&(i, j)| (idxs[i as usize], idxs[j as usize]))
            .collect();
        let canon = |mut v: Vec<(u32, u32)>| {
            for p in &mut v {
                if p.0 > p.1 {
                    *p = (p.1, p.0);
                }
            }
            v.sort_unstable();
            v
        };
        assert_eq!(canon(by_idx.pairs), canon(remap));
        assert_eq!(by_idx.rank_pairs, by_copy.rank_pairs);
    }

    #[test]
    fn file_groups_preserve_input_order() {
        let mut accs = Vec::new();
        for i in 0..30u64 {
            let mut a = acc((i % 4) as u32, 100 - i, (i * 9) % 40, 8);
            a.file = PathId((i % 3) as u32);
            accs.push(a);
        }
        let groups = FileGroups::new(&accs);
        assert_eq!(groups.len(), 3);
        let mut seen = 0usize;
        let mut last_file = None;
        for (file, idxs) in groups.iter() {
            if let Some(lf) = last_file {
                assert!(file > lf, "groups sorted by file");
            }
            last_file = Some(file);
            assert!(
                idxs.windows(2).all(|w| w[0] < w[1]),
                "input order within group"
            );
            assert!(idxs.iter().all(|&i| accs[i as usize].file == file));
            seen += idxs.len();
        }
        assert_eq!(seen, accs.len());
    }

    #[test]
    fn file_groups_empty_input() {
        let groups = FileGroups::new(&[]);
        assert!(groups.is_empty());
        assert_eq!(groups.iter().count(), 0);
    }

    #[test]
    fn merge_variant_matches_sort_variant() {
        // Per-rank offset-sorted lists with plenty of cross-rank overlap.
        let mut per_rank: Vec<Vec<DataAccess>> = Vec::new();
        for r in 0..4u32 {
            per_rank.push(
                (0..20u64)
                    .map(|k| acc(r, k * 7 + r as u64, k * 13 + r as u64 * 5, 30))
                    .collect(),
            );
        }
        let flat: Vec<DataAccess> = per_rank.iter().flatten().copied().collect();
        let merged = detect_overlaps_merge(&per_rank).expect("sorted input");
        let sorted = detect_overlaps(&flat);
        assert_eq!(canonical_pairs(&merged), canonical_pairs(&sorted));
        assert_eq!(merged.rank_pairs, sorted.rank_pairs);
    }

    #[test]
    fn merge_variant_rejects_unsorted_input() {
        let per_rank = vec![vec![acc(0, 0, 100, 10), acc(0, 1, 0, 10)]];
        assert!(detect_overlaps_merge(&per_rank).is_none());
    }

    #[test]
    fn merge_variant_empty_ranks() {
        let per_rank = vec![Vec::new(), vec![acc(1, 0, 0, 10)], Vec::new()];
        let r = detect_overlaps_merge(&per_rank).expect("sorted");
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn matches_bruteforce_on_dense_case() {
        let accs: Vec<DataAccess> = (0..40)
            .map(|i| acc(i % 4, i as u64, (i as u64 * 7) % 50, 12))
            .collect();
        let fast = detect_overlaps(&accs);
        let slow = detect_overlaps_bruteforce(&accs);
        assert_eq!(canonical_pairs(&fast), canonical_pairs(&slow));
        assert_eq!(fast.rank_pairs, slow.rank_pairs);
    }
}
