//! Streaming incremental analysis: online conflict/overlap detection.
//!
//! The batch pipeline re-derives everything from the complete trace:
//! resolve offsets, group by file, sort, sweep. This module consumes the
//! run's POSIX records *as the simulation emits them* and maintains the
//! analyses online, so that when the run finishes, the expensive
//! per-trace passes (offset resolution, context build, the fused conflict
//! sweep, both Figure 1 pattern folds, the Table 3 bucketing) are already
//! done — the cold path pays only the finalize step.
//!
//! ## Equivalence with the batch pipeline
//!
//! Everything here is engineered to be **byte-identical** to the batch
//! results, not merely equivalent:
//!
//! * **Drain order.** The batch pipeline's global order is
//!   [`recorder::TraceSet::merged_by_time`]: a stable sort by
//!   `(t_start, rank)` over per-rank program-order streams. A rank's POSIX
//!   records have nondecreasing `t_start`, so a watermark merge of
//!   per-rank FIFO queues — always draining the smallest `(t_start, rank)`
//!   head — reproduces exactly the POSIX subsequence of the batch order,
//!   and the offset resolver only consumes POSIX records. Feeding the
//!   shared [`recorder::offset::StreamResolver`] step in that order makes
//!   the streamed [`ResolvedTrace`] identical to the batch one by
//!   construction.
//! * **Conflict pairs.** An arriving access can only be the *later*
//!   element of a candidate pair (drain order is time order), and the
//!   earlier element must be a write (write-after-read never conflicts) —
//!   so only writes are stored, and each arriving access is checked
//!   against the file's live writes. A pair's §5.2 conditions are
//!   evaluated only once the drain has passed its `t₂` strictly; at that
//!   point an unfilled `tc` means the write's first close/commit (if any)
//!   is later than `t₂`, which the conditions treat exactly as the batch
//!   `None`/`Some(tc > t₂)` cases — the verdicts coincide. At finalize the
//!   surviving pairs are sorted by `(file, k_min, k_max)` where `k` is the
//!   per-file `(offset, end, arrival)` key — precisely the batch sweep's
//!   emission order — and replayed through [`ConflictReport::add`].
//! * **Patterns.** The local fold keys on `(rank, file)` and the global
//!   fold on `file`; restricted to one key, the drain order equals the
//!   batch's stable sort order, and [`PatternStats`] summation over
//!   streams is order-independent. Table 3 buckets accumulate per file in
//!   time order and finish through the same
//!   [`crate::patterns::highlevel::classify_from_buckets`].
//!
//! ## Memory bound
//!
//! The conflict working set holds only *live* write intervals. A write
//! retires once it can never appear in a future pair under **either**
//! model: its `tc_commit` is filled (any future access has
//! `t₂ > tc_commit`, clearing condition 3) *and* its `tc_close` is filled
//! with `t₁ < tc` and every rank holding the file open has re-opened
//! after that close (ranks without an open descriptor must re-open at a
//! time past the watermark, which orders them after the close). Retired
//! intervals are pruned at sync-epoch boundaries
//! ([`StreamingAnalyzer::epoch_released`], driven by the simulator's
//! barrier commits), so the store is bounded by the intervals live in the
//! current epoch(s), not by trace length. `peak_live_intervals` reports
//! the high-water mark.
//!
//! ## Assumptions
//!
//! The ε-cases where streaming could diverge from batch all require a
//! zero-duration operation: an access at the exact instant of its own
//! session `open`, a close at the exact instant of the write it commits,
//! or two same-rank accesses at one timestamp. Every in-repo cost model
//! charges nonzero latency for opens and data ops, so these cannot occur;
//! the regression tests assert byte-identity across all application
//! configurations, semantics models, and fault campaigns, which would
//! surface any violation.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Mutex;

use recorder::offset::StreamResolver;
use recorder::{AccessKind, DataAccess, PathId, Record, ResolvedTrace, SyncEvent, SyncKind};

use crate::conflict::{classify_pair, AnalysisModel, ConflictReport, ExtendedAccess};
use crate::patterns::highlevel::{
    classify_from_buckets, ClassifyOptions, FileBuckets, HighLevelReport,
};
use crate::patterns::lowlevel::{classify_step, PatternStats};

/// Per-file sweep key: batch sorts each file's accesses stably by
/// `(offset, end)` over arrival order, so lexicographic
/// `(offset, end, arrival)` reproduces the exact sweep position.
type SweepKey = (u64, u64, u32);

/// One live (not yet retired) write interval.
#[derive(Debug, Clone, Copy)]
struct WriteInfo {
    access: DataAccess,
    k: SweepKey,
    /// Last preceding open by this rank on this file (exact at creation).
    to: Option<u64>,
    /// First succeeding close / commit, filled when it drains (set-once,
    /// so the fill is the *first* such event — matching `first_after`).
    tc_close: Option<u64>,
    tc_commit: Option<u64>,
    /// Pending pairs referencing this write.
    refs: u32,
    /// Retired from the matchable set; freed once `refs` drains to zero.
    pruned: bool,
}

/// A candidate pair awaiting its evaluation point (`drain > t₂`).
#[derive(Debug, Clone, Copy)]
struct PendingPair {
    write_id: u64,
    second: DataAccess,
    second_k: SweepKey,
    /// Last open ≤ t₂ by the second access's rank (fixed up if an open at
    /// exactly t₂ drains after the access).
    to2: Option<u64>,
}

/// A pair that conflicted under at least one model.
#[derive(Debug, Clone, Copy)]
struct Survivor {
    file: PathId,
    k_min: SweepKey,
    k_max: SweepKey,
    first: DataAccess,
    second: DataAccess,
    on_session: bool,
    on_commit: bool,
}

#[derive(Debug, Default)]
struct FileState {
    /// Live write ids, in arrival order.
    matchable: Vec<u64>,
    /// Per-file arrival counter (the third component of [`SweepKey`]).
    next_seq: u32,
}

/// Streaming sync state per `(rank, file)`.
#[derive(Debug, Default)]
struct RankFileState {
    last_open: Option<u64>,
    last_close: Option<u64>,
    last_commit: Option<u64>,
    /// Currently-open descriptors this rank holds on the file.
    open_fds: u32,
    /// Writes whose `tc_close` / `tc_commit` await the next such event.
    waiting_close: Vec<u64>,
    waiting_commit: Vec<u64>,
}

/// Everything the incremental engine has produced by finalize time.
#[derive(Debug)]
pub struct IncrementalOutput {
    /// Byte-identical to `offset::resolve(adjusted_trace)`.
    pub resolved: ResolvedTrace,
    /// Byte-identical to the fused batch detector's session report.
    pub session: ConflictReport,
    /// … and its commit report.
    pub commit: ConflictReport,
    pub local: PatternStats,
    pub global: PatternStats,
    pub highlevel: HighLevelReport,
    /// High-water mark of the live-interval store — the streaming memory
    /// bound (batch holds every access of the trace instead).
    pub peak_live_intervals: u64,
    /// Candidate (overlapping) pairs enumerated online.
    pub pairs_checked: u64,
    /// Distinct `(rank, rank)` pairs (normalized, distinct ranks only)
    /// with write-involved overlapping accesses — the online overlap
    /// summary.
    pub overlap_rank_pairs: Vec<(u32, u32)>,
    /// Writes retired by epoch pruning before finalize.
    pub pruned_intervals: u64,
}

#[derive(Debug)]
struct Inner {
    nranks: usize,
    queues: Vec<VecDeque<Record>>,
    /// Promise: every future record of rank `r` has
    /// `t_start >= frontiers[r]`.
    frontiers: Vec<u64>,
    done: Vec<bool>,
    resolver: StreamResolver,
    hl_opts: ClassifyOptions,

    writes: HashMap<u64, WriteInfo>,
    next_write_id: u64,
    files: HashMap<PathId, FileState>,
    rf: HashMap<(u32, PathId), RankFileState>,
    pending: VecDeque<PendingPair>,
    survivors: Vec<Survivor>,

    local_prev: HashMap<(u32, PathId), u64>,
    global_prev: HashMap<PathId, u64>,
    local_stats: PatternStats,
    global_stats: PatternStats,
    buckets: HashMap<PathId, FileBuckets>,

    /// `remap[pre_canonical_id] = canonical id`, set after trace assembly.
    remap: Vec<u32>,

    live_intervals: u64,
    peak_live_intervals: u64,
    pairs_checked: u64,
    pruned_intervals: u64,
    overlap_rank_pairs: BTreeSet<(u32, u32)>,
}

/// The online analyzer. Thread-safe: simulated ranks push record chunks
/// concurrently, the simulator signals epoch commits, and the analysis
/// host finalizes once the run completes.
#[derive(Debug)]
pub struct StreamingAnalyzer {
    inner: Mutex<Inner>,
}

impl StreamingAnalyzer {
    pub fn new(nranks: u32) -> Self {
        let n = nranks as usize;
        StreamingAnalyzer {
            inner: Mutex::new(Inner {
                nranks: n,
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                frontiers: vec![0; n],
                done: vec![false; n],
                resolver: StreamResolver::new(),
                hl_opts: ClassifyOptions::default(),
                writes: HashMap::new(),
                next_write_id: 0,
                files: HashMap::new(),
                rf: HashMap::new(),
                pending: VecDeque::new(),
                survivors: Vec::new(),
                local_prev: HashMap::new(),
                global_prev: HashMap::new(),
                local_stats: PatternStats::default(),
                global_stats: PatternStats::default(),
                buckets: HashMap::new(),
                remap: Vec::new(),
                live_intervals: 0,
                peak_live_intervals: 0,
                pairs_checked: 0,
                pruned_intervals: 0,
                overlap_rank_pairs: BTreeSet::new(),
            }),
        }
    }

    /// Feed a chunk of `rank`'s records (adjusted timestamps, program
    /// order). `frontier` promises that every future record of this rank
    /// has `t_start >= frontier`; larger frontiers let the watermark merge
    /// drain further.
    pub fn push(&self, rank: u32, records: &[Record], frontier: u64) {
        let mut g = self.lock();
        let r = rank as usize;
        let mut f = g.frontiers[r].max(frontier);
        for rec in records {
            debug_assert!(
                g.queues[r]
                    .back()
                    .map_or(true, |p| p.t_start <= rec.t_start),
                "per-rank records must arrive in nondecreasing t_start"
            );
            f = f.max(rec.t_start);
            g.queues[r].push_back(*rec);
        }
        g.frontiers[r] = f;
        g.drain();
    }

    /// `rank` will produce no further records.
    pub fn rank_done(&self, rank: u32) {
        let mut g = self.lock();
        g.done[rank as usize] = true;
        g.frontiers[rank as usize] = u64::MAX;
        g.drain();
    }

    /// A synchronization epoch committed (all live ranks passed a
    /// barrier): prune retired write intervals. Purely a memory-bound
    /// trigger — calling it more or less often never changes results.
    pub fn epoch_released(&self, _epoch: u64) {
        self.lock().prune();
    }

    /// Install the PathId canonicalization the trace assembly applied
    /// (`remap[old] = canonical`); streamed records carry pre-assembly
    /// interner ids and are translated at finalize.
    pub fn set_remap(&self, remap: &[u32]) {
        self.lock().remap = remap.to_vec();
    }

    /// Drain everything, evaluate all pending pairs, and reconstruct the
    /// batch-identical analysis outputs.
    pub fn finalize(&self) -> IncrementalOutput {
        let _span = obs::span("core", "incremental:finalize");
        let mut g = self.lock();
        g.finalize()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("streaming analyzer poisoned")
    }
}

impl Inner {
    /// Watermark merge: repeatedly drain the smallest `(t_start, rank)`
    /// queue head, as long as it is strictly below every empty rank's
    /// frontier (an empty rank could still produce a record at its
    /// frontier with a smaller rank number).
    fn drain(&mut self) {
        loop {
            let mut best: Option<(u64, usize)> = None;
            let mut bound = u64::MAX;
            for r in 0..self.nranks {
                match self.queues[r].front() {
                    Some(rec) => {
                        let key = (rec.t_start, r);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                    None => {
                        if !self.done[r] {
                            bound = bound.min(self.frontiers[r]);
                        }
                    }
                }
            }
            match best {
                Some((t, r)) if t < bound => {
                    let rec = self.queues[r].pop_front().expect("nonempty");
                    self.process(rec);
                }
                _ => break,
            }
        }
    }

    fn process(&mut self, rec: Record) {
        // A pair's conditions are exact once the drain strictly passes its
        // t₂: every sync that could fill a tc ≤ t₂ has drained.
        self.flush_pending(rec.t_start);
        let s0 = self.resolver.resolved().syncs.len();
        let a0 = self.resolver.resolved().accesses.len();
        self.resolver.push(&rec);
        // One record yields at most one access or one sync.
        if self.resolver.resolved().syncs.len() > s0 {
            let s = self.resolver.resolved().syncs[s0];
            self.on_sync(s);
        }
        if self.resolver.resolved().accesses.len() > a0 {
            let a = self.resolver.resolved().accesses[a0];
            self.on_access(a);
        }
    }

    fn flush_pending(&mut self, before_t: u64) {
        while let Some(p) = self.pending.front() {
            if p.second.t_start >= before_t {
                break;
            }
            let p = self.pending.pop_front().expect("nonempty");
            self.eval_pair(p);
        }
    }

    /// Evaluate one candidate pair with the batch conditions. `first`'s
    /// unfilled `tc` options mean "first such event is past t₂", which
    /// evaluates identically to the batch values (see module docs).
    fn eval_pair(&mut self, p: PendingPair) {
        let w = self
            .writes
            .get_mut(&p.write_id)
            .expect("pending ref keeps the write alive");
        w.refs -= 1;
        let freed = w.pruned && w.refs == 0;
        let wa = w.access;
        // Drain order makes the stored write the earlier element; on an
        // exact (t, rank) tie the sweep position (k) decides.
        let tie = (wa.t_start, wa.rank) == (p.second.t_start, p.second.rank);
        let w_first = !tie || w.k <= p.second_k;
        let (fa, fk, f_tc_close, f_tc_commit, sa, sk, s_to) = if w_first {
            (
                wa,
                w.k,
                w.tc_close,
                w.tc_commit,
                p.second,
                p.second_k,
                p.to2,
            )
        } else {
            (p.second, p.second_k, None, None, wa, w.k, w.to)
        };
        if freed {
            self.writes.remove(&p.write_id);
        }
        if fa.kind != AccessKind::Write {
            return; // write-after-read is not a potential conflict
        }
        // Condition 3 (commit) and condition 4 (session), as in
        // `conflict::conflicting` with default options.
        let on_commit = match f_tc_commit {
            Some(tc) => tc > sa.t_start,
            None => true,
        };
        let ordered = matches!(
            (f_tc_close, s_to),
            (Some(tc), Some(to)) if fa.t_start < tc && tc < to && to < sa.t_start
        );
        let on_session = !ordered;
        if on_session || on_commit {
            self.survivors.push(Survivor {
                file: fa.file,
                k_min: fk.min(sk),
                k_max: fk.max(sk),
                first: fa,
                second: sa,
                on_session,
                on_commit,
            });
        }
    }

    fn on_sync(&mut self, s: SyncEvent) {
        let rf = self.rf.entry((s.rank, s.file)).or_default();
        match s.kind {
            SyncKind::Open => {
                rf.last_open = Some(s.t);
                rf.open_fds += 1;
                // An open at exactly t₂, draining after the access it
                // belongs to, still counts as that access's `to` (the
                // batch table query is `<= t`): fix up pending pairs.
                for p in self.pending.iter_mut() {
                    if p.second.t_start > s.t {
                        break;
                    }
                    if p.second.rank == s.rank && p.second.file == s.file {
                        p.to2 = Some(s.t);
                    }
                }
            }
            SyncKind::Close => {
                rf.open_fds = rf.open_fds.saturating_sub(1);
                rf.last_close = Some(s.t);
                rf.last_commit = Some(s.t);
                for id in std::mem::take(&mut rf.waiting_close) {
                    if let Some(w) = self.writes.get_mut(&id) {
                        w.tc_close = Some(s.t);
                    }
                }
                for id in std::mem::take(&mut rf.waiting_commit) {
                    if let Some(w) = self.writes.get_mut(&id) {
                        w.tc_commit = Some(s.t);
                    }
                }
            }
            SyncKind::Commit => {
                rf.last_commit = Some(s.t);
                for id in std::mem::take(&mut rf.waiting_commit) {
                    if let Some(w) = self.writes.get_mut(&id) {
                        w.tc_commit = Some(s.t);
                    }
                }
            }
        }
    }

    fn on_access(&mut self, a: DataAccess) {
        // Pattern folds (exact: see module docs).
        let le = self.local_prev.insert((a.rank, a.file), a.end());
        if let Some(pe) = le {
            self.local_stats.add(classify_step(pe, a.offset));
        }
        let ge = self.global_prev.insert(a.file, a.end());
        if let Some(pe) = ge {
            self.global_stats.add(classify_step(pe, a.offset));
        }
        self.buckets
            .entry(a.file)
            .or_default()
            .add(&a, self.hl_opts);

        // Conflict candidates: this access against the file's live writes.
        let fs = self.files.entry(a.file).or_default();
        let k = (a.offset, a.end(), fs.next_seq);
        fs.next_seq += 1;
        let rf = self.rf.entry((a.rank, a.file)).or_default();
        let to2 = rf.last_open;
        for &id in &self.files[&a.file].matchable {
            let w = self.writes.get_mut(&id).expect("matchable writes live");
            let overlap = a.offset < w.access.end() && w.access.offset < a.end();
            if !overlap {
                continue;
            }
            w.refs += 1;
            self.pairs_checked += 1;
            if w.access.rank != a.rank {
                let rp = (w.access.rank.min(a.rank), w.access.rank.max(a.rank));
                self.overlap_rank_pairs.insert(rp);
            }
            self.pending.push_back(PendingPair {
                write_id: id,
                second: a,
                second_k: k,
                to2,
            });
        }

        if a.kind == AccessKind::Write {
            let rf = self.rf.entry((a.rank, a.file)).or_default();
            // Tie fill: a close/commit at exactly t₁ drained before this
            // write (per-rank FIFO) and is its `first_after`.
            let tc_close = rf.last_close.filter(|&t| t == a.t_start);
            let tc_commit = rf.last_commit.filter(|&t| t == a.t_start);
            let id = self.next_write_id;
            self.next_write_id += 1;
            if tc_close.is_none() {
                rf.waiting_close.push(id);
            }
            if tc_commit.is_none() {
                rf.waiting_commit.push(id);
            }
            let to = rf.last_open;
            self.writes.insert(
                id,
                WriteInfo {
                    access: a,
                    k,
                    to,
                    tc_close,
                    tc_commit,
                    refs: 0,
                    pruned: false,
                },
            );
            self.files
                .get_mut(&a.file)
                .expect("entry")
                .matchable
                .push(id);
            self.live_intervals += 1;
            self.peak_live_intervals = self.peak_live_intervals.max(self.live_intervals);
        }
    }

    /// Retire writes that can never conflict again under either model
    /// (see module docs for the exact conditions).
    fn prune(&mut self) {
        let Inner {
            nranks,
            writes,
            files,
            rf,
            live_intervals,
            pruned_intervals,
            ..
        } = self;
        for (&file, fs) in files.iter_mut() {
            if fs.matchable.is_empty() {
                continue;
            }
            // Oldest session still open on this file: a future access by a
            // rank holding an open fd inherits that open as its `to`.
            let mut floor: Option<u64> = None;
            for r in 0..*nranks {
                if let Some(st) = rf.get(&(r as u32, file)) {
                    if st.open_fds > 0 {
                        let lo = st.last_open.unwrap_or(0);
                        floor = Some(floor.map_or(lo, |f: u64| f.min(lo)));
                    }
                }
            }
            fs.matchable.retain(|id| {
                let w = writes.get_mut(id).expect("matchable writes live");
                let commit_dead = w.tc_commit.is_some();
                let session_dead = match w.tc_close {
                    Some(tc) if w.access.t_start < tc => floor.is_none_or(|f| f > tc),
                    _ => false,
                };
                if commit_dead && session_dead {
                    w.pruned = true;
                    if w.refs == 0 {
                        writes.remove(id);
                    }
                    *live_intervals -= 1;
                    *pruned_intervals += 1;
                    false
                } else {
                    true
                }
            });
        }
    }

    fn finalize(&mut self) -> IncrementalOutput {
        // Drain any residue (a rank that never reported done — e.g. a
        // run finalized early — is treated as finished).
        for r in 0..self.nranks {
            self.frontiers[r] = u64::MAX;
            self.done[r] = true;
        }
        self.drain();
        self.flush_pending(u64::MAX);

        let remap = std::mem::take(&mut self.remap);
        let m = |p: PathId| -> PathId {
            if remap.is_empty() {
                p
            } else {
                PathId(remap[p.0 as usize])
            }
        };

        let mut resolved = std::mem::take(&mut self.resolver).finish();
        for a in &mut resolved.accesses {
            a.file = m(a.file);
        }
        for s in &mut resolved.syncs {
            s.file = m(s.file);
        }

        // Replay surviving pairs in the batch sweep's emission order:
        // files in canonical PathId order, pairs by sweep position.
        let mut survivors = std::mem::take(&mut self.survivors);
        for sv in &mut survivors {
            sv.file = m(sv.file);
            sv.first.file = m(sv.first.file);
            sv.second.file = m(sv.second.file);
        }
        survivors.sort_by_key(|sv| (sv.file, sv.k_min, sv.k_max));
        let mut session = ConflictReport {
            model_checked: Some(AnalysisModel::Session),
            ..Default::default()
        };
        let mut commit = ConflictReport {
            model_checked: Some(AnalysisModel::Commit),
            ..Default::default()
        };
        let wrap = |a: DataAccess| ExtendedAccess {
            access: a,
            to: None,
            tc_close: None,
            tc_commit: None,
        };
        for sv in &survivors {
            let pair = classify_pair(sv.file, &wrap(sv.first), &wrap(sv.second));
            if sv.on_session {
                session.add(pair);
            }
            if sv.on_commit {
                commit.add(pair);
            }
        }

        let canonical: BTreeMap<PathId, FileBuckets> = std::mem::take(&mut self.buckets)
            .into_iter()
            .map(|(f, b)| (m(f), b))
            .collect();
        let highlevel = classify_from_buckets(canonical.into_iter(), self.nranks as u32);

        if obs::metrics_enabled() {
            let mx = obs::metrics();
            mx.add("core.incremental.pairs_checked", self.pairs_checked);
            mx.add("core.incremental.pruned_intervals", self.pruned_intervals);
            mx.observe(
                "core.incremental.peak_live_intervals",
                self.peak_live_intervals,
            );
        }

        IncrementalOutput {
            resolved,
            session,
            commit,
            local: self.local_stats,
            global: self.global_stats,
            highlevel,
            peak_live_intervals: self.peak_live_intervals,
            pairs_checked: self.pairs_checked,
            overlap_rank_pairs: std::mem::take(&mut self.overlap_rank_pairs)
                .into_iter()
                .collect(),
            pruned_intervals: self.pruned_intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::offset::{flag_bits, resolve};
    use recorder::{Func, Layer, TraceSet};

    fn posix(rank: u32, t: u64, func: Func) -> Record {
        Record {
            t_start: t,
            t_end: t + 1,
            rank,
            layer: Layer::Posix,
            origin: Layer::App,
            func,
        }
    }

    /// Two ranks sharing a file with overlapping writes and session
    /// opens/closes — enough structure to exercise pairs, tc fill, and
    /// pattern folds.
    fn sample_trace() -> TraceSet {
        let p = PathId(0);
        let flags = flag_bits::READ | flag_bits::WRITE | flag_bits::CREATE;
        TraceSet {
            paths: vec!["/f".into()],
            ranks: vec![
                vec![
                    posix(
                        0,
                        10,
                        Func::Open {
                            path: p,
                            flags,
                            fd: 3,
                        },
                    ),
                    posix(0, 20, Func::Write { fd: 3, count: 100 }),
                    posix(0, 40, Func::Fsync { fd: 3 }),
                    posix(0, 60, Func::Write { fd: 3, count: 50 }),
                    posix(0, 90, Func::Close { fd: 3 }),
                ],
                vec![
                    posix(
                        1,
                        15,
                        Func::Open {
                            path: p,
                            flags,
                            fd: 3,
                        },
                    ),
                    posix(
                        1,
                        30,
                        Func::Read {
                            fd: 3,
                            count: 80,
                            ret: 80,
                        },
                    ),
                    posix(
                        1,
                        70,
                        Func::Pwrite {
                            fd: 3,
                            offset: 120,
                            count: 40,
                        },
                    ),
                    posix(1, 95, Func::Close { fd: 3 }),
                ],
            ],
            skews_ns: vec![0, 0],
        }
    }

    fn feed(trace: &TraceSet, chunk: usize) -> IncrementalOutput {
        let an = StreamingAnalyzer::new(trace.nranks());
        for (r, records) in trace.ranks.iter().enumerate() {
            for c in records.chunks(chunk.max(1)) {
                let frontier = c.last().map_or(0, |x| x.t_start);
                an.push(r as u32, c, frontier);
            }
            an.rank_done(r as u32);
        }
        an.finalize()
    }

    #[test]
    fn matches_batch_on_sample() {
        let trace = sample_trace();
        let resolved = resolve(&trace);
        let ctx = crate::context::AnalysisContext::new(&resolved);
        let fused = ctx.fused_conflicts();
        for chunk in [1usize, 2, 3, 100] {
            let inc = feed(&trace, chunk);
            assert_eq!(inc.resolved, resolved, "chunk={chunk}");
            assert_eq!(inc.session, fused.session, "chunk={chunk}");
            assert_eq!(inc.commit, fused.commit, "chunk={chunk}");
            assert_eq!(inc.local, ctx.local_pattern(), "chunk={chunk}");
            assert_eq!(inc.global, ctx.global_pattern(), "chunk={chunk}");
        }
    }

    #[test]
    fn pruning_is_observation_only() {
        // Injecting epoch_released at every possible point never changes
        // the outputs, only the peak live-interval count.
        let trace = sample_trace();
        let resolved = resolve(&trace);
        let ctx = crate::context::AnalysisContext::new(&resolved);
        let fused = ctx.fused_conflicts();
        let an = StreamingAnalyzer::new(trace.nranks());
        let mut epoch = 0;
        for (r, records) in trace.ranks.iter().enumerate() {
            for rec in records {
                an.push(r as u32, std::slice::from_ref(rec), rec.t_start);
                an.epoch_released(epoch);
                epoch += 1;
            }
            an.rank_done(r as u32);
            an.epoch_released(epoch);
            epoch += 1;
        }
        let inc = an.finalize();
        assert_eq!(inc.session, fused.session);
        assert_eq!(inc.commit, fused.commit);
        assert_eq!(inc.resolved, resolved);
    }

    #[test]
    fn memory_bounded_by_live_epochs_not_trace_length() {
        // Many ranks cycling open/overlapping-write/close across many
        // epochs: the batch pipeline holds every access of the trace
        // (O(trace)); the streaming conflict store must stay bounded by
        // the intervals live in the current epoch (O(ranks)), regardless
        // of how long the trace grows.
        let p = PathId(0);
        let flags = flag_bits::READ | flag_bits::WRITE | flag_bits::CREATE;
        let (nranks, epochs) = (8u32, 128u64);
        let an = StreamingAnalyzer::new(nranks);
        for e in 0..epochs {
            let base = e * 1_000;
            for r in 0..nranks {
                let t = base + r as u64 * 10;
                // Writes overlap the neighbouring rank's range, so every
                // epoch also exercises pending-pair bookkeeping.
                let recs = vec![
                    posix(
                        r,
                        t + 1,
                        Func::Open {
                            path: p,
                            flags,
                            fd: 3,
                        },
                    ),
                    posix(
                        r,
                        t + 2,
                        Func::Pwrite {
                            fd: 3,
                            offset: r as u64 * 64,
                            count: 96,
                        },
                    ),
                    posix(r, t + 3, Func::Close { fd: 3 }),
                ];
                an.push(r, &recs, base + 900);
            }
            an.epoch_released(e);
        }
        for r in 0..nranks {
            an.rank_done(r);
        }
        let inc = an.finalize();
        let total = (nranks as u64) * epochs;
        assert_eq!(inc.resolved.accesses.len() as u64, total);
        assert!(
            inc.peak_live_intervals <= 3 * nranks as u64,
            "peak live intervals {} not O(ranks) for a {}-access trace",
            inc.peak_live_intervals,
            total
        );
        assert!(inc.pruned_intervals >= total - 2 * nranks as u64);
        assert!(inc.pairs_checked > 0, "overlaps must have been enumerated");
    }

    #[test]
    fn closed_epochs_prune_live_intervals() {
        // Repeated open/write/close/epoch cycles: the live-interval count
        // must stay flat instead of growing with the trace.
        let p = PathId(0);
        let flags = flag_bits::WRITE | flag_bits::CREATE;
        let an = StreamingAnalyzer::new(1);
        let rounds = 64u64;
        for i in 0..rounds {
            let base = i * 100;
            let recs = vec![
                posix(
                    0,
                    base + 1,
                    Func::Open {
                        path: p,
                        flags,
                        fd: 3,
                    },
                ),
                posix(0, base + 10, Func::Write { fd: 3, count: 10 }),
                posix(0, base + 20, Func::Close { fd: 3 }),
            ];
            an.push(0, &recs, base + 90);
            an.epoch_released(i);
        }
        an.rank_done(0);
        let inc = an.finalize();
        assert!(
            inc.peak_live_intervals <= 3,
            "peak {} should be O(1) across {} closed epochs",
            inc.peak_live_intervals,
            rounds
        );
        assert!(inc.pruned_intervals >= rounds - 2);
    }
}
