//! High-level access-pattern classification (Table 3).
//!
//! `X-Y` notation: X is how many processes perform data I/O (`N` = all,
//! `M` = a proper subset, `1` = one), Y how many files they touch. The
//! shape is **consecutive** (each stream is one contiguous run),
//! **strided** (each process owns one region of a shared file, region
//! starts arithmetic in process order — `offset ≈ a·i + b`), or
//! **strided-cyclic** (processes own one region per round, rounds
//! regularly spaced). "A small amount of extra metadata introduced by the
//! I/O library" is excluded via a size threshold, as the paper's
//! definition allows.

use std::collections::BTreeMap;

use recorder::{DataAccess, PathId, ResolvedTrace};

use crate::overlap::FileGroups;

/// One letter of the X-Y pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Letter {
    N,
    M,
    One,
}

impl Letter {
    pub fn symbol(self) -> &'static str {
        match self {
            Letter::N => "N",
            Letter::M => "M",
            Letter::One => "1",
        }
    }
}

/// Shape of the accesses (Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    Consecutive,
    Strided,
    StridedCyclic,
    Irregular,
}

impl ShapeClass {
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Consecutive => "consecutive",
            ShapeClass::Strided => "strided",
            ShapeClass::StridedCyclic => "strided cyclic",
            ShapeClass::Irregular => "irregular",
        }
    }
}

/// The fitted parameters of a strided pattern: the `i`-th participating
/// process accesses offset `a·i + b` (§6.2: "at each I/O phase, process i
/// accesses the file at offset ai + b").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideFit {
    /// Inter-process stride `a` (0 for fully-overlapping streams).
    pub a: u64,
    /// Base offset `b`.
    pub b: u64,
    /// Cycle pitch between rounds (strided-cyclic only).
    pub cycle: Option<u64>,
}

/// Classification of one file.
#[derive(Debug, Clone)]
pub struct FilePattern {
    pub file: PathId,
    /// Distinct ranks with (above-threshold) data accesses, sorted.
    pub writers: Vec<u32>,
    pub shape: ShapeClass,
    pub bytes: u64,
    /// For strided / strided-cyclic files: the fitted `a·i + b` parameters.
    pub stride: Option<StrideFit>,
}

/// The result: per-file classifications plus the dominant overall label.
#[derive(Debug, Clone)]
pub struct HighLevelReport {
    pub per_file: Vec<FilePattern>,
    pub x: Letter,
    pub y: Letter,
    pub shape: ShapeClass,
    /// Ranks participating in the dominant file group.
    pub participating_ranks: u32,
    /// Files in the dominant group.
    pub group_files: u32,
}

impl HighLevelReport {
    /// `"N-1 strided"`-style label.
    pub fn label(&self) -> String {
        format!(
            "{}-{} {}",
            self.x.symbol(),
            self.y.symbol(),
            self.shape.name()
        )
    }

    pub fn xy(&self) -> String {
        format!("{}-{}", self.x.symbol(), self.y.symbol())
    }
}

/// Options for the classifier.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyOptions {
    /// Ignore accesses smaller than this (library metadata).
    pub meta_threshold: u64,
}

impl Default for ClassifyOptions {
    fn default() -> Self {
        ClassifyOptions {
            meta_threshold: 512,
        }
    }
}

/// A maximal contiguous region written by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    start: u64,
    end: u64,
}

/// Coalesce one rank's stream (in time order) into contiguous regions.
/// Regions merge only while accesses are exactly consecutive.
fn regions_of(stream: &[(u64, u64)]) -> Vec<Region> {
    let mut regions: Vec<Region> = Vec::new();
    for &(off, len) in stream {
        match regions.last_mut() {
            Some(r) if r.end == off => r.end = off + len,
            _ => regions.push(Region {
                start: off,
                end: off + len,
            }),
        }
    }
    regions
}

/// Are `starts` an arithmetic progression (stride may be zero — fully
/// overlapping streams like LBANN's whole-file reads)?
fn arithmetic(starts: &[u64]) -> bool {
    if starts.len() < 2 {
        return true;
    }
    let d = starts[1].wrapping_sub(starts[0]);
    starts.windows(2).all(|w| w[1].wrapping_sub(w[0]) == d)
}

fn classify_file(per_writer: &BTreeMap<u32, Vec<(u64, u64)>>) -> (ShapeClass, Option<StrideFit>) {
    // Single-accessor file: classify by stream continuity. Small allocation
    // gaps (HDF5 headers/alignment) make transitions monotonic rather than
    // strictly consecutive; both count as in-order here — Table 3 has no
    // finer bucket for unshared files.
    if per_writer.len() == 1 {
        let stream = per_writer.values().next().expect("one writer");
        let mut in_order = 0u64;
        let mut random = 0u64;
        let mut prev_end: Option<u64> = None;
        for &(off, len) in stream {
            if let Some(pe) = prev_end {
                if off >= pe {
                    in_order += 1;
                } else {
                    random += 1;
                }
            }
            prev_end = Some(off + len);
        }
        return if random * 4 <= in_order + random {
            (ShapeClass::Consecutive, None)
        } else {
            (ShapeClass::Irregular, None)
        };
    }

    let regions: Vec<(u32, Vec<Region>)> = per_writer
        .iter()
        .map(|(&r, s)| (r, regions_of(s)))
        .collect();

    // Consecutive: every writer produced exactly one contiguous region,
    // and either the file is unshared or all streams cover the same range
    // from the same start (e.g., everyone reads the whole file).
    let all_single = regions.iter().all(|(_, rs)| rs.len() == 1);
    if all_single {
        let starts: Vec<u64> = regions.iter().map(|(_, rs)| rs[0].start).collect();
        if regions.len() == 1 || starts.iter().all(|&s| s == starts[0]) {
            return (ShapeClass::Consecutive, None);
        }
        // One region per writer at distinct offsets: strided if arithmetic
        // in writer order.
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        return if arithmetic(&sorted) {
            let a = if sorted.len() > 1 {
                sorted[1] - sorted[0]
            } else {
                0
            };
            (
                ShapeClass::Strided,
                Some(StrideFit {
                    a,
                    b: sorted[0],
                    cycle: None,
                }),
            )
        } else {
            (ShapeClass::Irregular, None)
        };
    }

    // Multiple regions per writer: look for per-round stridedness.
    let k = regions[0].1.len();
    if !regions.iter().all(|(_, rs)| rs.len() == k) {
        return (ShapeClass::Irregular, None);
    }
    let mut fit = StrideFit {
        a: 0,
        b: u64::MAX,
        cycle: None,
    };
    for round in 0..k {
        let mut starts: Vec<u64> = regions.iter().map(|(_, rs)| rs[round].start).collect();
        starts.sort_unstable();
        if !arithmetic(&starts) {
            return (ShapeClass::Irregular, None);
        }
        if round == 0 {
            fit.a = if starts.len() > 1 {
                starts[1] - starts[0]
            } else {
                0
            };
            fit.b = starts[0];
        }
    }
    // Cyclic if every writer's rounds are equally spaced with a common
    // cycle length.
    let cycle = regions[0].1[1].start - regions[0].1[0].start;
    let cyclic = regions
        .iter()
        .all(|(_, rs)| rs.windows(2).all(|w| w[1].start - w[0].start == cycle));
    if cyclic {
        fit.cycle = Some(cycle);
        (ShapeClass::StridedCyclic, Some(fit))
    } else {
        (ShapeClass::Strided, Some(fit))
    }
}

/// Classify a resolved trace. `nranks` is the world size (needed to tell
/// `N` from `M`).
pub fn classify(resolved: &ResolvedTrace, nranks: u32) -> HighLevelReport {
    classify_opt(resolved, nranks, ClassifyOptions::default())
}

/// Classify with explicit options.
pub fn classify_opt(
    resolved: &ResolvedTrace,
    nranks: u32,
    opts: ClassifyOptions,
) -> HighLevelReport {
    classify_grouped(
        &resolved.accesses,
        &FileGroups::new(&resolved.accesses),
        nranks,
        opts,
    )
}

/// Classify over a prebuilt [`FileGroups`] — the shared grouping of
/// [`crate::context::AnalysisContext`]. Groups iterate in [`PathId`]
/// order with input (time) order inside each group, the same file/stream
/// order the map-based bucketing produced, so the report is identical.
pub fn classify_grouped(
    accesses: &[DataAccess],
    groups: &FileGroups,
    nranks: u32,
    opts: ClassifyOptions,
) -> HighLevelReport {
    let buckets = groups.iter().map(|(file, idxs)| {
        let mut b = FileBuckets::default();
        for &i in idxs {
            b.add(&accesses[i as usize], opts);
        }
        (file, b)
    });
    classify_from_buckets(buckets, nranks)
}

/// Per-file, per-direction accumulation state: above-threshold accesses
/// bucketed per rank in arrival (time) order. Each file is classified by
/// its *dominant* direction (LBANN's dataset is written once by rank 0 but
/// read in full by every rank — the reads are its pattern). Exposed so the
/// incremental analyzer can accumulate buckets online and finish through
/// the exact same [`classify_from_buckets`] the batch path uses.
#[derive(Debug, Clone, Default)]
pub struct FileBuckets {
    /// `[writes, reads]`, each rank → `(offset, len)` stream in time order.
    dirs: [BTreeMap<u32, Vec<(u64, u64)>>; 2],
    dir_bytes: [u64; 2],
}

impl FileBuckets {
    /// Account one access (below-threshold accesses are ignored, as
    /// library metadata).
    pub fn add(&mut self, a: &DataAccess, opts: ClassifyOptions) {
        if a.len < opts.meta_threshold {
            return;
        }
        let d = match a.kind {
            recorder::AccessKind::Write => 0,
            recorder::AccessKind::Read => 1,
        };
        self.dirs[d]
            .entry(a.rank)
            .or_default()
            .push((a.offset, a.len));
        self.dir_bytes[d] += a.len;
    }

    pub fn is_empty(&self) -> bool {
        self.dirs[0].is_empty() && self.dirs[1].is_empty()
    }
}

/// Finish the Table 3 classification from per-file buckets supplied in
/// [`PathId`] order. Files whose buckets are empty (only library metadata)
/// are skipped, as in the batch pass.
pub fn classify_from_buckets(
    buckets: impl Iterator<Item = (PathId, FileBuckets)>,
    nranks: u32,
) -> HighLevelReport {
    let mut per_file: Vec<FilePattern> = Vec::new();
    for (file, b) in buckets {
        if b.is_empty() {
            continue; // only below-threshold (library metadata) accesses
        }
        let [w, r] = b.dir_bytes;
        let (dominant, total) = if w >= r { (0, w) } else { (1, r) };
        let [writes, reads] = b.dirs;
        let per_writer = if dominant == 0 { writes } else { reads };
        let (shape, stride) = classify_file(&per_writer);
        per_file.push(FilePattern {
            file,
            writers: per_writer.keys().copied().collect(),
            shape,
            bytes: total,
            stride,
        });
    }

    // Group files by (shape, writer count) and pick the group with the
    // most bytes as the application's dominant pattern.
    let mut groups: BTreeMap<(u8, usize), (u64, Vec<&FilePattern>)> = BTreeMap::new();
    for fp in &per_file {
        let shape_key = match fp.shape {
            ShapeClass::Consecutive => 0u8,
            ShapeClass::Strided => 1,
            ShapeClass::StridedCyclic => 2,
            ShapeClass::Irregular => 3,
        };
        let e = groups
            .entry((shape_key, fp.writers.len()))
            .or_insert((0, Vec::new()));
        e.0 += fp.bytes;
        e.1.push(fp);
    }
    let dominant = groups.into_values().max_by_key(|(b, _)| *b);

    let (x, y, shape, participating, nfiles) = match dominant {
        None => (Letter::One, Letter::One, ShapeClass::Consecutive, 0, 0),
        Some((_, group)) => {
            let mut union: Vec<u32> = group.iter().flat_map(|fp| fp.writers.clone()).collect();
            union.sort_unstable();
            union.dedup();
            let w = union.len() as u32;
            let writers_per_file = group.iter().map(|fp| fp.writers.len()).max().unwrap_or(0);
            let x = if w >= nranks {
                Letter::N
            } else if w == 1 {
                Letter::One
            } else {
                Letter::M
            };
            let y = if writers_per_file <= 1 {
                x // unshared: one file (set) per writer
            } else if writers_per_file as u32 == w {
                Letter::One // every writer shares the file
            } else {
                Letter::M // groups of writers share each file
            };
            let shape = group[0].shape;
            (x, y, shape, w, group.len() as u32)
        }
    };

    HighLevelReport {
        per_file,
        x,
        y,
        shape,
        participating_ranks: participating,
        group_files: nfiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{AccessKind, DataAccess, Layer};

    fn acc(rank: u32, t: u64, file: u32, offset: u64, len: u64) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: PathId(file),
            offset,
            len,
            kind: AccessKind::Write,
            origin: Layer::App,
            fd: 3,
        }
    }

    fn resolved(accesses: Vec<DataAccess>) -> ResolvedTrace {
        ResolvedTrace {
            accesses,
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        }
    }

    #[test]
    fn n_n_consecutive() {
        // 4 ranks, each appending to its own file.
        let mut a = Vec::new();
        for r in 0..4u32 {
            a.push(acc(r, r as u64, r, 0, 1024));
            a.push(acc(r, 10 + r as u64, r, 1024, 1024));
        }
        let rep = classify(&resolved(a), 4);
        assert_eq!(rep.label(), "N-N consecutive");
    }

    #[test]
    fn n_1_strided() {
        // 4 ranks, one shared file, one region per rank at rank*4096.
        let a: Vec<DataAccess> = (0..4u32)
            .map(|r| acc(r, r as u64, 0, r as u64 * 4096, 4096))
            .collect();
        let rep = classify(&resolved(a), 4);
        assert_eq!(rep.label(), "N-1 strided");
    }

    #[test]
    fn m_1_strided_cyclic() {
        // 2 of 8 ranks write a shared file in 3 rounds with a fixed cycle.
        let mut a = Vec::new();
        let cycle = 8192u64;
        for round in 0..3u64 {
            for (i, r) in [0u32, 4].iter().enumerate() {
                a.push(acc(
                    *r,
                    round * 10 + *r as u64,
                    0,
                    round * cycle + i as u64 * 2048,
                    2048,
                ));
            }
        }
        let rep = classify(&resolved(a), 8);
        assert_eq!(rep.label(), "M-1 strided cyclic");
        // The fitted parameters: offset = 2048·i + 0, cycle 8192.
        let fit = rep.per_file[0].stride.expect("cyclic pattern has a fit");
        assert_eq!(
            fit,
            StrideFit {
                a: 2048,
                b: 0,
                cycle: Some(8192)
            }
        );
    }

    #[test]
    fn stride_fit_for_plain_strided() {
        let a: Vec<DataAccess> = (0..4u32)
            .map(|r| acc(r, r as u64, 0, 100 + r as u64 * 4096, 4096))
            .collect();
        let rep = classify(&resolved(a), 4);
        let fit = rep.per_file[0].stride.expect("strided pattern has a fit");
        assert_eq!(
            fit,
            StrideFit {
                a: 4096,
                b: 100,
                cycle: None
            }
        );
        // Consecutive files carry no fit.
        let c = vec![acc(0, 1, 0, 0, 4096)];
        let rep = classify(&resolved(c), 4);
        assert_eq!(rep.per_file[0].stride, None);
    }

    #[test]
    fn rounds_strided_but_irregular_cycle_is_strided() {
        // Per-round strided, but round spacing varies (FLASH-nofbs-like).
        let mut a = Vec::new();
        let round_starts = [0u64, 10_000, 50_000]; // irregular pitch
        for (j, base) in round_starts.iter().enumerate() {
            for r in 0..4u32 {
                a.push(acc(
                    r,
                    j as u64 * 10 + r as u64,
                    0,
                    base + r as u64 * 2048,
                    2048,
                ));
            }
        }
        let rep = classify(&resolved(a), 4);
        assert_eq!(rep.label(), "N-1 strided");
    }

    #[test]
    fn shared_whole_file_reads_are_consecutive() {
        // LBANN: every rank reads the whole file from 0 in two chunks.
        let mut a = Vec::new();
        for r in 0..4u32 {
            a.push(acc(r, r as u64, 0, 0, 4096));
            a.push(acc(r, 10 + r as u64, 0, 4096, 4096));
        }
        let rep = classify(&resolved(a), 4);
        assert_eq!(rep.label(), "N-1 consecutive");
    }

    #[test]
    fn n_m_when_groups_share_files() {
        // 8 ranks, 2 files, 4 writers each at strided offsets.
        let mut a = Vec::new();
        for r in 0..8u32 {
            let file = r / 4;
            let slot = (r % 4) as u64;
            a.push(acc(r, r as u64, file, slot * 4096, 4096));
        }
        let rep = classify(&resolved(a), 8);
        assert_eq!(rep.xy(), "N-M");
        assert_eq!(rep.shape, ShapeClass::Strided);
    }

    #[test]
    fn one_one_single_writer() {
        let a = vec![acc(0, 1, 0, 0, 4096), acc(0, 2, 0, 4096, 4096)];
        let rep = classify(&resolved(a), 64);
        assert_eq!(rep.label(), "1-1 consecutive");
    }

    #[test]
    fn metadata_below_threshold_ignored() {
        // Strided big writes plus tiny metadata writes at offset 0 from
        // many ranks: metadata must not change the classification.
        let mut a = Vec::new();
        for r in 0..4u32 {
            a.push(acc(r, r as u64, 0, r as u64 * 8192, 8192));
            a.push(acc(r, 100 + r as u64, 0, 0, 64)); // metadata
        }
        let rep = classify(&resolved(a), 4);
        assert_eq!(rep.label(), "N-1 strided");
    }

    #[test]
    fn dominant_group_wins() {
        // Big N-1 strided checkpoint + small 1-1 log file.
        let mut a = Vec::new();
        for r in 0..4u32 {
            a.push(acc(r, r as u64, 0, r as u64 * 65536, 65536));
        }
        a.push(acc(0, 100, 1, 0, 1024));
        let rep = classify(&resolved(a), 4);
        assert_eq!(rep.xy(), "N-1");
    }
}
