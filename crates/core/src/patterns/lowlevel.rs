//! Low-level access classification (Figure 1).
//!
//! With `oᵢ`/`nᵢ` the offset and byte count of the *i*-th access of a
//! stream (§6.2): an access is **consecutive** if `oᵢ₊₁ = oᵢ + nᵢ`,
//! **monotonic** if `oᵢ₊₁ > oᵢ + nᵢ`, and **random** otherwise. The first
//! access of each stream has no predecessor and is not classified. The
//! *local* view streams accesses per `(rank, file)`; the *global* view
//! streams them per file in global (adjusted) time order — "the global
//! pattern is likely to appear more random than the local pattern since
//! the I/O requests from concurrent processes are interleaved in time".

use recorder::{DataAccess, ResolvedTrace};

/// Classification of one access relative to its predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    Consecutive,
    Monotonic,
    Random,
}

/// Counts of classified accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternStats {
    pub consecutive: u64,
    pub monotonic: u64,
    pub random: u64,
}

impl PatternStats {
    pub fn total(&self) -> u64 {
        self.consecutive + self.monotonic + self.random
    }

    pub fn pct(&self, class: AccessClass) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let n = match class {
            AccessClass::Consecutive => self.consecutive,
            AccessClass::Monotonic => self.monotonic,
            AccessClass::Random => self.random,
        };
        100.0 * n as f64 / t as f64
    }

    pub fn add(&mut self, class: AccessClass) {
        match class {
            AccessClass::Consecutive => self.consecutive += 1,
            AccessClass::Monotonic => self.monotonic += 1,
            AccessClass::Random => self.random += 1,
        }
    }

    pub fn merge(&mut self, other: &PatternStats) {
        self.consecutive += other.consecutive;
        self.monotonic += other.monotonic;
        self.random += other.random;
    }
}

/// Classify one access against its stream predecessor's end offset —
/// the single step every variant (batch, zero-copy sorted, incremental)
/// folds over.
#[inline]
pub fn classify_step(prev_end: u64, offset: u64) -> AccessClass {
    if offset == prev_end {
        AccessClass::Consecutive
    } else if offset > prev_end {
        AccessClass::Monotonic
    } else {
        AccessClass::Random
    }
}

/// Classify one ordered stream of `(offset, len)` accesses.
pub fn classify_stream(stream: impl IntoIterator<Item = (u64, u64)>) -> PatternStats {
    let mut stats = PatternStats::default();
    let mut prev_end: Option<u64> = None;
    for (offset, len) in stream {
        if let Some(pe) = prev_end {
            stats.add(classify_step(pe, offset));
        }
        prev_end = Some(offset + len);
    }
    stats
}

/// Classify all streams of one sorted index order in a single pass: a
/// stream boundary is wherever `stream_key` changes. Zero-copy — one index
/// sort over the original access slice instead of one `Vec` per stream.
fn classify_sorted<K: PartialEq>(
    accesses: &[DataAccess],
    order: &[u32],
    stream_key: impl Fn(&DataAccess) -> K,
) -> PatternStats {
    let mut stats = PatternStats::default();
    let mut prev: Option<(K, u64)> = None; // (stream key, prev end offset)
    for &i in order {
        let a = &accesses[i as usize];
        let key = stream_key(a);
        if let Some((pk, pe)) = &prev {
            if *pk == key {
                stats.add(classify_step(*pe, a.offset));
            }
        }
        prev = Some((key, a.offset + a.len));
    }
    stats
}

/// Classify the local streams of a prebuilt `(rank, file)`-sorted order
/// (stable over input/time order) — the entry point
/// [`crate::context::AnalysisContext`] uses to share its index.
pub(crate) fn classify_local_in(accesses: &[DataAccess], order: &[u32]) -> PatternStats {
    classify_sorted(accesses, order, |a| (a.rank, a.file))
}

/// Classify the global streams of a prebuilt `(file, t_start, rank)`-sorted
/// order.
pub(crate) fn classify_global_in(accesses: &[DataAccess], order: &[u32]) -> PatternStats {
    classify_sorted(accesses, order, |a| a.file)
}

/// Figure 1(b): the local pattern, streaming accesses per `(rank, file)`.
pub fn local_pattern(resolved: &ResolvedTrace) -> PatternStats {
    let accs = &resolved.accesses;
    let mut order: Vec<u32> = (0..accs.len() as u32).collect();
    // Stable: within a (rank, file) stream the input (time) order holds.
    order.sort_by_key(|&i| (accs[i as usize].rank, accs[i as usize].file));
    classify_local_in(accs, &order)
}

/// Figure 1(a): the global pattern, streaming accesses per file in global
/// (adjusted) time order.
pub fn global_pattern(resolved: &ResolvedTrace) -> PatternStats {
    let accs = &resolved.accesses;
    let mut order: Vec<u32> = (0..accs.len() as u32).collect();
    order.sort_by_key(|&i| {
        let a = &accs[i as usize];
        (a.file, a.t_start, a.rank)
    });
    classify_global_in(accs, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{AccessKind, Layer, PathId};

    #[test]
    fn stream_classification() {
        // 0..10, 10..20 (consecutive), 30..40 (monotonic), 5..15 (random).
        let s = classify_stream(vec![(0, 10), (10, 10), (30, 10), (5, 10)]);
        assert_eq!(
            s,
            PatternStats {
                consecutive: 1,
                monotonic: 1,
                random: 1
            }
        );
        assert!((s.pct(AccessClass::Random) - 33.333).abs() < 0.01);
    }

    #[test]
    fn single_access_stream_has_no_classification() {
        assert_eq!(classify_stream(vec![(5, 10)]).total(), 0);
        assert_eq!(classify_stream(Vec::new()).total(), 0);
    }

    fn acc(rank: u32, t: u64, file: u32, offset: u64, len: u64) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: PathId(file),
            offset,
            len,
            kind: AccessKind::Write,
            origin: Layer::App,
            fd: 3,
        }
    }

    #[test]
    fn local_consecutive_can_be_globally_random() {
        // Two ranks each write consecutively to a shared file, interleaved
        // in time — the LBANN/FLASH-nofbs effect.
        let resolved = ResolvedTrace {
            accesses: vec![
                acc(0, 1, 0, 0, 10),
                acc(1, 2, 0, 100, 10),
                acc(0, 3, 0, 10, 10),
                acc(1, 4, 0, 110, 10),
            ],
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        let local = local_pattern(&resolved);
        assert_eq!(
            local,
            PatternStats {
                consecutive: 2,
                monotonic: 0,
                random: 0
            }
        );
        let global = global_pattern(&resolved);
        assert_eq!(global.random, 1, "interleaving introduces a backwards jump");
        assert!(global.random > 0 || global.monotonic > 0);
    }

    #[test]
    fn separate_files_are_separate_streams() {
        let resolved = ResolvedTrace {
            accesses: vec![
                acc(0, 1, 0, 0, 10),
                acc(0, 2, 1, 0, 10),
                acc(0, 3, 0, 10, 10),
            ],
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        let local = local_pattern(&resolved);
        // file 0: 0..10 then 10..20 (consecutive); file 1: single access.
        assert_eq!(
            local,
            PatternStats {
                consecutive: 1,
                monotonic: 0,
                random: 0
            }
        );
    }
}
