//! Access-pattern analysis (§4, §6.2).
//!
//! * [`lowlevel`] — Figure 1: the consecutive / monotonic / random
//!   percentages, from the local (per-process) and global (PFS-side)
//!   perspectives.
//! * [`highlevel`] — Table 3: the X–Y process/file pattern (N-N, N-1,
//!   M-M, M-1, N-M, 1-1) and the consecutive / strided / strided-cyclic
//!   shape.

pub mod highlevel;
pub mod lowlevel;

pub use highlevel::{classify, FilePattern, HighLevelReport, Letter, ShapeClass};
pub use lowlevel::{global_pattern, local_pattern, AccessClass, PatternStats};
