//! Happens-before validation (§5.2).
//!
//! The conflict detector orders operations by (adjusted) timestamps. The
//! paper validates that this is sound by rebuilding the execution order
//! imposed by communication — "we matched sends to receives and collective
//! function invocations" — and checking that for every conflicting pair,
//! the earlier-timestamped operation also happens-before the later one:
//! the program's synchronization, not the clock, enforces the order.
//!
//! The index here answers `happens_before((r₁,t₁), (r₂,t₂))` queries by a
//! single forward pass over the time-sorted synchronization edges,
//! computing for every rank the earliest local time that is reachable
//! from the source event:
//!
//! * a send posted by a reached rank *after* its reach time makes the
//!   receiver reached at the receive's completion;
//! * a barrier entered by a reached rank makes *all* participants reached
//!   at the barrier exit.

use std::collections::HashMap;

use recorder::{Func, Layer, TraceSet};

/// Happens-before index over one (adjusted) trace.
pub struct HbIndex {
    nranks: usize,
    /// Message edges sorted by send time.
    messages: Vec<(u64, u32, u32, u64)>, // (t_send, src, dst, t_recv_end)
    /// Barrier participations: per epoch, per-rank enter times and the
    /// common exit time.
    barriers: Vec<BarrierEpoch>,
    /// Barrier fast path: per rank, `(enter, exit)` of every epoch the
    /// rank participated in, ascending in both components (a rank enters
    /// epochs in program order and epochs retire in order). If some epoch
    /// has `enter[r1] >= t1` and `exit <= t2` then a full barrier
    /// separates the two events and `(r1,t1)` happens-before `(r2,t2)`
    /// for *any* `r2` — no fixpoint needed.
    rank_epochs: Vec<Vec<(u64, u64)>>,
}

#[derive(Debug, Clone)]
struct BarrierEpoch {
    enter: Vec<Option<u64>>,
    exit: u64,
}

impl HbIndex {
    /// Build from a trace (use the barrier-adjusted trace so query
    /// timestamps match the conflict detector's).
    pub fn build(trace: &TraceSet) -> Self {
        let nranks = trace.ranks.len();
        // Match sends to receives by sequence number.
        let mut send_at: HashMap<u64, (u32, u64)> = HashMap::new();
        let mut recv_at: HashMap<u64, (u32, u64)> = HashMap::new();
        let mut barrier_events: HashMap<u64, BarrierEpoch> = HashMap::new();
        for rec in trace.ranks.iter().flatten() {
            if rec.layer != Layer::Mpi {
                continue;
            }
            match rec.func {
                Func::MpiSend { seq, .. } => {
                    send_at.insert(seq, (rec.rank, rec.t_start));
                }
                Func::MpiRecv { seq, .. } => {
                    recv_at.insert(seq, (rec.rank, rec.t_end));
                }
                Func::MpiBarrier { epoch } => {
                    let e = barrier_events.entry(epoch).or_insert_with(|| BarrierEpoch {
                        enter: vec![None; nranks],
                        exit: 0,
                    });
                    e.enter[rec.rank as usize] = Some(rec.t_start);
                    e.exit = e.exit.max(rec.t_end);
                }
                _ => {}
            }
        }
        let mut messages: Vec<(u64, u32, u32, u64)> = send_at
            .iter()
            .filter_map(|(seq, &(src, t_send))| {
                recv_at
                    .get(seq)
                    .map(|&(dst, t_recv_end)| (t_send, src, dst, t_recv_end))
            })
            .collect();
        messages.sort_unstable();
        let mut epochs: Vec<u64> = barrier_events.keys().copied().collect();
        epochs.sort_unstable();
        let barriers: Vec<BarrierEpoch> = epochs
            .into_iter()
            .map(|e| barrier_events.remove(&e).expect("epoch"))
            .collect();
        let mut rank_epochs = vec![Vec::new(); nranks];
        for b in &barriers {
            for (r, &e) in b.enter.iter().enumerate() {
                if let Some(enter) = e {
                    rank_epochs[r].push((enter, b.exit));
                }
            }
        }
        // Epoch numbering follows program order, but sort defensively so
        // the binary search below never relies on an unproven invariant.
        for v in &mut rank_epochs {
            v.sort_unstable();
        }
        HbIndex {
            nranks,
            messages,
            barriers,
            rank_epochs,
        }
    }

    /// Does a full barrier separate `(r1, t1)` from every event at or
    /// after `t2`? Sound shortcut for [`HbIndex::happens_before`]: the
    /// smallest-exit epoch entered by `r1` at or after `t1` is the first
    /// one with `enter >= t1` (exits are nondecreasing across epochs).
    fn barrier_separates(&self, r1: u32, t1: u64, t2: u64) -> bool {
        let v = &self.rank_epochs[r1 as usize];
        let i = v.partition_point(|&(enter, _)| enter < t1);
        i < v.len() && v[i].1 <= t2
    }

    /// Number of matched message edges (diagnostics).
    pub fn matched_messages(&self) -> usize {
        self.messages.len()
    }

    pub fn barrier_epochs(&self) -> usize {
        self.barriers.len()
    }

    /// Does `(r1, t1)` happen-before `(r2, t2)`?
    ///
    /// Computes, per rank, the earliest reachable local time starting from
    /// `(r1, t1)`, by relaxing all sync edges; edges only move forward in
    /// time, so iterating until fixpoint over the (few) barrier epochs and
    /// time-sorted messages terminates quickly.
    pub fn happens_before(&self, r1: u32, t1: u64, r2: u32, t2: u64) -> bool {
        self.happens_before_scratch(&mut Vec::new(), r1, t1, r2, t2)
    }

    /// [`HbIndex::happens_before`] with a caller-provided scratch buffer
    /// for the per-rank reach times. [`validate_conflicts`] issues one
    /// query per conflict pair; reusing one buffer across all of them
    /// removes a `vec![None; nranks]` allocation per pair.
    pub fn happens_before_scratch(
        &self,
        reach: &mut Vec<Option<u64>>,
        r1: u32,
        t1: u64,
        r2: u32,
        t2: u64,
    ) -> bool {
        if r1 == r2 {
            return t1 <= t2;
        }
        if self.barrier_separates(r1, t1, t2) {
            return true;
        }
        self.fixpoint_reach(reach, r1, t1);
        matches!(reach[r2 as usize], Some(rt) if rt <= t2)
    }

    /// [`HbIndex::happens_before`] by the exact fixpoint alone — no barrier
    /// shortcut, no memoization. This is the pre-optimization query path,
    /// kept so benchmarks can reconstruct the unoptimized cost honestly.
    pub fn happens_before_exact(
        &self,
        reach: &mut Vec<Option<u64>>,
        r1: u32,
        t1: u64,
        r2: u32,
        t2: u64,
    ) -> bool {
        if r1 == r2 {
            return t1 <= t2;
        }
        self.fixpoint_reach(reach, r1, t1);
        matches!(reach[r2 as usize], Some(rt) if rt <= t2)
    }

    /// Compute, per rank, the earliest local time reachable from
    /// `(r1, t1)`. The result depends only on `(r1, t1)` — callers that
    /// query many targets from one source can reuse it.
    fn fixpoint_reach(&self, reach: &mut Vec<Option<u64>>, r1: u32, t1: u64) {
        reach.clear();
        reach.resize(self.nranks, None);
        reach[r1 as usize] = Some(t1);
        // Fixpoint: message edges are time-sorted so one pass usually
        // suffices; barriers can unlock earlier messages on other ranks, so
        // iterate a bounded number of rounds.
        for _ in 0..self.barriers.len() + 2 {
            let mut changed = false;
            for &(t_send, src, dst, t_recv_end) in &self.messages {
                if let Some(r) = reach[src as usize] {
                    if t_send >= r {
                        let cur = reach[dst as usize];
                        if cur.is_none() || cur.expect("some") > t_recv_end {
                            reach[dst as usize] = Some(t_recv_end);
                            changed = true;
                        }
                    }
                }
            }
            for b in &self.barriers {
                let entered_reached =
                    b.enter.iter().enumerate().any(
                        |(r, &e)| matches!((e, reach[r]), (Some(enter), Some(rt)) if enter >= rt),
                    );
                if entered_reached {
                    for slot in reach.iter_mut() {
                        if slot.is_none() || slot.expect("some") > b.exit {
                            *slot = Some(b.exit);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Result of validating a set of conflict pairs against the
/// happens-before order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HbValidation {
    /// Cross-process pairs whose timestamp order is enforced by program
    /// synchronization.
    pub synchronized: u64,
    /// Cross-process pairs with no happens-before path — a genuine data
    /// race (the paper found none in its race-free applications).
    pub racy: u64,
    /// Same-process pairs (ordered by program order by construction).
    pub same_process: u64,
}

/// Validate every conflict pair of `report` against the happens-before
/// order of `trace` (§5.2's FLASH validation).
pub fn validate_conflicts(
    trace: &TraceSet,
    report: &crate::conflict::ConflictReport,
) -> HbValidation {
    validate_conflicts_with(&HbIndex::build(trace), report)
}

/// [`validate_conflicts`] against an already-built index (e.g. the one a
/// [`crate::context::AnalysisContext`] holds).
///
/// The fixpoint reach vector depends only on the *source* event
/// `(rank, t_end)`, and conflict pairs share sources heavily (one write is
/// `first` of many pairs), so reach vectors are memoized per source: each
/// distinct source pays for one fixpoint, every further pair against it is
/// a lookup.
pub fn validate_conflicts_with(
    index: &HbIndex,
    report: &crate::conflict::ConflictReport,
) -> HbValidation {
    let mut v = HbValidation::default();
    let mut memo: HashMap<(u32, u64), Vec<Option<u64>>> = HashMap::new();
    for p in &report.pairs {
        if p.first.rank == p.second.rank {
            v.same_process += 1;
        } else {
            let hb = index.barrier_separates(p.first.rank, p.first.t_end, p.second.t_start) || {
                let reach = memo
                    .entry((p.first.rank, p.first.t_end))
                    .or_insert_with(|| {
                        let mut r = Vec::new();
                        index.fixpoint_reach(&mut r, p.first.rank, p.first.t_end);
                        r
                    });
                matches!(reach[p.second.rank as usize], Some(rt) if rt <= p.second.t_start)
            };
            if hb {
                v.synchronized += 1;
            } else {
                v.racy += 1;
            }
        }
    }
    v
}

/// [`validate_conflicts_with`] with every optimization disabled: exact
/// fixpoint per pair, no barrier shortcut, no memo. Semantically identical
/// to [`validate_conflicts_with`]; exists so the benchmark harness can
/// measure the unoptimized validation cost on the same box.
pub fn validate_conflicts_with_baseline(
    index: &HbIndex,
    report: &crate::conflict::ConflictReport,
) -> HbValidation {
    let mut v = HbValidation::default();
    let mut reach: Vec<Option<u64>> = Vec::new();
    for p in &report.pairs {
        if p.first.rank == p.second.rank {
            v.same_process += 1;
        } else if index.happens_before_exact(
            &mut reach,
            p.first.rank,
            p.first.t_end,
            p.second.rank,
            p.second.t_start,
        ) {
            v.synchronized += 1;
        } else {
            v.racy += 1;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::Record;

    fn mpi(rank: u32, t0: u64, t1: u64, func: Func) -> Record {
        Record {
            t_start: t0,
            t_end: t1,
            rank,
            layer: Layer::Mpi,
            origin: Layer::Mpi,
            func,
        }
    }

    #[test]
    fn message_creates_edge() {
        let trace = TraceSet {
            paths: vec![],
            ranks: vec![
                vec![mpi(
                    0,
                    10,
                    11,
                    Func::MpiSend {
                        dst: 1,
                        tag: 0,
                        seq: 7,
                    },
                )],
                vec![mpi(
                    1,
                    20,
                    21,
                    Func::MpiRecv {
                        src: 0,
                        tag: 0,
                        seq: 7,
                    },
                )],
            ],
            skews_ns: vec![0, 0],
        };
        let idx = HbIndex::build(&trace);
        assert_eq!(idx.matched_messages(), 1);
        assert!(idx.happens_before(0, 5, 1, 25), "before send → after recv");
        assert!(idx.happens_before(0, 10, 1, 21));
        assert!(
            !idx.happens_before(0, 12, 1, 25),
            "event after the send is not ordered"
        );
        assert!(!idx.happens_before(1, 0, 0, 100), "no reverse edge");
    }

    #[test]
    fn barrier_orders_everyone() {
        let trace = TraceSet {
            paths: vec![],
            ranks: vec![
                vec![mpi(0, 10, 30, Func::MpiBarrier { epoch: 0 })],
                vec![mpi(1, 20, 30, Func::MpiBarrier { epoch: 0 })],
                vec![mpi(2, 25, 30, Func::MpiBarrier { epoch: 0 })],
            ],
            skews_ns: vec![0, 0, 0],
        };
        let idx = HbIndex::build(&trace);
        assert_eq!(idx.barrier_epochs(), 1);
        // Anything before rank 0's barrier entry happens-before anything
        // after any rank's exit.
        assert!(idx.happens_before(0, 9, 2, 31));
        assert!(idx.happens_before(1, 19, 0, 30));
        // After the exit there is no ordering to times before it.
        assert!(!idx.happens_before(0, 31, 2, 29));
    }

    #[test]
    fn transitive_message_chain() {
        // 0 → 1 → 2.
        let trace = TraceSet {
            paths: vec![],
            ranks: vec![
                vec![mpi(
                    0,
                    10,
                    11,
                    Func::MpiSend {
                        dst: 1,
                        tag: 0,
                        seq: 1,
                    },
                )],
                vec![
                    mpi(
                        1,
                        20,
                        21,
                        Func::MpiRecv {
                            src: 0,
                            tag: 0,
                            seq: 1,
                        },
                    ),
                    mpi(
                        1,
                        30,
                        31,
                        Func::MpiSend {
                            dst: 2,
                            tag: 0,
                            seq: 2,
                        },
                    ),
                ],
                vec![mpi(
                    2,
                    40,
                    41,
                    Func::MpiRecv {
                        src: 1,
                        tag: 0,
                        seq: 2,
                    },
                )],
            ],
            skews_ns: vec![0, 0, 0],
        };
        let idx = HbIndex::build(&trace);
        assert!(idx.happens_before(0, 5, 2, 45));
        assert!(!idx.happens_before(2, 0, 0, 100));
    }

    #[test]
    fn same_rank_is_program_order() {
        let trace = TraceSet {
            paths: vec![],
            ranks: vec![vec![]],
            skews_ns: vec![0],
        };
        let idx = HbIndex::build(&trace);
        assert!(idx.happens_before(0, 5, 0, 6));
        assert!(idx.happens_before(0, 5, 0, 5));
        assert!(!idx.happens_before(0, 6, 0, 5));
    }
}
