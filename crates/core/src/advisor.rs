//! The commit-insertion advisor — §4.1's practical payoff: "A programmer
//! running the application on a PFS with weak consistency can prevent the
//! conflicts by inserting commit operations at suitable points, or the
//! designer of a parallel I/O library can insert commit operations
//! automatically."
//!
//! Given a resolved trace, the advisor proposes the minimal set of
//! `fsync` insertion points (one after each conflicting write that is not
//! already followed by a commit before its conflicting partner) and
//! *verifies* the proposal by splicing the synthetic commits into the
//! sync-event stream and re-running the §5.2 detector: the patched trace
//! must be conflict-free under commit semantics.

use recorder::{PathId, ResolvedTrace, SyncEvent, SyncKind};

use crate::conflict::{detect_conflicts, AnalysisModel, ConflictReport};

/// One suggested `fsync`: process `rank` should commit `file` right after
/// the write that completes at `after_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CommitInsertion {
    pub rank: u32,
    pub file: PathId,
    /// Insert the fsync immediately after the operation ending here.
    pub after_t: u64,
    /// Number of conflict pairs this insertion is the `first` side of.
    pub resolves: u64,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct CommitAdvice {
    pub insertions: Vec<CommitInsertion>,
    /// Conflict marks before patching (commit semantics).
    pub before: ConflictReport,
    /// Conflict report of the patched trace — empty if the advice is
    /// sound (checked by [`advise_commits`] itself).
    pub after: ConflictReport,
}

impl CommitAdvice {
    /// The advice removes every commit-semantics conflict.
    pub fn is_sufficient(&self) -> bool {
        self.after.total() == 0
    }
}

/// Propose and verify commit insertions that make `resolved` conflict-free
/// under commit semantics.
pub fn advise_commits(resolved: &ResolvedTrace) -> CommitAdvice {
    let before = detect_conflicts(resolved, AnalysisModel::Commit);

    // One insertion per distinct conflicting first-write.
    let mut map: std::collections::BTreeMap<(u32, PathId, u64), u64> = Default::default();
    for p in &before.pairs {
        let key = (p.first.rank, p.first.file, p.first.t_end);
        *map.entry(key).or_insert(0) += 1;
    }
    let insertions: Vec<CommitInsertion> = map
        .into_iter()
        .map(|((rank, file, after_t), resolves)| CommitInsertion {
            rank,
            file,
            after_t,
            resolves,
        })
        .collect();

    // Verify: splice the synthetic commits in and re-detect.
    let patched = apply_insertions(resolved, &insertions);
    let after = detect_conflicts(&patched, AnalysisModel::Commit);

    CommitAdvice {
        insertions,
        before,
        after,
    }
}

/// Splice the advised fsyncs into a copy of the trace's sync stream.
pub fn apply_insertions(resolved: &ResolvedTrace, insertions: &[CommitInsertion]) -> ResolvedTrace {
    let mut syncs: Vec<SyncEvent> = resolved.syncs.clone();
    for ins in insertions {
        syncs.push(SyncEvent {
            rank: ins.rank,
            t: ins.after_t, // "first event >= t" semantics puts it right after
            file: ins.file,
            kind: SyncKind::Commit,
        });
    }
    syncs.sort_by_key(|s| (s.t, s.rank));
    ResolvedTrace {
        accesses: resolved.accesses.clone(),
        syncs,
        seek_mismatches: resolved.seek_mismatches,
        short_reads: resolved.short_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{AccessKind, DataAccess, Layer};

    const F: PathId = PathId(0);

    fn acc(rank: u32, t: u64, offset: u64, len: u64, kind: AccessKind) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: F,
            offset,
            len,
            kind,
            origin: Layer::App,
            fd: 3,
        }
    }

    fn sync(rank: u32, t: u64, kind: SyncKind) -> SyncEvent {
        SyncEvent {
            rank,
            t,
            file: F,
            kind,
        }
    }

    #[test]
    fn advises_one_commit_per_conflicting_write() {
        // r0 writes, r1 reads and overwrites later; no commits anywhere.
        let resolved = ResolvedTrace {
            accesses: vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 0, 100, AccessKind::Read),
                acc(1, 60, 0, 100, AccessKind::Write),
            ],
            syncs: vec![sync(0, 0, SyncKind::Open), sync(1, 1, SyncKind::Open)],
            seek_mismatches: 0,
            short_reads: 0,
        };
        let advice = advise_commits(&resolved);
        assert!(advice.before.total() > 0);
        assert!(
            advice.is_sufficient(),
            "patched trace still conflicts: {:?}",
            advice.after
        );
        // Two conflicting writes (r0@10 and r1@60? the latter is only a
        // `first` if something follows it — nothing does), so exactly one
        // insertion for r0.
        assert_eq!(advice.insertions.len(), 1);
        assert_eq!(advice.insertions[0].rank, 0);
        assert_eq!(advice.insertions[0].after_t, 11);
        assert_eq!(
            advice.insertions[0].resolves, 2,
            "clears both the RAW and the WAW"
        );
    }

    #[test]
    fn clean_trace_needs_no_advice() {
        let resolved = ResolvedTrace {
            accesses: vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 200, 100, AccessKind::Write),
            ],
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        let advice = advise_commits(&resolved);
        assert!(advice.insertions.is_empty());
        assert!(advice.is_sufficient());
    }

    #[test]
    fn chained_conflicts_get_chained_commits() {
        // w0 → w1 → w2 on the same bytes by three ranks: both w0 and w1
        // need a commit.
        let resolved = ResolvedTrace {
            accesses: vec![
                acc(0, 10, 0, 10, AccessKind::Write),
                acc(1, 20, 0, 10, AccessKind::Write),
                acc(2, 30, 0, 10, AccessKind::Write),
            ],
            syncs: vec![],
            seek_mismatches: 0,
            short_reads: 0,
        };
        let advice = advise_commits(&resolved);
        assert!(advice.is_sufficient());
        let ranks: Vec<u32> = advice.insertions.iter().map(|i| i.rank).collect();
        assert_eq!(ranks, vec![0, 1]);
    }
}
