//! Conflict detection under commit and session semantics (§5.2).
//!
//! Two tuples `(t₁, r₁, os₁, oe₁, type₁)` and `(t₂, r₂, os₂, oe₂, type₂)`
//! with `t₁ < t₂` are a conflict pair if:
//!
//! 1. they overlap;
//! 2. the first operation is a write (a write-after-read pair cannot
//!    conflict, since race-free programs synchronize the read before the
//!    write starts);
//! 3. **commit semantics**: `r₁` executes no commit operation between `t₁`
//!    and `t₂` (commit operations: fsync, fdatasync, close — footnote 2);
//! 4. **session semantics**: there is no close by `r₁` at `t_c` and open
//!    by `r₂` at `t_o` with `t₁ < t_c < t_o < t₂`.
//!
//! As in the paper, each record is extended with `to` (time of the last
//! preceding open) and `tc` (time of the first succeeding close/commit by
//! the same process); both a scan variant (mark records by traversing each
//! process in timestamp order) and a binary-search variant (search the
//! per-process open/commit tables) are implemented — they must agree, and
//! the benchmark suite compares their cost.

use std::collections::BTreeMap;

use recorder::{AccessKind, DataAccess, PathId, ResolvedTrace, SyncKind};

use crate::context::AnalysisContext;
use crate::overlap::FileGroups;
use crate::parallel::analyze_files_parallel;

/// Which relaxed model the detector is checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisModel {
    Commit,
    Session,
}

/// RAW or WAW (§4.1; write-after-read cannot conflict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// Read-after-write.
    Raw,
    /// Write-after-write.
    Waw,
}

/// Same process (S) or distinct processes (D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictScope {
    Same,
    Distinct,
}

/// One detected conflict pair, `first.t_start < second.t_start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictPair {
    pub file: PathId,
    pub first: DataAccess,
    pub second: DataAccess,
    pub kind: ConflictKind,
    pub scope: ConflictScope,
}

/// Summary of all conflicts found in one trace under one model — one row
/// of Table 4.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictReport {
    pub model_checked: Option<AnalysisModel>,
    pub pairs: Vec<ConflictPair>,
    pub waw_same: u64,
    pub waw_distinct: u64,
    pub raw_same: u64,
    pub raw_distinct: u64,
}

impl ConflictReport {
    pub fn total(&self) -> u64 {
        self.waw_same + self.waw_distinct + self.raw_same + self.raw_distinct
    }

    pub fn has_distinct_process_conflicts(&self) -> bool {
        self.waw_distinct + self.raw_distinct > 0
    }

    pub fn has_same_process_conflicts(&self) -> bool {
        self.waw_same + self.raw_same > 0
    }

    /// The four ✓-columns of Table 4: (WAW-S, WAW-D, RAW-S, RAW-D).
    pub fn table4_marks(&self) -> (bool, bool, bool, bool) {
        (
            self.waw_same > 0,
            self.waw_distinct > 0,
            self.raw_same > 0,
            self.raw_distinct > 0,
        )
    }

    pub(crate) fn add(&mut self, pair: ConflictPair) {
        match (pair.kind, pair.scope) {
            (ConflictKind::Waw, ConflictScope::Same) => self.waw_same += 1,
            (ConflictKind::Waw, ConflictScope::Distinct) => self.waw_distinct += 1,
            (ConflictKind::Raw, ConflictScope::Same) => self.raw_same += 1,
            (ConflictKind::Raw, ConflictScope::Distinct) => self.raw_distinct += 1,
        }
        self.pairs.push(pair);
    }

    /// Append another (per-file partial) report; partials arrive sorted by
    /// file, so appending keeps the pair order of the serial detector.
    pub(crate) fn merge(&mut self, other: ConflictReport) {
        self.pairs.extend(other.pairs);
        self.waw_same += other.waw_same;
        self.waw_distinct += other.waw_distinct;
        self.raw_same += other.raw_same;
        self.raw_distinct += other.raw_distinct;
    }
}

/// One event table keyed by `(rank, file)`: a sorted key vector with
/// ranges into one flat, per-key ascending timestamp array. A lookup is a
/// single binary search over a dense `Vec` — this replaces the former
/// `BTreeMap<(u32, PathId), Vec<u64>>` per table (three pointer-chasing
/// maps and one `Vec` allocation per key).
#[derive(Debug, Default)]
struct SortedTable {
    keys: Vec<(u32, PathId)>,
    /// Parallel to `keys`: `times[start..end]` for that key.
    ranges: Vec<(u32, u32)>,
    times: Vec<u64>,
}

impl SortedTable {
    fn build(mut events: Vec<((u32, PathId), u64)>) -> Self {
        // Sorting (key, t) groups keys AND orders each key's times.
        events.sort_unstable();
        let mut t = SortedTable::default();
        let mut start = 0;
        while start < events.len() {
            let key = events[start].0;
            let mut end = start + 1;
            while end < events.len() && events[end].0 == key {
                end += 1;
            }
            t.keys.push(key);
            t.ranges
                .push((t.times.len() as u32, (t.times.len() + end - start) as u32));
            t.times.extend(events[start..end].iter().map(|e| e.1));
            start = end;
        }
        t
    }

    fn slice(&self, key: (u32, PathId)) -> &[u64] {
        match self.keys.binary_search(&key) {
            Ok(k) => {
                let (lo, hi) = self.ranges[k];
                &self.times[lo as usize..hi as usize]
            }
            Err(_) => &[],
        }
    }

    /// Last event `<= t` — an open at the same instant as the access
    /// counts as preceding it (matching the scan variant's event order
    /// `open < access < close/commit` at equal times).
    fn last_before(&self, key: (u32, PathId), t: u64) -> Option<u64> {
        let v = self.slice(key);
        let idx = v.partition_point(|&x| x <= t);
        if idx == 0 {
            None
        } else {
            Some(v[idx - 1])
        }
    }

    /// First event `>= t` — a close/commit at the same instant as the
    /// access counts as succeeding it.
    fn first_after(&self, key: (u32, PathId), t: u64) -> Option<u64> {
        let v = self.slice(key);
        let idx = v.partition_point(|&x| x < t);
        v.get(idx).copied()
    }
}

/// Per-(rank, file) synchronization tables, each sorted by time. Retained
/// by [`crate::context::AnalysisContext`] so one build serves every
/// consumer of the sync windows.
#[derive(Debug, Default)]
pub(crate) struct SyncTables {
    opens: SortedTable,
    closes: SortedTable,
    commits: SortedTable, // fsync/fdatasync AND close
}

impl SyncTables {
    pub(crate) fn build(resolved: &ResolvedTrace) -> Self {
        let mut opens = Vec::new();
        let mut closes = Vec::new();
        let mut commits = Vec::new();
        for s in &resolved.syncs {
            let key = (s.rank, s.file);
            match s.kind {
                SyncKind::Open => opens.push((key, s.t)),
                SyncKind::Close => {
                    closes.push((key, s.t));
                    commits.push((key, s.t));
                }
                SyncKind::Commit => commits.push((key, s.t)),
            }
        }
        SyncTables {
            opens: SortedTable::build(opens),
            closes: SortedTable::build(closes),
            commits: SortedTable::build(commits),
        }
    }

    /// Last `open` by `(rank, file)` at or before `t`.
    pub(crate) fn last_open(&self, key: (u32, PathId), t: u64) -> Option<u64> {
        self.opens.last_before(key, t)
    }

    /// First `close` by `(rank, file)` at or after `t`.
    pub(crate) fn next_close(&self, key: (u32, PathId), t: u64) -> Option<u64> {
        self.closes.first_after(key, t)
    }

    /// First commit (`fsync`/`fdatasync`/`close`) by `(rank, file)` at or
    /// after `t`.
    pub(crate) fn next_commit(&self, key: (u32, PathId), t: u64) -> Option<u64> {
        self.commits.first_after(key, t)
    }
}

/// The per-record extension of §5.2: `to` and `tc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendedAccess {
    pub access: DataAccess,
    /// Time of the last preceding `open` by this process on this file.
    pub to: Option<u64>,
    /// Time of the first succeeding `close` by this process on this file.
    pub tc_close: Option<u64>,
    /// Time of the first succeeding commit (`fsync`/`fdatasync`/`close`).
    pub tc_commit: Option<u64>,
}

/// Extend every access via binary search in the per-process sync tables
/// (the paper's suggested O(log n)-per-record variant).
pub fn extend_binary_search(resolved: &ResolvedTrace) -> Vec<ExtendedAccess> {
    extend_with_tables(resolved).1
}

/// [`extend_binary_search`], also returning the sync tables themselves so
/// the context can keep them alongside the extension.
pub(crate) fn extend_with_tables(resolved: &ResolvedTrace) -> (SyncTables, Vec<ExtendedAccess>) {
    let tables = SyncTables::build(resolved);
    let extended = resolved
        .accesses
        .iter()
        .map(|a| {
            let key = (a.rank, a.file);
            ExtendedAccess {
                access: *a,
                to: tables.opens.last_before(key, a.t_start),
                tc_close: tables.closes.first_after(key, a.t_start),
                tc_commit: tables.commits.first_after(key, a.t_start),
            }
        })
        .collect();
    (tables, extended)
}

/// Extend every access by one forward + one backward scan over each
/// process's records in timestamp order (the paper's alternative "mark
/// while traversing" variant). Must agree with
/// [`extend_binary_search`]; the benchmarks compare their cost.
pub fn extend_scan(resolved: &ResolvedTrace) -> Vec<ExtendedAccess> {
    // Merge accesses and syncs per (rank, file) in time order.
    #[derive(Clone, Copy)]
    enum Ev {
        Acc(usize),
        Open(u64),
        Close(u64),
        Commit(u64),
    }
    let mut per_key: BTreeMap<(u32, PathId), Vec<(u64, Ev)>> = BTreeMap::new();
    for (i, a) in resolved.accesses.iter().enumerate() {
        per_key
            .entry((a.rank, a.file))
            .or_default()
            .push((a.t_start, Ev::Acc(i)));
    }
    for s in &resolved.syncs {
        let ev = match s.kind {
            SyncKind::Open => Ev::Open(s.t),
            SyncKind::Close => Ev::Close(s.t),
            SyncKind::Commit => Ev::Commit(s.t),
        };
        per_key.entry((s.rank, s.file)).or_default().push((s.t, ev));
    }

    let mut out: Vec<ExtendedAccess> = resolved
        .accesses
        .iter()
        .map(|a| ExtendedAccess {
            access: *a,
            to: None,
            tc_close: None,
            tc_commit: None,
        })
        .collect();

    for events in per_key.values_mut() {
        // Stable order: syncs at the same instant as an access sort as the
        // binary-search variant treats them (open: strictly before; close /
        // commit: strictly after). Order same-time events as
        // open < access < close/commit.
        events.sort_by_key(|(t, ev)| {
            (
                *t,
                match ev {
                    Ev::Open(_) => 0u8,
                    Ev::Acc(_) => 1,
                    Ev::Close(_) => 2,
                    Ev::Commit(_) => 2,
                },
            )
        });
        // Forward: last open seen so far.
        let mut last_open: Option<u64> = None;
        for (_, ev) in events.iter() {
            match ev {
                Ev::Open(t) => last_open = Some(*t),
                Ev::Acc(i) => out[*i].to = last_open,
                _ => {}
            }
        }
        // Backward: next close / next commit.
        let mut next_close: Option<u64> = None;
        let mut next_commit: Option<u64> = None;
        for (_, ev) in events.iter().rev() {
            match ev {
                Ev::Close(t) => {
                    next_close = Some(*t);
                    next_commit = Some(next_commit.map_or(*t, |c: u64| c.min(*t)));
                }
                Ev::Commit(t) => next_commit = Some(next_commit.map_or(*t, |c: u64| c.min(*t))),
                Ev::Acc(i) => {
                    out[*i].tc_close = next_close;
                    out[*i].tc_commit = next_commit;
                }
                Ev::Open(_) => {}
            }
        }
    }
    out
}

/// Options for conflict detection.
#[derive(Debug, Clone, Copy)]
pub struct ConflictOptions {
    /// Use binary-search extension (true, default) or the scan variant.
    pub binary_search: bool,
    /// For the session condition, treat any commit (fsync) as if it were
    /// the close — the paper's combined-`tc` formalization. Off by default:
    /// under session semantics only a close publishes, so the refined
    /// check uses the close table.
    pub session_uses_commit_as_close: bool,
}

impl Default for ConflictOptions {
    fn default() -> Self {
        ConflictOptions {
            binary_search: true,
            session_uses_commit_as_close: false,
        }
    }
}

/// Detect all conflict pairs in `resolved` under `model`.
pub fn detect_conflicts(resolved: &ResolvedTrace, model: AnalysisModel) -> ConflictReport {
    detect_conflicts_opt(resolved, model, ConflictOptions::default())
}

/// Detect conflicts with explicit options.
pub fn detect_conflicts_opt(
    resolved: &ResolvedTrace,
    model: AnalysisModel,
    opts: ConflictOptions,
) -> ConflictReport {
    detect_conflicts_opt_threaded(resolved, model, opts, 1)
}

/// [`detect_conflicts`] with per-file work fanned across `threads` scoped
/// worker threads (`0` = one per core, `1` = serial). The report is
/// identical to the serial one for every thread count: files are merged
/// in [`PathId`] order regardless of completion order.
pub fn detect_conflicts_threaded(
    resolved: &ResolvedTrace,
    model: AnalysisModel,
    threads: usize,
) -> ConflictReport {
    detect_conflicts_opt_threaded(resolved, model, ConflictOptions::default(), threads)
}

/// Threaded conflict detection with explicit options.
///
/// The default binary-search variant is a thin wrapper over a fresh
/// [`AnalysisContext`]; the scan variant keeps its own fully independent
/// path (extension and per-file sort), which is what the equivalence
/// tests compare the fused detector against.
pub fn detect_conflicts_opt_threaded(
    resolved: &ResolvedTrace,
    model: AnalysisModel,
    opts: ConflictOptions,
    threads: usize,
) -> ConflictReport {
    if opts.binary_search {
        let ctx = AnalysisContext::new(resolved);
        return detect_conflicts_in(&ctx, model, opts, threads);
    }
    let extended = extend_scan(resolved);

    // Group by file (zero-copy index ranges) and run the overlap sweep per
    // file, one work item per file.
    let groups = FileGroups::new(&resolved.accesses);
    let mut report = ConflictReport {
        model_checked: Some(model),
        ..Default::default()
    };
    let extended = &extended;
    for (_, partial) in analyze_files_parallel(&groups, threads, |file, idxs| {
        file_conflicts(extended, file, idxs, model, opts)
    }) {
        report.merge(partial);
    }
    report
}

/// Single-model detection over a prebuilt [`AnalysisContext`]: reuses the
/// context's extension and per-file offset-sorted order instead of
/// re-deriving both.
pub fn detect_conflicts_in(
    ctx: &AnalysisContext,
    model: AnalysisModel,
    opts: ConflictOptions,
    threads: usize,
) -> ConflictReport {
    let mut report = ConflictReport {
        model_checked: Some(model),
        ..Default::default()
    };
    for partial in crate::parallel::parallel_map_indexed(ctx.file_count(), threads, |k| {
        let (file, order) = ctx.conflict_group(k);
        let mut partial = ConflictReport::default();
        sweep_pairs(ctx.extended(), order, |first, second| {
            if conflicting(first, second, model, opts) {
                partial.add(classify_pair(file, first, second));
            }
        });
        partial
    }) {
        report.merge(partial);
    }
    report
}

/// Session and commit reports from one fused sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusedReports {
    pub session: ConflictReport,
    pub commit: ConflictReport,
}

/// Fused §5.2 detection: one overlap enumeration per file, each candidate
/// pair classified against **both** models — they share the sweep and
/// differ only in the sync-window condition, so checking them together
/// halves the enumeration work of two [`detect_conflicts`] calls.
///
/// Both reports are exactly equal (pairs, order, counts) to what the two
/// separate runs produce; `tests/fused.rs` asserts this on random traces.
pub fn detect_conflicts_fused(ctx: &AnalysisContext) -> FusedReports {
    detect_conflicts_fused_threaded(ctx, 1)
}

/// [`detect_conflicts_fused`] with per-file work fanned across `threads`
/// worker threads (`0` = one per core). Deterministic: per-file partials
/// merge in [`PathId`] order regardless of completion order.
pub fn detect_conflicts_fused_threaded(ctx: &AnalysisContext, threads: usize) -> FusedReports {
    let opts = ConflictOptions::default();
    let mut out = FusedReports {
        session: ConflictReport {
            model_checked: Some(AnalysisModel::Session),
            ..Default::default()
        },
        commit: ConflictReport {
            model_checked: Some(AnalysisModel::Commit),
            ..Default::default()
        },
    };
    for (session, commit) in crate::parallel::parallel_map_indexed(ctx.file_count(), threads, |k| {
        let (file, order) = ctx.conflict_group(k);
        let mut session = ConflictReport::default();
        let mut commit = ConflictReport::default();
        sweep_pairs(ctx.extended(), order, |first, second| {
            let on_session = conflicting(first, second, AnalysisModel::Session, opts);
            let on_commit = conflicting(first, second, AnalysisModel::Commit, opts);
            if !(on_session || on_commit) {
                return;
            }
            let pair = classify_pair(file, first, second);
            if on_session {
                session.add(pair);
            }
            if on_commit {
                commit.add(pair);
            }
        });
        (session, commit)
    }) {
        out.session.merge(session);
        out.commit.merge(commit);
    }
    out
}

/// Enumerate candidate pairs of one file in the canonical order: `order`
/// is offset-sorted (stable), the inner scan stops when start offsets
/// pass the current end (Algorithm 1), the pair is ordered by
/// `(t_start, rank)`, and write-after-read pairs are skipped. Every
/// detector variant visits pairs through this one enumeration, which is
/// what makes their reports identical element-for-element.
#[inline]
fn sweep_pairs(
    extended: &[ExtendedAccess],
    order: &[u32],
    mut visit: impl FnMut(&ExtendedAccess, &ExtendedAccess),
) {
    for (pos, &i) in order.iter().enumerate() {
        let a = &extended[i as usize];
        for &j in &order[pos + 1..] {
            let b = &extended[j as usize];
            if b.access.offset >= a.access.end() {
                break;
            }
            // Order the overlapping pair by timestamp (rank breaks ties
            // deterministically).
            let (first, second) =
                if (a.access.t_start, a.access.rank) <= (b.access.t_start, b.access.rank) {
                    (a, b)
                } else {
                    (b, a)
                };
            if first.access.kind != AccessKind::Write {
                continue; // write-after-read is not a potential conflict
            }
            visit(first, second);
        }
    }
}

/// Conditions 3/4 of §5.2 for an ordered candidate pair.
#[inline]
pub(crate) fn conflicting(
    first: &ExtendedAccess,
    second: &ExtendedAccess,
    model: AnalysisModel,
    opts: ConflictOptions,
) -> bool {
    match model {
        AnalysisModel::Commit => {
            // Condition 3: no commit by r1 in (t1, t2).
            match first.tc_commit {
                Some(tc) => tc > second.access.t_start,
                None => true,
            }
        }
        AnalysisModel::Session => {
            // Condition 4: ¬(t1 < tc1 < to2 < t2).
            let tc1 = if opts.session_uses_commit_as_close {
                first.tc_commit
            } else {
                first.tc_close
            };
            let ordered = match (tc1, second.to) {
                (Some(tc), Some(to)) => {
                    first.access.t_start < tc && tc < to && to < second.access.t_start
                }
                _ => false,
            };
            !ordered
        }
    }
}

#[inline]
pub(crate) fn classify_pair(
    file: PathId,
    first: &ExtendedAccess,
    second: &ExtendedAccess,
) -> ConflictPair {
    let kind = match second.access.kind {
        AccessKind::Read => ConflictKind::Raw,
        AccessKind::Write => ConflictKind::Waw,
    };
    let scope = if first.access.rank == second.access.rank {
        ConflictScope::Same
    } else {
        ConflictScope::Distinct
    };
    ConflictPair {
        file,
        first: first.access,
        second: second.access,
        kind,
        scope,
    }
}

/// The §5.2 check over the accesses of one file (given as indices into the
/// extended slice, in input order).
fn file_conflicts(
    extended: &[ExtendedAccess],
    file: PathId,
    idxs: &[u32],
    model: AnalysisModel,
    opts: ConflictOptions,
) -> ConflictReport {
    let mut order = idxs.to_vec();
    // Stable: ties keep input order, so pair order matches the serial
    // detector exactly.
    order.sort_by_key(|&i| {
        let a = &extended[i as usize].access;
        (a.offset, a.end())
    });
    let mut report = ConflictReport::default();
    sweep_pairs(extended, &order, |first, second| {
        if conflicting(first, second, model, opts) {
            report.add(classify_pair(file, first, second));
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use recorder::{Layer, SyncEvent};

    const F: PathId = PathId(0);

    fn acc(rank: u32, t: u64, offset: u64, len: u64, kind: AccessKind) -> DataAccess {
        DataAccess {
            rank,
            t_start: t,
            t_end: t + 1,
            file: F,
            offset,
            len,
            kind,
            origin: Layer::App,
            fd: 3,
        }
    }

    fn sync(rank: u32, t: u64, kind: SyncKind) -> SyncEvent {
        SyncEvent {
            rank,
            t,
            file: F,
            kind,
        }
    }

    fn resolved(accesses: Vec<DataAccess>, syncs: Vec<SyncEvent>) -> ResolvedTrace {
        ResolvedTrace {
            accesses,
            syncs,
            seek_mismatches: 0,
            short_reads: 0,
        }
    }

    #[test]
    fn raw_distinct_without_sync_conflicts_under_both_models() {
        let r = resolved(
            vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 0, 100, AccessKind::Read),
            ],
            vec![sync(0, 1, SyncKind::Open), sync(1, 2, SyncKind::Open)],
        );
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let rep = detect_conflicts(&r, model);
            assert_eq!(rep.total(), 1, "{model:?}");
            assert_eq!(rep.table4_marks(), (false, false, false, true));
        }
    }

    #[test]
    fn commit_between_clears_commit_conflict_only() {
        // write(r0)@10, fsync(r0)@20, read(r1)@50.
        let r = resolved(
            vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 0, 100, AccessKind::Read),
            ],
            vec![
                sync(0, 1, SyncKind::Open),
                sync(1, 2, SyncKind::Open),
                sync(0, 20, SyncKind::Commit),
            ],
        );
        assert_eq!(detect_conflicts(&r, AnalysisModel::Commit).total(), 0);
        // Session: r1 opened before the fsync (and an fsync is not a
        // close) → still a conflict.
        assert_eq!(detect_conflicts(&r, AnalysisModel::Session).total(), 1);
    }

    #[test]
    fn close_to_open_clears_session_conflict() {
        // write(r0)@10, close(r0)@20, open(r1)@30, read(r1)@50.
        let r = resolved(
            vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 0, 100, AccessKind::Read),
            ],
            vec![
                sync(0, 1, SyncKind::Open),
                sync(0, 20, SyncKind::Close),
                sync(1, 30, SyncKind::Open),
            ],
        );
        assert_eq!(detect_conflicts(&r, AnalysisModel::Session).total(), 0);
        assert_eq!(detect_conflicts(&r, AnalysisModel::Commit).total(), 0);
    }

    #[test]
    fn open_before_close_still_session_conflict() {
        // write(r0)@10, open(r1)@15, close(r0)@20, read(r1)@50: the reader's
        // session began before the writer's close.
        let r = resolved(
            vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 0, 100, AccessKind::Read),
            ],
            vec![
                sync(0, 1, SyncKind::Open),
                sync(1, 15, SyncKind::Open),
                sync(0, 20, SyncKind::Close),
            ],
        );
        let rep = detect_conflicts(&r, AnalysisModel::Session);
        assert_eq!(rep.total(), 1);
        assert_eq!(rep.table4_marks(), (false, false, false, true));
        // Commit: the close at 20 is a commit before the read at 50.
        assert_eq!(detect_conflicts(&r, AnalysisModel::Commit).total(), 0);
    }

    #[test]
    fn war_is_never_a_conflict() {
        let r = resolved(
            vec![
                acc(0, 10, 0, 100, AccessKind::Read),
                acc(1, 50, 0, 100, AccessKind::Write),
            ],
            vec![sync(0, 1, SyncKind::Open), sync(1, 2, SyncKind::Open)],
        );
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            assert_eq!(detect_conflicts(&r, model).total(), 0);
        }
    }

    #[test]
    fn waw_same_process_classified() {
        let r = resolved(
            vec![
                acc(0, 10, 0, 10, AccessKind::Write),
                acc(0, 20, 5, 10, AccessKind::Write),
            ],
            vec![sync(0, 1, SyncKind::Open)],
        );
        let rep = detect_conflicts(&r, AnalysisModel::Session);
        assert_eq!(rep.table4_marks(), (true, false, false, false));
        assert_eq!(rep.pairs[0].scope, ConflictScope::Same);
    }

    #[test]
    fn non_overlapping_never_conflicts() {
        let r = resolved(
            vec![
                acc(0, 10, 0, 10, AccessKind::Write),
                acc(1, 20, 10, 10, AccessKind::Write),
            ],
            vec![],
        );
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            assert_eq!(detect_conflicts(&r, model).total(), 0);
        }
    }

    #[test]
    fn scan_and_binary_search_variants_agree() {
        // A denser scenario with several files, opens, closes and commits.
        let mut accesses = Vec::new();
        let mut syncs = Vec::new();
        for rank in 0..4u32 {
            syncs.push(sync(rank, rank as u64, SyncKind::Open));
            for k in 0..6u64 {
                accesses.push(acc(
                    rank,
                    10 + k * 17 + rank as u64,
                    (k * 13 + rank as u64 * 7) % 60,
                    20,
                    if k % 3 == 0 {
                        AccessKind::Read
                    } else {
                        AccessKind::Write
                    },
                ));
                if k == 2 {
                    syncs.push(sync(rank, 11 + k * 17 + rank as u64, SyncKind::Commit));
                }
            }
            syncs.push(sync(rank, 200 + rank as u64, SyncKind::Close));
        }
        let r = resolved(accesses, syncs);
        for model in [AnalysisModel::Commit, AnalysisModel::Session] {
            let bs = detect_conflicts_opt(
                &r,
                model,
                ConflictOptions {
                    binary_search: true,
                    ..Default::default()
                },
            );
            let scan = detect_conflicts_opt(
                &r,
                model,
                ConflictOptions {
                    binary_search: false,
                    ..Default::default()
                },
            );
            assert_eq!(bs.table4_marks(), scan.table4_marks());
            assert_eq!(bs.total(), scan.total(), "{model:?}");
            let mut p1 = bs.pairs.clone();
            let mut p2 = scan.pairs.clone();
            let key = |p: &ConflictPair| (p.first.t_start, p.second.t_start, p.first.offset);
            p1.sort_by_key(key);
            p2.sort_by_key(key);
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn session_conflicts_are_superset_of_commit_conflicts_here() {
        // Commit-visible scenarios are also session-visible when every
        // commit is an fsync (not a close).
        let r = resolved(
            vec![
                acc(0, 10, 0, 100, AccessKind::Write),
                acc(1, 50, 0, 100, AccessKind::Write),
                acc(0, 70, 50, 10, AccessKind::Write),
                acc(1, 90, 55, 10, AccessKind::Read),
            ],
            vec![
                sync(0, 1, SyncKind::Open),
                sync(1, 2, SyncKind::Open),
                sync(0, 60, SyncKind::Commit),
            ],
        );
        let c = detect_conflicts(&r, AnalysisModel::Commit);
        let s = detect_conflicts(&r, AnalysisModel::Session);
        assert!(s.total() >= c.total());
    }
}
