//! The headline question (§6.3): what is the weakest consistency model
//! under which an application runs correctly?
//!
//! The paper's reasoning: "all but one of the applications we studied can
//! execute correctly with session semantics, provided that conflicts on
//! the same process are properly handled" — i.e. same-process RAW/WAW
//! pairs are harmless on every studied PFS except BurstFS, while
//! *distinct-process* conflicts under a model mean that model is too weak.

use crate::conflict::ConflictReport;
use crate::model::ConsistencyModel;

/// The verdict for one application configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Weakest model that avoids distinct-process conflicts (assuming the
    /// PFS preserves same-process ordering, like all of Table 1 except
    /// BurstFS).
    pub required: ConsistencyModel,
    /// Weakest model with *no* conflicts at all — what a BurstFS-like
    /// system (no same-process ordering) would need.
    pub required_strict: ConsistencyModel,
    /// Whether same-process conflicts exist under session semantics.
    pub same_process_conflicts: bool,
}

/// How complete the trace behind a verdict is. A rank that fail-stopped
/// mid-run leaves a trace *prefix* — typically missing its closing
/// commit operations (fsync/close) — so conflict counts computed from it
/// are a lower bound on the happy-path run and commit-model verdicts can
/// legitimately differ (a crash before the commit point is exactly the
/// scenario commit semantics does not protect). Verdicts on partial
/// traces are computed and labeled, never rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completeness {
    /// Every rank ran to completion.
    Complete,
    /// These ranks fail-stopped; their traces are prefixes.
    Partial { crashed_ranks: Vec<u32> },
}

impl Completeness {
    /// Build from the list of crashed ranks (empty ⇒ complete).
    pub fn from_crashed(mut crashed_ranks: Vec<u32>) -> Self {
        if crashed_ranks.is_empty() {
            Completeness::Complete
        } else {
            crashed_ranks.sort_unstable();
            crashed_ranks.dedup();
            Completeness::Partial { crashed_ranks }
        }
    }

    pub fn is_partial(&self) -> bool {
        matches!(self, Completeness::Partial { .. })
    }

    /// Short render suffix: empty for complete traces, a crashed-ranks
    /// annotation for partial ones.
    pub fn label(&self) -> String {
        match self {
            Completeness::Complete => String::new(),
            Completeness::Partial { crashed_ranks } => {
                let ranks: Vec<String> = crashed_ranks.iter().map(|r| format!("r{r}")).collect();
                format!(" [partial: crashed {}]", ranks.join(","))
            }
        }
    }
}

/// Derive the verdict from the session- and commit-semantics conflict
/// reports. (Eventual consistency is out of scope, as in the paper:
/// traditional applications rely on a deterministic write→read
/// relationship, §3.5.)
pub fn required_model(session: &ConflictReport, commit: &ConflictReport) -> Verdict {
    let required = if !session.has_distinct_process_conflicts() {
        ConsistencyModel::Session
    } else if !commit.has_distinct_process_conflicts() {
        ConsistencyModel::Commit
    } else {
        ConsistencyModel::Strong
    };
    let required_strict = if session.total() == 0 {
        ConsistencyModel::Session
    } else if commit.total() == 0 {
        ConsistencyModel::Commit
    } else {
        ConsistencyModel::Strong
    };
    Verdict {
        required,
        required_strict,
        same_process_conflicts: session.has_same_process_conflicts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{AnalysisModel, ConflictReport};

    fn report(
        model: AnalysisModel,
        waw_s: u64,
        waw_d: u64,
        raw_s: u64,
        raw_d: u64,
    ) -> ConflictReport {
        ConflictReport {
            model_checked: Some(model),
            pairs: Vec::new(),
            waw_same: waw_s,
            waw_distinct: waw_d,
            raw_same: raw_s,
            raw_distinct: raw_d,
        }
    }

    #[test]
    fn clean_app_needs_only_session() {
        let v = required_model(
            &report(AnalysisModel::Session, 0, 0, 0, 0),
            &report(AnalysisModel::Commit, 0, 0, 0, 0),
        );
        assert_eq!(v.required, ConsistencyModel::Session);
        assert_eq!(v.required_strict, ConsistencyModel::Session);
        assert!(!v.same_process_conflicts);
    }

    #[test]
    fn same_process_only_still_session_but_not_for_burstfs() {
        // The NWChem/GAMESS shape: WAW-S/RAW-S under session.
        let v = required_model(
            &report(AnalysisModel::Session, 2, 0, 1, 0),
            &report(AnalysisModel::Commit, 2, 0, 1, 0),
        );
        assert_eq!(v.required, ConsistencyModel::Session);
        assert!(v.same_process_conflicts);
        // A BurstFS-like PFS would need strong (conflicts under both
        // relaxed models).
        assert_eq!(v.required_strict, ConsistencyModel::Strong);
    }

    #[test]
    fn flash_shape_needs_commit() {
        // WAW-D under session, clean under commit.
        let v = required_model(
            &report(AnalysisModel::Session, 3, 2, 0, 0),
            &report(AnalysisModel::Commit, 0, 0, 0, 0),
        );
        assert_eq!(v.required, ConsistencyModel::Commit);
        assert_eq!(v.required_strict, ConsistencyModel::Commit);
    }

    #[test]
    fn completeness_labels() {
        assert_eq!(Completeness::from_crashed(vec![]), Completeness::Complete);
        assert!(!Completeness::Complete.is_partial());
        assert_eq!(Completeness::Complete.label(), "");
        let p = Completeness::from_crashed(vec![3, 1, 3]);
        assert!(p.is_partial());
        assert_eq!(p.label(), " [partial: crashed r1,r3]");
    }

    #[test]
    fn distinct_conflicts_under_both_need_strong() {
        let v = required_model(
            &report(AnalysisModel::Session, 0, 2, 0, 0),
            &report(AnalysisModel::Commit, 0, 1, 0, 0),
        );
        assert_eq!(v.required, ConsistencyModel::Strong);
        assert_eq!(v.required_strict, ConsistencyModel::Strong);
    }
}
