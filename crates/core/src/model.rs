//! The consistency-semantics categorization (§3) and the PFS registry
//! (Table 1).

use std::fmt;

/// The four consistency-semantics categories, strongest first. This is the
/// analysis-side lattice; the execution-side twin lives in `pfssim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsistencyModel {
    /// POSIX sequential consistency under the happens-before order (§3.1):
    /// a read of a byte returns the value of the latest happens-before
    /// write to that byte.
    Strong,
    /// Updates become globally visible when the writer executes a commit
    /// operation — fsync, fdatasync, fflush, close (§3.2, footnote 2).
    Commit,
    /// Close-to-open: updates become visible to sessions opened after the
    /// writer closed the file (§3.3).
    Session,
    /// Updates become visible eventually, with no commit required (§3.4).
    Eventual,
}

impl ConsistencyModel {
    pub const ALL: [ConsistencyModel; 4] = [
        ConsistencyModel::Strong,
        ConsistencyModel::Commit,
        ConsistencyModel::Session,
        ConsistencyModel::Eventual,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ConsistencyModel::Strong => "strong",
            ConsistencyModel::Commit => "commit",
            ConsistencyModel::Session => "session",
            ConsistencyModel::Eventual => "eventual",
        }
    }

    /// `self` provides at least the guarantees of `required`.
    pub fn satisfies(self, required: ConsistencyModel) -> bool {
        self <= required
    }
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One file system of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfsEntry {
    pub name: &'static str,
    pub model: ConsistencyModel,
    /// Whether reads/writes by a *single* process take effect in program
    /// order (§3.5: true for all studied PFSs except BurstFS; PLFS and
    /// PVFS2 leave overlapping writes undefined).
    pub same_process_ordering: bool,
    /// One-line characterization, for reports.
    pub note: &'static str,
}

impl PfsEntry {
    /// Can an application with requirement `required` (and, if
    /// `has_same_process_conflicts`, same-process RAW/WAW pairs) run
    /// correctly on this PFS?
    pub fn supports(&self, required: ConsistencyModel, has_same_process_conflicts: bool) -> bool {
        if !self.model.satisfies(required) {
            return false;
        }
        !has_same_process_conflicts || self.same_process_ordering
    }
}

/// The registry of Table 1: "HPC file systems and their consistency
/// semantics".
///
/// ```
/// use semantics_core::{ConsistencyModel, PfsRegistry};
/// let reg = PfsRegistry::default();
/// // An application that needs commit semantics and has same-process
/// // conflicts can run on UnifyFS but not on BurstFS or NFS.
/// let ok: Vec<&str> = reg
///     .compatible(ConsistencyModel::Commit, true)
///     .iter()
///     .map(|e| e.name)
///     .collect();
/// assert!(ok.contains(&"UnifyFS") && ok.contains(&"Lustre"));
/// assert!(!ok.contains(&"BurstFS") && !ok.contains(&"NFS"));
/// ```
#[derive(Debug, Clone)]
pub struct PfsRegistry {
    entries: Vec<PfsEntry>,
}

impl Default for PfsRegistry {
    fn default() -> Self {
        use ConsistencyModel::*;
        let e = |name, model, spo, note| PfsEntry {
            name,
            model,
            same_process_ordering: spo,
            note,
        };
        PfsRegistry {
            entries: vec![
                e(
                    "GPFS",
                    Strong,
                    true,
                    "distributed locking; lazy metadata options",
                ),
                e(
                    "Lustre",
                    Strong,
                    true,
                    "distributed lock manager; locking can be disabled",
                ),
                e(
                    "GekkoFS",
                    Strong,
                    true,
                    "relaxed metadata, strict data consistency",
                ),
                e("BeeGFS", Strong, true, "POSIX semantics"),
                e(
                    "BatchFS",
                    Strong,
                    true,
                    "relaxed metadata, strict data consistency",
                ),
                e(
                    "OrangeFS",
                    Strong,
                    true,
                    "non-conflicting write semantics (PVFS2 lineage)",
                ),
                e("BSCFS", Commit, true, "burst-buffer shared checkpoint FS"),
                e(
                    "UnifyFS",
                    Commit,
                    true,
                    "fsync commits; lamination makes files read-only",
                ),
                e("SymphonyFS", Commit, true, "fsync acts as the commit"),
                e(
                    "BurstFS",
                    Commit,
                    false,
                    "no same-process read-after-write ordering",
                ),
                e("NFS", Session, true, "close-to-open cache consistency"),
                e("AFS", Session, true, "close-to-open"),
                e("DDN IME", Session, true, "close-to-open"),
                e(
                    "Gfarm/BB",
                    Session,
                    true,
                    "close-to-open over node-local burst buffers",
                ),
                e(
                    "PLFS",
                    Eventual,
                    false,
                    "overlapping writes undefined; N-1 → N-N rewrite",
                ),
                e(
                    "echofs",
                    Eventual,
                    true,
                    "POSIX locally, global visibility on drain",
                ),
                e("MarFS", Eventual, true, "near-POSIX over cloud objects"),
            ],
        }
    }
}

impl PfsRegistry {
    pub fn entries(&self) -> &[PfsEntry] {
        &self.entries
    }

    pub fn get(&self, name: &str) -> Option<&PfsEntry> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// All file systems in one category (one row of Table 1).
    pub fn by_model(&self, model: ConsistencyModel) -> Vec<&PfsEntry> {
        self.entries.iter().filter(|e| e.model == model).collect()
    }

    /// All file systems an application can run on, given its analyzed
    /// requirement.
    pub fn compatible(
        &self,
        required: ConsistencyModel,
        has_same_process_conflicts: bool,
    ) -> Vec<&PfsEntry> {
        self.entries
            .iter()
            .filter(|e| e.supports(required, has_same_process_conflicts))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_ordering() {
        use ConsistencyModel::*;
        assert!(Strong.satisfies(Session));
        assert!(Commit.satisfies(Session));
        assert!(!Session.satisfies(Commit));
        assert!(!Eventual.satisfies(Session));
        assert!(Session.satisfies(Eventual));
    }

    #[test]
    fn registry_matches_table1_rows() {
        let reg = PfsRegistry::default();
        let names = |m| {
            let mut v: Vec<&str> = reg.by_model(m).iter().map(|e| e.name).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            names(ConsistencyModel::Strong),
            vec!["BatchFS", "BeeGFS", "GPFS", "GekkoFS", "Lustre", "OrangeFS"]
        );
        assert_eq!(
            names(ConsistencyModel::Commit),
            vec!["BSCFS", "BurstFS", "SymphonyFS", "UnifyFS"]
        );
        assert_eq!(
            names(ConsistencyModel::Session),
            vec!["AFS", "DDN IME", "Gfarm/BB", "NFS"]
        );
        assert_eq!(
            names(ConsistencyModel::Eventual),
            vec!["MarFS", "PLFS", "echofs"]
        );
    }

    #[test]
    fn burstfs_rejects_same_process_conflicts() {
        let reg = PfsRegistry::default();
        let burstfs = reg.get("BurstFS").unwrap();
        assert!(burstfs.supports(ConsistencyModel::Commit, false));
        assert!(!burstfs.supports(ConsistencyModel::Commit, true));
        let unifyfs = reg.get("UnifyFS").unwrap();
        assert!(unifyfs.supports(ConsistencyModel::Commit, true));
    }

    #[test]
    fn compatible_respects_strength() {
        let reg = PfsRegistry::default();
        // An app needing commit semantics can run on all strong + commit
        // systems (minus BurstFS when it has same-process conflicts).
        let ok = reg.compatible(ConsistencyModel::Commit, true);
        assert!(ok.iter().any(|e| e.name == "Lustre"));
        assert!(ok.iter().any(|e| e.name == "UnifyFS"));
        assert!(!ok.iter().any(|e| e.name == "BurstFS"));
        assert!(!ok.iter().any(|e| e.name == "NFS"));
    }
}
