//! The fault campaign: §6.3 pushed past the happy path.
//!
//! The paper derives each application's weakest workable consistency
//! model from *complete* traces. This module re-asks the question under
//! injected faults: seeded rank crashes, transient I/O errors, lost
//! flushes, and delayed messages, swept across seeds × fault kinds ×
//! applications. Two properties are on trial:
//!
//! 1. **Graceful degradation** — no combination may panic the stack.
//!    Crashed ranks leave trace prefixes that the analysis labels
//!    ([`Completeness`]) and processes anyway; transient errors are
//!    retried inside the simulated clock; a lost flush silently skips
//!    commit visibility.
//! 2. **Semantic sensitivity** — a crash *before* the commit point is
//!    exactly the scenario commit semantics does not protect, so FLASH's
//!    commit-model verdict must flip for well-placed crashes while every
//!    happy-path verdict stays at its Table 4 value.
//!
//! Everything is deterministic: `(seed, plan, program)` fixes the trace,
//! combinations are enumerated in a fixed order and fanned out with
//! [`semantics_core::parallel_map_indexed`], so campaign artifacts are
//! byte-identical across runs and thread counts.

use std::fmt::Write as _;

use hpcapps::{AppId, AppSpec};
use iolibs::{FaultKind, FaultPlan, IoFault};
use semantics_core::verdict::Completeness;

use crate::runner::{analyze_isolated, analyze_with_params, ConfigOutcome, ReportCfg};

/// Campaign shape. The defaults satisfy the smoke-test floor
/// (≥8 seeds × ≥4 fault kinds × ≥5 applications) at a world size small
/// enough for CI.
#[derive(Debug, Clone, Copy)]
pub struct CampaignCfg {
    /// World size; the campaign default is 8 (the flip mechanism needs
    /// only two metadata participants, and CI pays per rank).
    pub nranks: u32,
    /// First world seed; seeds `base_seed..base_seed + n_seeds` are run.
    pub base_seed: u64,
    pub n_seeds: u64,
    /// Fault-site op indices are drawn from `[1, max_op]`.
    pub max_op: u64,
    /// Op range for the FLASH crash sweep. Deeper than `max_op` because
    /// the flip window (superblock pwrite committed, fsync not) sits
    /// near the *end* of each checkpoint's flush sequence — a few
    /// hundred ops into the per-rank program at quick scale.
    pub sweep_max_op: u64,
    pub threads: usize,
}

impl Default for CampaignCfg {
    fn default() -> Self {
        CampaignCfg {
            nranks: 8,
            base_seed: 7000,
            n_seeds: 8,
            max_op: 64,
            sweep_max_op: 300,
            threads: 0,
        }
    }
}

/// Aggregate outcome counters, for the exit-code decision and CI greps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    pub runs: usize,
    /// Fully analyzed (complete trace — faults absorbed or never fired).
    pub complete: usize,
    /// Analyzed from a partial trace (≥1 rank crashed).
    pub partial: usize,
    /// Whole-run failures surfaced as structured errors (e.g. deadlock).
    pub degraded: usize,
    /// Unwinding panics — the campaign's red line; must stay zero.
    pub panics: usize,
}

/// The injected fault kinds and how many sites each plan draws. Crashes
/// get a single site (the classic fail-stop model); recoverable kinds
/// get two so retry paths see back-to-back injections.
fn fault_kinds() -> [(FaultKind, usize); 6] {
    [
        (FaultKind::Crash, 1),
        (FaultKind::Io(IoFault::Eintr), 2),
        (FaultKind::Io(IoFault::Eio), 2),
        (FaultKind::Io(IoFault::Enospc), 2),
        (FaultKind::Io(IoFault::LostFlush), 2),
        (
            FaultKind::MsgDelay {
                delay_ns: 2_000_000,
            },
            2,
        ),
    ]
}

/// The campaign's application subset: the FLASH shared-file workload plus
/// a spread of I/O stacks (HDF5, POSIX shared + file-per-process, MPI-IO).
fn campaign_specs() -> Vec<&'static AppSpec> {
    [
        AppId::FlashFbs,
        AppId::Enzo,
        AppId::Nwchem,
        AppId::Macsio,
        AppId::HaccIoPosix,
        AppId::VpicIo,
    ]
    .iter()
    .map(|&id| hpcapps::spec_ref(id))
    .collect()
}

/// Run the full campaign and render its table. Returns the rendered
/// artifact and the aggregate counters.
pub fn campaign(camp: &CampaignCfg) -> (String, CampaignStats) {
    let kinds = fault_kinds();
    let specs = campaign_specs();
    // Fixed enumeration order: spec-major, then kind, then seed. The
    // parallel fan-out returns results in this order, so the rendered
    // table is byte-identical across thread counts.
    let mut combos: Vec<(&'static AppSpec, FaultKind, usize, u64)> = Vec::new();
    for spec in &specs {
        for &(kind, count) in &kinds {
            for s in 0..camp.n_seeds {
                combos.push((spec, kind, count, camp.base_seed + s));
            }
        }
    }

    obs::info!(
        "fault campaign: {} combinations ({} apps x {} kinds x {} seeds)",
        combos.len(),
        specs.len(),
        kinds.len(),
        camp.n_seeds
    );
    let results = semantics_core::parallel_map_indexed(combos.len(), camp.threads, |k| {
        let (spec, kind, count, seed) = combos[k];
        let cfg = ReportCfg {
            nranks: camp.nranks,
            seed,
            max_skew_ns: 20_000,
        };
        let plan = FaultPlan::seeded(seed, camp.nranks, kind, count, camp.max_op);
        let params = spec.params.quick();
        (
            plan.describe(),
            analyze_isolated(&cfg, spec, &params, &plan),
        )
    });

    let mut stats = CampaignStats::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault campaign: {} apps x {} fault kinds x {} seeds = {} runs ({} ranks, quick scale)",
        specs.len(),
        kinds.len(),
        camp.n_seeds,
        combos.len(),
        camp.nranks
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>5}  {:<30} {:<9} {:>7} {:>7}  {}",
        "configuration", "seed", "plan", "status", "sess-D", "comm-D", "completeness"
    );
    for ((spec, _kind, _count, seed), (plan, outcome)) in combos.iter().zip(&results) {
        stats.runs += 1;
        match outcome {
            ConfigOutcome::Ok(run) => {
                if run.completeness.is_partial() {
                    stats.partial += 1;
                } else {
                    stats.complete += 1;
                }
                let _ = writeln!(
                    out,
                    "  {:<22} {:>5}  {:<30} {:<9} {:>7} {:>7}  {}",
                    spec.config_name(),
                    seed,
                    plan,
                    if run.completeness.is_partial() {
                        "PARTIAL"
                    } else {
                        "OK"
                    },
                    run.session.waw_distinct + run.session.raw_distinct,
                    run.commit.waw_distinct + run.commit.raw_distinct,
                    run.completeness.label().trim_start(),
                );
            }
            ConfigOutcome::Degraded {
                error, panicked, ..
            } => {
                stats.degraded += 1;
                if *panicked {
                    stats.panics += 1;
                }
                let _ = writeln!(
                    out,
                    "  {:<22} {:>5}  {:<30} {:<9} {}",
                    spec.config_name(),
                    seed,
                    plan,
                    if *panicked { "PANIC" } else { "DEGRADED" },
                    error,
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "  totals: {} runs | {} complete | {} partial | {} degraded | panics: {}",
        stats.runs, stats.complete, stats.partial, stats.degraded, stats.panics
    );
    (out, stats)
}

/// The capstone experiment: sweep a single-rank crash across op indices
/// in FLASH-fbs and show the commit-semantics verdict flipping.
///
/// Mechanism: `H5Fflush` rotates the superblock writer across the
/// metadata participants. Crash the writer *after* its superblock
/// `pwrite` but *before* the covering `fsync` and the write is never
/// committed; when a later flush's (different) writer rewrites offset 0,
/// the pair is a distinct-process WAW that commit semantics does not
/// order — the exact window §3.3's commit model leaves open. The
/// happy-path run, re-analyzed at the same scale, must keep its Table 4
/// verdict (commit suffices).
///
/// Returns the rendered table and whether at least one crash point
/// flipped the verdict.
pub fn flash_crash_sweep(camp: &CampaignCfg) -> (String, bool) {
    let spec = hpcapps::spec_ref(AppId::FlashFbs);
    let params = spec.params.quick();
    let cfg = ReportCfg {
        nranks: camp.nranks,
        seed: camp.base_seed,
        max_skew_ns: 20_000,
    };

    let happy = analyze_with_params(&cfg, spec, &params);
    let happy_commit_d = happy.commit.waw_distinct + happy.commit.raw_distinct;

    // Sweep every rank (the rotating writer means the vulnerable rank
    // depends on flush count and metadata stride) across the op range.
    // The range must reach past the last dataset flush of a checkpoint:
    // only a crash there leaves survivors on a barrier-only path (file
    // close) that rewrites the superblock — any earlier crash cascades
    // through the next collective MPI-IO shuffle and kills every rank
    // before a second offset-0 write exists.
    let mut points: Vec<(u32, u64)> = Vec::new();
    for rank in 0..camp.nranks {
        for at_op in 1..=camp.sweep_max_op {
            points.push((rank, at_op));
        }
    }
    obs::info!(
        "FLASH crash sweep: {} crash points ({} ranks x {} ops)",
        points.len(),
        camp.nranks,
        camp.sweep_max_op
    );
    let results = semantics_core::parallel_map_indexed(points.len(), camp.threads, |k| {
        let (rank, at_op) = points[k];
        let plan = FaultPlan::none().with_crash(rank, at_op);
        analyze_isolated(&cfg, spec, &params, &plan)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "FLASH crash sweep: single-rank crash x {} ranks x op 1..={} ({} runs, quick scale)",
        camp.nranks,
        camp.sweep_max_op,
        points.len()
    );
    let _ = writeln!(
        out,
        "  happy path: required {} | commit distinct-process conflicts: {}",
        happy.verdict.required.name(),
        happy_commit_d
    );

    let mut flipped = 0usize;
    let mut unflipped = 0usize;
    let mut failures = 0usize;
    for ((rank, at_op), outcome) in points.iter().zip(&results) {
        match outcome {
            ConfigOutcome::Ok(run) => {
                let commit_d = run.commit.waw_distinct + run.commit.raw_distinct;
                if commit_d > happy_commit_d {
                    flipped += 1;
                    let _ = writeln!(
                        out,
                        "  FLIP crash@r{rank}:op{at_op:<4} commit WAW-D:{} RAW-D:{} | required {}{}",
                        run.commit.waw_distinct,
                        run.commit.raw_distinct,
                        run.verdict.required.name(),
                        run.completeness.label(),
                    );
                } else {
                    unflipped += 1;
                }
            }
            ConfigOutcome::Degraded { error, .. } => {
                failures += 1;
                let _ = writeln!(out, "  DEGRADED crash@r{rank}:op{at_op} {error}");
            }
        }
    }
    let _ = writeln!(
        out,
        "  swept {} crash points: {} flip the commit verdict, {} leave it intact, {} degraded",
        points.len(),
        flipped,
        unflipped,
        failures
    );
    let _ = writeln!(
        out,
        "  crash-before-commit flips FLASH's commit-semantics verdict: {}",
        if flipped > 0 {
            "yes"
        } else {
            "NO (expected yes)"
        }
    );
    (out, flipped > 0)
}

/// Re-derive the happy-path verdicts at campaign scale so the sweep's
/// "unchanged" claim is checked against the same world size, not the
/// 64-rank Table 4 run.
pub fn happy_path_verdicts(camp: &CampaignCfg) -> String {
    let specs = campaign_specs();
    let results = semantics_core::parallel_map_indexed(specs.len(), camp.threads, |k| {
        let cfg = ReportCfg {
            nranks: camp.nranks,
            seed: camp.base_seed,
            max_skew_ns: 20_000,
        };
        analyze_with_params(&cfg, specs[k], &specs[k].params.quick())
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Happy-path verdicts at campaign scale ({} ranks, quick):",
        camp.nranks
    );
    for run in &results {
        let (ws, wd, rs, rd) = run.session.table4_marks();
        let _ = writeln!(
            out,
            "  {:<22} session WAW-S:{} WAW-D:{} RAW-S:{} RAW-D:{} | required {} | {}",
            run.name(),
            mark(ws),
            mark(wd),
            mark(rs),
            mark(rd),
            run.verdict.required.name(),
            match &run.completeness {
                Completeness::Complete => "complete",
                Completeness::Partial { .. } => "PARTIAL (unexpected)",
            },
        );
    }
    out
}

fn mark(b: bool) -> char {
    if b {
        'x'
    } else {
        '-'
    }
}
