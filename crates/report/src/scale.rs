//! The §6.1 scale-invariance claim: "we ran all applications at two
//! different scales … our results confirmed our expectation, as we found
//! no differences due to scale in the I/O patterns for any application".
//! Re-run a set of configurations at two world sizes and compare the
//! Table 3 labels and Table 4 marks.

use std::fmt::Write as _;

use hpcapps::AppSpec;

use crate::runner::{analyze, ReportCfg};

/// One configuration's two-scale comparison.
pub struct ScaleComparison {
    pub config: String,
    pub small_label: String,
    pub large_label: String,
    pub small_marks: (bool, bool, bool, bool),
    pub large_marks: (bool, bool, bool, bool),
}

impl ScaleComparison {
    pub fn invariant(&self) -> bool {
        self.small_label == self.large_label && self.small_marks == self.large_marks
    }
}

/// Compare `specs` at `small` and `large` ranks.
pub fn compare(
    base: &ReportCfg,
    specs: &[&'static AppSpec],
    small: u32,
    large: u32,
) -> Vec<ScaleComparison> {
    specs
        .iter()
        .map(|&spec| {
            let s = analyze(
                &ReportCfg {
                    nranks: small,
                    ..*base
                },
                spec,
            );
            let l = analyze(
                &ReportCfg {
                    nranks: large,
                    ..*base
                },
                spec,
            );
            ScaleComparison {
                config: spec.config_name(),
                small_label: s.highlevel.label(),
                large_label: l.highlevel.label(),
                small_marks: s.session.table4_marks(),
                large_marks: l.session.table4_marks(),
            }
        })
        .collect()
}

/// Rendered scale study.
pub fn scale_study(base: &ReportCfg, specs: &[&'static AppSpec], small: u32, large: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Scale study (§6.1): {small} vs {large} ranks");
    let comparisons = compare(base, specs, small, large);
    for c in &comparisons {
        let _ = writeln!(
            out,
            "  {:<22} {}: {} / {} ranks → {} | marks {:?} vs {:?}",
            c.config,
            if c.invariant() {
                "invariant"
            } else {
                "DIFFERS"
            },
            c.small_label,
            large,
            c.large_label,
            c.small_marks,
            c.large_marks,
        );
    }
    let all = comparisons.iter().all(|c| c.invariant());
    let _ = writeln!(
        out,
        "  → patterns and conflict marks {} across scales",
        if all { "are invariant" } else { "DIFFER" }
    );
    out
}
