//! The §6.1 scale-invariance claim: "we ran all applications at two
//! different scales … our results confirmed our expectation, as we found
//! no differences due to scale in the I/O patterns for any application".
//! Re-run a set of configurations at two world sizes and compare the
//! Table 3 labels and Table 4 marks.

use std::fmt::Write as _;

use hpcapps::AppSpec;

use crate::runner::{analyze, ReportCfg};

/// One configuration's two-scale comparison.
pub struct ScaleComparison {
    pub config: String,
    pub small_label: String,
    pub large_label: String,
    pub small_marks: (bool, bool, bool, bool),
    pub large_marks: (bool, bool, bool, bool),
}

impl ScaleComparison {
    pub fn invariant(&self) -> bool {
        self.small_label == self.large_label && self.small_marks == self.large_marks
    }
}

/// Compare `specs` at `small` and `large` ranks.
pub fn compare(
    base: &ReportCfg,
    specs: &[&'static AppSpec],
    small: u32,
    large: u32,
) -> Vec<ScaleComparison> {
    specs
        .iter()
        .map(|&spec| {
            let s = analyze(
                &ReportCfg {
                    nranks: small,
                    ..*base
                },
                spec,
            );
            let l = analyze(
                &ReportCfg {
                    nranks: large,
                    ..*base
                },
                spec,
            );
            ScaleComparison {
                config: spec.config_name(),
                small_label: s.highlevel.label(),
                large_label: l.highlevel.label(),
                small_marks: s.session.table4_marks(),
                large_marks: l.session.table4_marks(),
            }
        })
        .collect()
}

/// One configuration's verdict stability across the rank sweep: the
/// paper-scale baseline plus one cell per swept rank count.
pub struct RankSweepRow {
    pub config: String,
    pub baseline_ranks: u32,
    pub baseline_label: String,
    pub baseline_marks: (bool, bool, bool, bool),
    /// `(ranks, label, marks, analysis wall seconds)` per swept count.
    pub cells: Vec<(u32, String, (bool, bool, bool, bool), f64)>,
}

impl RankSweepRow {
    /// Whether every swept cell reproduces the baseline verdicts.
    pub fn stable(&self) -> bool {
        self.cells.iter().all(|(_, label, marks, _)| {
            *label == self.baseline_label && *marks == self.baseline_marks
        })
    }
}

/// The §6.1 claim pushed past the paper's own scales: re-run `specs`
/// through the streaming pipeline at each count in `ranks` (the counts
/// the event-loop executor makes tractable) and compare Table 3 labels
/// and Table 4 marks against the paper-scale baseline.
pub fn rank_sweep(
    base: &ReportCfg,
    specs: &[&'static AppSpec],
    baseline: u32,
    ranks: &[u32],
) -> Vec<RankSweepRow> {
    specs
        .iter()
        .map(|&spec| {
            let run_at = |nranks: u32| {
                let t = std::time::Instant::now();
                let run = crate::runner::analyze_incremental(
                    &ReportCfg { nranks, ..*base },
                    spec,
                    &spec.params,
                    &iolibs::FaultPlan::none(),
                )
                .unwrap_or_else(|e| panic!("{} at {nranks} ranks failed: {e}", spec.config_name()));
                (
                    run.highlevel.label(),
                    run.session.table4_marks(),
                    t.elapsed().as_secs_f64(),
                )
            };
            let (baseline_label, baseline_marks, _) = run_at(baseline);
            let cells = ranks
                .iter()
                .map(|&r| {
                    let (label, marks, secs) = run_at(r);
                    (r, label, marks, secs)
                })
                .collect();
            RankSweepRow {
                config: spec.config_name(),
                baseline_ranks: baseline,
                baseline_label,
                baseline_marks,
                cells,
            }
        })
        .collect()
}

/// Rendered rank sweep.
pub fn rank_sweep_report(rows: &[RankSweepRow], ranks: &[u32]) -> String {
    let mut out = String::new();
    let counts = ranks
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("/");
    let _ = writeln!(
        out,
        "Rank sweep: verdict stability at {counts} ranks vs the paper-scale baseline"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  {:<22} {}: {} @ {} ranks, marks {:?}",
            row.config,
            if row.stable() { "stable" } else { "DIFFERS" },
            row.baseline_label,
            row.baseline_ranks,
            row.baseline_marks,
        );
        for (r, label, marks, secs) in &row.cells {
            let _ = writeln!(
                out,
                "      {r:>5} ranks → {label} | marks {marks:?} ({secs:.1}s)"
            );
        }
    }
    let all = rows.iter().all(|r| r.stable());
    let _ = writeln!(
        out,
        "  → Table 3 labels and Table 4 marks {} from {} to {} ranks",
        if all { "are stable" } else { "DIFFER" },
        rows.first().map_or(0, |r| r.baseline_ranks),
        ranks.iter().copied().max().unwrap_or(0),
    );
    out
}

/// Rendered scale study.
pub fn scale_study(base: &ReportCfg, specs: &[&'static AppSpec], small: u32, large: u32) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Scale study (§6.1): {small} vs {large} ranks");
    let comparisons = compare(base, specs, small, large);
    for c in &comparisons {
        let _ = writeln!(
            out,
            "  {:<22} {}: {} / {} ranks → {} | marks {:?} vs {:?}",
            c.config,
            if c.invariant() {
                "invariant"
            } else {
                "DIFFERS"
            },
            c.small_label,
            large,
            c.large_label,
            c.small_marks,
            c.large_marks,
        );
    }
    let all = comparisons.iter().all(|c| c.invariant());
    let _ = writeln!(
        out,
        "  → patterns and conflict marks {} across scales",
        if all { "are invariant" } else { "DIFFER" }
    );
    out
}
