//! Run one application configuration through the stack and the full
//! analysis pipeline.
//!
//! The pipeline builds one [`AnalysisContext`] per resolved trace and
//! runs every analysis against it — fused session+commit conflict
//! detection, both Figure 1 pattern views, the Table 3 classification,
//! the metadata census, and the §5.2 happens-before validation all share
//! the context's grouping, sync tables, and sort orders. The pre-context
//! pipeline ([`analyze_with_params_unfused`]) is kept as the reference
//! implementation: the byte-identity test and the perf harness compare
//! the two.

use std::sync::Arc;

use hpcapps::{AppSpec, ScaleParams};
use iolibs::{run_app, run_app_result, FaultPlan, RunConfig, RunOutcome, SimError, SinkHandle};
use recorder::{adjust, offset, Record, ResolvedTrace};
use semantics_core::conflict::{detect_conflicts, AnalysisModel, ConflictReport};
use semantics_core::context::AnalysisContext;
use semantics_core::hb::{validate_conflicts, HbValidation};
use semantics_core::incremental::StreamingAnalyzer;
use semantics_core::metadata::MetadataCensus;
use semantics_core::patterns::{global_pattern, highlevel, local_pattern, PatternStats};
use semantics_core::verdict::{required_model, Completeness, Verdict};

/// Global knobs for a report run.
#[derive(Debug, Clone, Copy)]
pub struct ReportCfg {
    /// World size. The paper's presented results use 64 ranks.
    pub nranks: u32,
    pub seed: u64,
    /// Maximum injected clock skew (ns); the paper observed < 20 µs.
    pub max_skew_ns: u64,
}

impl Default for ReportCfg {
    fn default() -> Self {
        ReportCfg {
            nranks: 64,
            seed: 2021,
            max_skew_ns: 20_000,
        }
    }
}

/// Everything the analysis produces for one configuration.
pub struct AnalyzedRun {
    pub spec: &'static AppSpec,
    /// Cached `spec.config_name()`; rendering uses it repeatedly.
    name: String,
    pub outcome: RunOutcome,
    pub resolved: ResolvedTrace,
    pub session: ConflictReport,
    pub commit: ConflictReport,
    pub highlevel: highlevel::HighLevelReport,
    pub local: PatternStats,
    pub global: PatternStats,
    pub census: MetadataCensus,
    pub verdict: Verdict,
    pub hb: HbValidation,
    pub nranks: u32,
    /// Whether every rank ran to completion or some fail-stopped,
    /// leaving trace prefixes behind.
    pub completeness: Completeness,
}

impl AnalyzedRun {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Measured Table 4 marks under session semantics.
    pub fn session_marks(&self) -> (bool, bool, bool, bool) {
        self.session.table4_marks()
    }
}

/// Run and analyze one configuration.
pub fn analyze(cfg: &ReportCfg, spec: &'static AppSpec) -> AnalyzedRun {
    analyze_with_params(cfg, spec, &spec.params)
}

/// Run and analyze one configuration with overridden scale parameters.
pub fn analyze_with_params(
    cfg: &ReportCfg,
    spec: &'static AppSpec,
    params: &ScaleParams,
) -> AnalyzedRun {
    let mut span = obs::span("report", "config").with_arg("config", spec.config_name());
    let t0 = std::time::Instant::now();
    let run_cfg = RunConfig::new(cfg.nranks, cfg.seed)
        .with_max_skew_ns(cfg.max_skew_ns)
        .with_label(spec.config_name());
    let outcome = run_app(&run_cfg, |ctx| spec.run_with(ctx, params));
    span.set_arg(
        "outcome",
        if outcome.is_degraded() {
            "partial"
        } else {
            "ok"
        },
    );
    record_config_metrics(&outcome, t0);
    finish_analysis(cfg, spec, outcome)
}

/// Flush the per-config aggregate metrics: one counter bump per config
/// (deterministic) and one wall-time histogram sample (timing-only, never
/// compared across runs).
fn record_config_metrics(outcome: &RunOutcome, t0: std::time::Instant) {
    if !obs::metrics_enabled() {
        return;
    }
    let m = obs::metrics();
    m.add("report.configs", 1);
    if outcome.is_degraded() {
        m.add("report.configs_partial", 1);
    }
    m.observe("report.config_wall_ns", t0.elapsed().as_nanos() as u64);
}

/// Run one configuration under an injected [`FaultPlan`] and analyze
/// whatever trace survives. Rank crashes leave trace prefixes; the
/// analysis runs on them unchanged and the result is labeled via
/// [`AnalyzedRun::completeness`]. A deadlock (the one fault the world
/// cannot degrade through) comes back as `Err` instead of a panic.
pub fn analyze_with_faults(
    cfg: &ReportCfg,
    spec: &'static AppSpec,
    params: &ScaleParams,
    faults: &FaultPlan,
) -> Result<AnalyzedRun, SimError> {
    let mut span = obs::span("report", "config").with_arg("config", spec.config_name());
    let t0 = std::time::Instant::now();
    let run_cfg = RunConfig::new(cfg.nranks, cfg.seed)
        .with_max_skew_ns(cfg.max_skew_ns)
        .with_faults(faults.clone())
        .with_label(spec.config_name());
    let outcome = match run_app_result(&run_cfg, |ctx| spec.run_with(ctx, params)) {
        Ok(o) => o,
        Err(e) => {
            span.set_arg("outcome", "error");
            if obs::metrics_enabled() {
                obs::metrics().add("report.configs", 1);
                obs::metrics().add("report.configs_failed", 1);
            }
            return Err(e);
        }
    };
    span.set_arg(
        "outcome",
        if outcome.is_degraded() {
            "partial"
        } else {
            "ok"
        },
    );
    record_config_metrics(&outcome, t0);
    Ok(finish_analysis(cfg, spec, outcome))
}

/// The fused analysis pipeline over an already-produced trace — shared by
/// the happy-path and fault-injected entry points.
fn finish_analysis(cfg: &ReportCfg, spec: &'static AppSpec, outcome: RunOutcome) -> AnalyzedRun {
    let adjusted = adjust::apply(&outcome.trace);
    let resolved = offset::resolve(&adjusted);
    let ctx = AnalysisContext::with_adjusted(&resolved, &adjusted);
    let fused = ctx.fused_conflicts();
    let highlevel = ctx.highlevel(cfg.nranks);
    let local = ctx.local_pattern();
    let global = ctx.global_pattern();
    let census = ctx.census();
    let verdict = required_model(&fused.session, &fused.commit);
    let hb = ctx.validate(&fused.session);
    drop(ctx);
    let completeness = Completeness::from_crashed(outcome.faults.iter().map(|(r, _)| *r).collect());
    AnalyzedRun {
        spec,
        name: spec.config_name(),
        outcome,
        resolved,
        session: fused.session,
        commit: fused.commit,
        highlevel,
        local,
        global,
        census,
        verdict,
        hb,
        nranks: cfg.nranks,
        completeness,
    }
}

/// Bridge from the harness's streaming record tee to the online analyzer:
/// the run pushes adjusted per-rank record chunks, epoch commits, and the
/// assembly path remap; the analyzer does the rest.
struct AnalyzerSink(Arc<StreamingAnalyzer>);

impl iolibs::RunSink for AnalyzerSink {
    fn push(&self, rank: u32, records: &[Record], frontier: u64) {
        self.0.push(rank, records, frontier);
    }

    fn rank_done(&self, rank: u32) {
        self.0.rank_done(rank);
    }

    fn epoch_released(&self, epoch: u64) {
        self.0.epoch_released(epoch);
    }

    fn assembly_remap(&self, remap: &[u32]) {
        self.0.set_remap(remap);
    }
}

/// The streaming pipeline: run the configuration with a
/// [`StreamingAnalyzer`] attached as a record sink, so offset resolution,
/// conflict detection, and all pattern analyses happen *while the
/// simulation runs*; on completion only the cheap finalize (plus the
/// census, verdict, and happens-before validation) remains. Produces an
/// [`AnalyzedRun`] byte-identical to [`analyze_with_faults`] —
/// `tests/incremental_identity.rs` asserts it across every configuration,
/// semantics model, and fault campaign.
///
/// Requires the deterministic scheduler (the constructed run config's
/// default): under free running, streamed cross-rank order has real races
/// and the online results are not reproducible.
pub fn analyze_incremental(
    cfg: &ReportCfg,
    spec: &'static AppSpec,
    params: &ScaleParams,
    faults: &FaultPlan,
) -> Result<AnalyzedRun, SimError> {
    let mut span = obs::span("report", "config:incremental").with_arg("config", spec.config_name());
    let t0 = std::time::Instant::now();
    let analyzer = Arc::new(StreamingAnalyzer::new(cfg.nranks));
    let run_cfg = RunConfig::new(cfg.nranks, cfg.seed)
        .with_max_skew_ns(cfg.max_skew_ns)
        .with_faults(faults.clone())
        .with_label(spec.config_name())
        .with_sink(SinkHandle::new(Arc::new(AnalyzerSink(Arc::clone(
            &analyzer,
        )))));
    debug_assert!(matches!(run_cfg.mode, mpisim::SchedMode::Deterministic));
    let outcome = match run_app_result(&run_cfg, |ctx| spec.run_with(ctx, params)) {
        Ok(o) => o,
        Err(e) => {
            span.set_arg("outcome", "error");
            if obs::metrics_enabled() {
                obs::metrics().add("report.configs", 1);
                obs::metrics().add("report.configs_failed", 1);
            }
            return Err(e);
        }
    };
    span.set_arg(
        "outcome",
        if outcome.is_degraded() {
            "partial"
        } else {
            "ok"
        },
    );
    record_config_metrics(&outcome, t0);
    let inc = analyzer.finalize();
    // The remaining passes want the adjusted trace (identical input to the
    // batch pipeline's): the census walks metadata records the stream does
    // not carry, and happens-before needs the MPI event records.
    let adjusted = adjust::apply(&outcome.trace);
    let census = MetadataCensus::from_trace(&adjusted);
    let verdict = required_model(&inc.session, &inc.commit);
    let hb = validate_conflicts(&adjusted, &inc.session);
    let completeness = Completeness::from_crashed(outcome.faults.iter().map(|(r, _)| *r).collect());
    let highlevel = inc.highlevel;
    Ok(AnalyzedRun {
        spec,
        name: spec.config_name(),
        outcome,
        resolved: inc.resolved,
        session: inc.session,
        commit: inc.commit,
        highlevel,
        local: inc.local,
        global: inc.global,
        census,
        verdict,
        hb,
        nranks: cfg.nranks,
        completeness,
    })
}

/// The pre-context pipeline, kept as the reference: six independent full
/// passes over the same resolved trace (two conflict detections, three
/// pattern passes, the census), each re-deriving its own grouping and
/// sort order. Must produce a run identical to [`analyze_with_params`];
/// `tests/byte_identity.rs` asserts it and the perf harness measures the
/// difference.
pub fn analyze_with_params_unfused(
    cfg: &ReportCfg,
    spec: &'static AppSpec,
    params: &ScaleParams,
) -> AnalyzedRun {
    let run_cfg = RunConfig::new(cfg.nranks, cfg.seed)
        .with_max_skew_ns(cfg.max_skew_ns)
        .with_label(spec.config_name());
    let outcome = run_app(&run_cfg, |ctx| spec.run_with(ctx, params));
    let adjusted = adjust::apply(&outcome.trace);
    let resolved = offset::resolve(&adjusted);
    let session = detect_conflicts(&resolved, AnalysisModel::Session);
    let commit = detect_conflicts(&resolved, AnalysisModel::Commit);
    let highlevel = highlevel::classify(&resolved, cfg.nranks);
    let local = local_pattern(&resolved);
    let global = global_pattern(&resolved);
    let census = MetadataCensus::from_trace(&adjusted);
    let verdict = required_model(&session, &commit);
    let hb = validate_conflicts(&adjusted, &session);
    let completeness = Completeness::from_crashed(outcome.faults.iter().map(|(r, _)| *r).collect());
    AnalyzedRun {
        spec,
        name: spec.config_name(),
        outcome,
        resolved,
        session,
        commit,
        highlevel,
        local,
        global,
        census,
        verdict,
        hb,
        nranks: cfg.nranks,
        completeness,
    }
}

/// The analyzed configurations, borrowed from the `'static` registry (no
/// per-call `AppSpec` clones).
fn selected_specs(include_variants: bool) -> Vec<&'static AppSpec> {
    hpcapps::specs()
        .iter()
        .filter(|s| include_variants || s.in_table4 || matches!(s.id, hpcapps::AppId::FlashNofbs))
        .collect()
}

/// Analyze every Table 4 configuration (plus, optionally, the extra
/// variants).
pub fn analyze_all(cfg: &ReportCfg, include_variants: bool) -> Vec<AnalyzedRun> {
    selected_specs(include_variants)
        .into_iter()
        .map(|s| analyze(cfg, s))
        .collect()
}

/// [`analyze_all`] with the configurations fanned across `threads` worker
/// threads (`0` = one per core, `1` = serial). Each configuration is an
/// independent simulation + analysis, so this is the app-level
/// parallelism; results come back in spec order, so every artifact
/// rendered from them is byte-identical to the serial run.
pub fn analyze_all_threaded(
    cfg: &ReportCfg,
    include_variants: bool,
    threads: usize,
) -> Vec<AnalyzedRun> {
    let specs = selected_specs(include_variants);
    semantics_core::parallel_map_indexed(specs.len(), threads, |k| analyze(cfg, specs[k]))
}

/// [`analyze_all_threaded`] with per-configuration error isolation
/// (`--keep-going`): every configuration comes back as a
/// [`ConfigOutcome`], so one degraded run cannot abort the suite. Result
/// order is still spec order.
pub fn analyze_all_isolated(
    cfg: &ReportCfg,
    include_variants: bool,
    threads: usize,
) -> Vec<ConfigOutcome> {
    let specs = selected_specs(include_variants);
    let clean = FaultPlan::none();
    semantics_core::parallel_map_indexed(specs.len(), threads, |k| {
        analyze_isolated(cfg, specs[k], &specs[k].params, &clean)
    })
}

/// [`analyze_all_threaded`] through the unfused reference pipeline — the
/// perf harness's baseline.
pub fn analyze_all_threaded_unfused(
    cfg: &ReportCfg,
    include_variants: bool,
    threads: usize,
) -> Vec<AnalyzedRun> {
    let specs = selected_specs(include_variants);
    semantics_core::parallel_map_indexed(specs.len(), threads, |k| {
        analyze_with_params_unfused(cfg, specs[k], &specs[k].params)
    })
}

/// One configuration's result under per-config error isolation: either a
/// full analysis (possibly of a partial trace) or a degraded marker
/// carrying the failure, so one bad configuration cannot take down a
/// whole report run (`--keep-going`).
pub enum ConfigOutcome {
    Ok(Box<AnalyzedRun>),
    Degraded {
        name: String,
        error: String,
        /// `true` when the failure was an unwinding panic rather than a
        /// structured [`SimError`] — the fault campaign's red line.
        panicked: bool,
    },
}

impl ConfigOutcome {
    pub fn name(&self) -> &str {
        match self {
            ConfigOutcome::Ok(run) => run.name(),
            ConfigOutcome::Degraded { name, .. } => name,
        }
    }

    pub fn as_ok(&self) -> Option<&AnalyzedRun> {
        match self {
            ConfigOutcome::Ok(run) => Some(run),
            ConfigOutcome::Degraded { .. } => None,
        }
    }

    pub fn is_degraded(&self) -> bool {
        matches!(self, ConfigOutcome::Degraded { .. })
    }
}

/// Render a caught panic payload for a DEGRADED row.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// [`analyze_incremental`] with full per-config isolation: structured
/// simulation errors *and* panics are both captured as
/// [`ConfigOutcome::Degraded`] instead of propagating. This is the
/// single-configuration entry point (the serve cold path, `check
/// --keep-going`), so it runs the streaming pipeline; the batch pipeline
/// ([`analyze_with_faults`]) is kept as the oracle the identity tests
/// compare against.
pub fn analyze_isolated(
    cfg: &ReportCfg,
    spec: &'static AppSpec,
    params: &ScaleParams,
    faults: &FaultPlan,
) -> ConfigOutcome {
    let mut span = obs::span("report", "config:isolated").with_arg("config", spec.config_name());
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        analyze_incremental(cfg, spec, params, faults)
    }));
    let outcome = match attempt {
        Ok(Ok(run)) => {
            span.set_arg("outcome", "ok");
            ConfigOutcome::Ok(Box::new(run))
        }
        Ok(Err(e)) => {
            span.set_arg("outcome", "DEGRADED");
            ConfigOutcome::Degraded {
                name: spec.config_name(),
                error: e.to_string(),
                panicked: false,
            }
        }
        Err(payload) => {
            span.set_arg("outcome", "DEGRADED");
            span.set_arg("panicked", 1u64);
            ConfigOutcome::Degraded {
                name: spec.config_name(),
                error: panic_message(payload),
                panicked: true,
            }
        }
    };
    if outcome.is_degraded() && obs::metrics_enabled() {
        obs::metrics().add("report.configs_degraded", 1);
    }
    outcome
}
