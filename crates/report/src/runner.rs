//! Run one application configuration through the stack and the full
//! analysis pipeline.

use hpcapps::{AppSpec, ScaleParams};
use iolibs::{run_app, RunConfig, RunOutcome};
use recorder::{adjust, offset, ResolvedTrace};
use semantics_core::conflict::{detect_conflicts, AnalysisModel, ConflictReport};
use semantics_core::hb::{validate_conflicts, HbValidation};
use semantics_core::metadata::MetadataCensus;
use semantics_core::patterns::{global_pattern, highlevel, local_pattern, PatternStats};
use semantics_core::verdict::{required_model, Verdict};

/// Global knobs for a report run.
#[derive(Debug, Clone, Copy)]
pub struct ReportCfg {
    /// World size. The paper's presented results use 64 ranks.
    pub nranks: u32,
    pub seed: u64,
    /// Maximum injected clock skew (ns); the paper observed < 20 µs.
    pub max_skew_ns: u64,
}

impl Default for ReportCfg {
    fn default() -> Self {
        ReportCfg { nranks: 64, seed: 2021, max_skew_ns: 20_000 }
    }
}

/// Everything the analysis produces for one configuration.
pub struct AnalyzedRun {
    pub spec: AppSpec,
    pub outcome: RunOutcome,
    pub resolved: ResolvedTrace,
    pub session: ConflictReport,
    pub commit: ConflictReport,
    pub highlevel: highlevel::HighLevelReport,
    pub local: PatternStats,
    pub global: PatternStats,
    pub census: MetadataCensus,
    pub verdict: Verdict,
    pub hb: HbValidation,
    pub nranks: u32,
}

impl AnalyzedRun {
    pub fn name(&self) -> String {
        self.spec.config_name()
    }

    /// Measured Table 4 marks under session semantics.
    pub fn session_marks(&self) -> (bool, bool, bool, bool) {
        self.session.table4_marks()
    }
}

/// Run and analyze one configuration.
pub fn analyze(cfg: &ReportCfg, spec: &AppSpec) -> AnalyzedRun {
    analyze_with_params(cfg, spec, &spec.params)
}

/// Run and analyze one configuration with overridden scale parameters.
pub fn analyze_with_params(cfg: &ReportCfg, spec: &AppSpec, params: &ScaleParams) -> AnalyzedRun {
    let run_cfg =
        RunConfig::new(cfg.nranks, cfg.seed).with_max_skew_ns(cfg.max_skew_ns);
    let outcome = run_app(&run_cfg, |ctx| spec.run_with(ctx, params));
    let adjusted = adjust::apply(&outcome.trace);
    let resolved = offset::resolve(&adjusted);
    let session = detect_conflicts(&resolved, AnalysisModel::Session);
    let commit = detect_conflicts(&resolved, AnalysisModel::Commit);
    let highlevel = highlevel::classify(&resolved, cfg.nranks);
    let local = local_pattern(&resolved);
    let global = global_pattern(&resolved);
    let census = MetadataCensus::from_trace(&adjusted);
    let verdict = required_model(&session, &commit);
    let hb = validate_conflicts(&adjusted, &session);
    AnalyzedRun {
        spec: spec.clone(),
        outcome,
        resolved,
        session,
        commit,
        highlevel,
        local,
        global,
        census,
        verdict,
        hb,
        nranks: cfg.nranks,
    }
}

fn selected_specs(include_variants: bool) -> Vec<AppSpec> {
    hpcapps::all_specs()
        .iter()
        .filter(|s| include_variants || s.in_table4 || matches!(s.id, hpcapps::AppId::FlashNofbs))
        .cloned()
        .collect()
}

/// Analyze every Table 4 configuration (plus, optionally, the extra
/// variants).
pub fn analyze_all(cfg: &ReportCfg, include_variants: bool) -> Vec<AnalyzedRun> {
    selected_specs(include_variants).iter().map(|s| analyze(cfg, s)).collect()
}

/// [`analyze_all`] with the configurations fanned across `threads` worker
/// threads (`0` = one per core, `1` = serial). Each configuration is an
/// independent simulation + analysis, so this is the app-level
/// parallelism; results come back in spec order, so every artifact
/// rendered from them is byte-identical to the serial run.
pub fn analyze_all_threaded(
    cfg: &ReportCfg,
    include_variants: bool,
    threads: usize,
) -> Vec<AnalyzedRun> {
    let specs = selected_specs(include_variants);
    semantics_core::parallel_map_indexed(specs.len(), threads, |k| analyze(cfg, &specs[k]))
}
